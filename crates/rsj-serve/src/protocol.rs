//! The versioned wire protocol: line-delimited JSON over TCP.
//!
//! Every message is one JSON object on one line, terminated by `\n`.
//! Requests carry an `op` tag (`plan`, `plan_batch`, `trace`, `metrics`,
//! `ping`, `shutdown`) and a protocol version `v`; responses carry a
//! `status` tag (`plan`, `plan_batch`, `trace`, `metrics`, `pong`,
//! `shutting_down`, `error`). Unknown ops, malformed JSON and unsupported
//! versions all produce a typed [`Response::Error`] — the connection
//! stays usable afterwards.
//!
//! **Version negotiation.** `v` defaults to 1 when omitted, so every
//! bare-`op` frame and pre-v2 client works unchanged; the server accepts
//! `1..=`[`PROTOCOL_VERSION_MAX`] and answers each request in the version
//! it arrived in. v2 adds the `plan_batch` op — a vec of plan requests
//! answered with per-item tagged results ([`BatchItem`]).
//!
//! Plan requests may carry a client-chosen `trace_id`; the server adopts
//! and echoes it on every reply to that request — success, typed error,
//! or an `overloaded`/`not_ready` shed — so client and server logs join
//! on one key. `trace: true` additionally embeds the server-side stage
//! timeline in the response.
//!
//! The `plan` request body reuses the workspace's own serde shapes
//! ([`DistSpec`], [`CostModel`], [`SolverSpec`], [`SimulateOptions`]), so a
//! request is exactly "a [`Planner`](reservation_strategies::Planner)
//! configuration on the wire" and the response embeds the facade's
//! [`Plan`] verbatim.

use reservation_strategies::{Plan, PlanRequest, RsjError, SimulateOptions};
use rsj_core::{CostModel, SolverSpec};
use rsj_dist::DistSpec;
use serde::{Deserialize, Serialize};

use crate::recovery::RecoveryStats;

/// The baseline protocol version, and the default when a frame omits `v`
/// — so every bare-`op` one-liner and every pre-v2 client keeps working
/// unchanged. The server answers each request in the version it arrived
/// in.
pub const PROTOCOL_VERSION: u32 = 1;

/// The newest protocol version this build speaks. v2 adds the
/// `plan_batch` op; every v1 frame is also a valid v2 frame. Requests
/// outside `1..=PROTOCOL_VERSION_MAX` are rejected with
/// [`ErrorKind::UnsupportedVersion`].
pub const PROTOCOL_VERSION_MAX: u32 = 2;

fn default_version() -> u32 {
    PROTOCOL_VERSION
}

fn default_solver() -> SolverSpec {
    SolverSpec::MeanByMean
}

/// A client request. The `v` field defaults to [`PROTOCOL_VERSION`] when
/// omitted so hand-written one-liners stay short.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Request {
    /// Compute (or fetch from cache) a reservation plan.
    Plan {
        /// Protocol version.
        #[serde(default = "default_version")]
        v: u32,
        /// The job-runtime distribution (required).
        distribution: DistSpec,
        /// Cost model rates; defaults to RESERVATIONONLY (`α=1, β=γ=0`).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        cost: Option<CostModel>,
        /// Which solver to dispatch to (default `mean_by_mean`).
        #[serde(default = "default_solver")]
        solver: SolverSpec,
        /// Re-seeds the solver where a seed applies (Brute-Force Monte
        /// Carlo); overrides the seed inside `solver`.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        seed: Option<u64>,
        /// Also replay the plan against a seeded batch of sampled jobs.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        simulate: Option<SimulateOptions>,
        /// Per-request deadline in milliseconds, measured from the moment
        /// the server takes the request off the wire (for a freshly
        /// accepted connection, from accept — queue wait counts). Expired
        /// requests are shed with [`ErrorKind::DeadlineExceeded`] without
        /// invoking the solver; a deadline that fires mid-solve cancels
        /// the solver cooperatively.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        deadline_ms: Option<u64>,
        /// Client-supplied trace id. The server adopts it (instead of
        /// generating one) and echoes it in the response — including
        /// error and shed responses — so client and server logs join.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace_id: Option<String>,
        /// Ask the server to record a stage timeline for this request and
        /// embed it in the response, even when the server-wide trace ring
        /// is off.
        #[serde(default)]
        trace: bool,
    },
    /// Compute a whole batch of plans in one round trip (protocol v2).
    /// Items are solved grouped by their shared eval table, so a batch of
    /// cache misses over one distribution costs one discretization instead
    /// of N. Each item succeeds or fails independently — the response is a
    /// vec of per-item tagged results in input order.
    PlanBatch {
        /// Protocol version; `plan_batch` requires `v: 2`.
        #[serde(default = "default_version")]
        v: u32,
        /// The plan requests, each a full planner configuration (same
        /// shape as the facade's `PlanRequest`).
        items: Vec<PlanRequest>,
        /// Batch-level deadline in milliseconds, measured like a `plan`
        /// deadline; when it expires, remaining unsolved items fail with
        /// [`ErrorKind::DeadlineExceeded`].
        #[serde(default, skip_serializing_if = "Option::is_none")]
        deadline_ms: Option<u64>,
        /// Client-supplied trace id for the whole batch (one id; items are
        /// distinguished by per-item `item` stage annotations).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace_id: Option<String>,
        /// Embed the server-side stage timeline in the response.
        #[serde(default)]
        trace: bool,
    },
    /// Fetch recent request timelines from the server's trace ring
    /// (requires the server to run with `--trace-buffer`).
    Trace {
        /// Protocol version.
        #[serde(default = "default_version")]
        v: u32,
        /// At most this many timelines, newest first (server-capped at
        /// the ring capacity; defaults to 32).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        last: Option<usize>,
        /// Only timelines at least this long, in milliseconds.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        min_duration_ms: Option<f64>,
        /// Only the timeline(s) with exactly this trace id (a filter, not
        /// an identity for the trace request itself).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace_id: Option<String>,
    },
    /// Fetch the server's metrics in Prometheus text exposition format.
    Metrics {
        /// Protocol version.
        #[serde(default = "default_version")]
        v: u32,
    },
    /// Liveness probe.
    Ping {
        /// Protocol version.
        #[serde(default = "default_version")]
        v: u32,
    },
    /// Health probe: always answers (even mid-recovery) with the server's
    /// durability and load posture.
    Health {
        /// Protocol version.
        #[serde(default = "default_version")]
        v: u32,
    },
    /// Readiness probe: succeeds only when recovery has completed and the
    /// admission queue sits below its high watermark; otherwise a typed
    /// [`ErrorKind::NotReady`] error.
    Ready {
        /// Protocol version.
        #[serde(default = "default_version")]
        v: u32,
    },
    /// Ask the server to stop accepting connections and drain.
    Shutdown {
        /// Protocol version.
        #[serde(default = "default_version")]
        v: u32,
    },
}

impl Request {
    /// A plan request for `distribution` with all defaults (RESERVATIONONLY
    /// cost, `mean_by_mean` solver, no simulation).
    pub fn plan(distribution: DistSpec) -> Self {
        Request::Plan {
            v: PROTOCOL_VERSION,
            distribution,
            cost: None,
            solver: default_solver(),
            seed: None,
            simulate: None,
            deadline_ms: None,
            trace_id: None,
            trace: false,
        }
    }

    /// A plan request for `distribution` solved by `solver`.
    pub fn plan_with(distribution: DistSpec, solver: SolverSpec) -> Self {
        Request::Plan {
            v: PROTOCOL_VERSION,
            distribution,
            cost: None,
            solver,
            seed: None,
            simulate: None,
            deadline_ms: None,
            trace_id: None,
            trace: false,
        }
    }

    /// A v2 batch request over `items` with no deadline and no tracing.
    pub fn plan_batch(items: Vec<PlanRequest>) -> Self {
        Request::PlanBatch {
            v: PROTOCOL_VERSION_MAX,
            items,
            deadline_ms: None,
            trace_id: None,
            trace: false,
        }
    }

    /// Sets the per-request (or batch-level) deadline on a plan or
    /// plan-batch request; a no-op for the other ops (they answer
    /// immediately).
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        match &mut self {
            Request::Plan { deadline_ms, .. } | Request::PlanBatch { deadline_ms, .. } => {
                *deadline_ms = Some(ms);
            }
            _ => {}
        }
        self
    }

    /// Attaches a client-chosen trace id to a plan or plan-batch request
    /// (or sets the id filter on a trace request); a no-op for the other
    /// ops.
    pub fn with_trace_id(mut self, id: impl Into<String>) -> Self {
        match &mut self {
            Request::Plan { trace_id, .. }
            | Request::PlanBatch { trace_id, .. }
            | Request::Trace { trace_id, .. } => {
                *trace_id = Some(id.into());
            }
            _ => {}
        }
        self
    }

    /// Asks for an embedded stage timeline on a plan or plan-batch
    /// request; a no-op for the other ops.
    pub fn with_trace(mut self) -> Self {
        match &mut self {
            Request::Plan { trace, .. } | Request::PlanBatch { trace, .. } => {
                *trace = true;
            }
            _ => {}
        }
        self
    }

    /// The trace id the request carries, if any.
    pub fn trace_id(&self) -> Option<&str> {
        match self {
            Request::Plan { trace_id, .. }
            | Request::PlanBatch { trace_id, .. }
            | Request::Trace { trace_id, .. } => trace_id.as_deref(),
            _ => None,
        }
    }

    /// A trace-ring query: at most `last` timelines (newest first),
    /// optionally only those at least `min_duration_ms` long or matching
    /// `trace_id` exactly.
    pub fn trace_query(
        last: Option<usize>,
        min_duration_ms: Option<f64>,
        trace_id: Option<String>,
    ) -> Self {
        Request::Trace {
            v: PROTOCOL_VERSION,
            last,
            min_duration_ms,
            trace_id,
        }
    }

    /// A metrics request.
    pub fn metrics() -> Self {
        Request::Metrics {
            v: PROTOCOL_VERSION,
        }
    }

    /// A liveness probe.
    pub fn ping() -> Self {
        Request::Ping {
            v: PROTOCOL_VERSION,
        }
    }

    /// A health probe.
    pub fn health() -> Self {
        Request::Health {
            v: PROTOCOL_VERSION,
        }
    }

    /// A readiness probe.
    pub fn ready() -> Self {
        Request::Ready {
            v: PROTOCOL_VERSION,
        }
    }

    /// A graceful-shutdown request.
    pub fn shutdown() -> Self {
        Request::Shutdown {
            v: PROTOCOL_VERSION,
        }
    }

    /// The protocol version the request claims.
    pub fn version(&self) -> u32 {
        match *self {
            Request::Plan { v, .. }
            | Request::PlanBatch { v, .. }
            | Request::Trace { v, .. }
            | Request::Metrics { v }
            | Request::Ping { v }
            | Request::Health { v }
            | Request::Ready { v }
            | Request::Shutdown { v } => v,
        }
    }
}

/// Validates a client-supplied trace id for adoption: trimmed, non-empty,
/// at most 64 printable-ASCII characters. Anything else is treated as
/// absent rather than rejected — a bad trace id should never fail a
/// request.
pub fn sanitize_trace_id(id: Option<&str>) -> Option<String> {
    let id = id?.trim();
    if id.is_empty() || id.len() > 64 || !id.chars().all(|c| c.is_ascii_graphic()) {
        return None;
    }
    Some(id.to_string())
}

/// Where a plan response came from and who produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Server identity, e.g. `rsj-serve/0.1.0`.
    pub server: String,
    /// Protocol version the response was produced under.
    pub protocol: u32,
    /// Canonical solver name that produced (or would have produced) the
    /// plan.
    pub solver: String,
    /// Worker-pool width the solve ran with.
    pub threads: usize,
    /// `true` when the plan was served from the LRU cache without invoking
    /// the solver.
    pub cached: bool,
    /// `true` when this response coalesced onto another request's
    /// in-flight solve (single-flight) instead of running its own.
    #[serde(default)]
    pub coalesced: bool,
}

/// Wall-clock breakdown of one plan request, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Timings {
    /// Validating the request and instantiating the planner.
    pub build_seconds: f64,
    /// Running the solver (0 on a cache hit).
    pub solve_seconds: f64,
    /// End-to-end handling time.
    pub total_seconds: f64,
}

/// What went wrong, as a stable machine-readable discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ErrorKind {
    /// The line was not valid JSON or not a known request shape.
    MalformedRequest,
    /// The request's `v` falls outside the versions this build speaks
    /// (`1..=`[`PROTOCOL_VERSION_MAX`]), or a v2-only op claimed v1.
    UnsupportedVersion,
    /// The distribution spec failed validation.
    InvalidDistribution,
    /// The cost-model rates violate the §2.2 constraints.
    InvalidCost,
    /// The solver spec or name failed validation.
    InvalidSolver,
    /// The solver ran and failed.
    PlanningFailed,
    /// The simulate-on-plan replay failed.
    SimulationFailed,
    /// The connection exceeded the server's per-connection request limit.
    TooManyRequests,
    /// The request line exceeded the server's size limit.
    RequestTooLarge,
    /// The server shed the request under load (admission queue above its
    /// high watermark). Retryable after backoff: nothing about the
    /// request itself is wrong.
    Overloaded,
    /// The server is still warming up (recovery in progress, or the
    /// queue is above its high watermark). Retryable — and unlike
    /// [`ErrorKind::Overloaded`] it signals a *warming* server, not a
    /// struggling one, so clients should retry patiently without
    /// escalating backoff or tripping circuit breakers.
    NotReady,
    /// The request's `deadline_ms` expired — in the queue, or mid-solve
    /// (the solver was cancelled cooperatively).
    DeadlineExceeded,
    /// A `trace` op hit a server running without `--trace-buffer`.
    TracingDisabled,
    /// Anything else (worker pool failures, internal bugs).
    Internal,
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorKind::MalformedRequest => "malformed_request",
            ErrorKind::UnsupportedVersion => "unsupported_version",
            ErrorKind::InvalidDistribution => "invalid_distribution",
            ErrorKind::InvalidCost => "invalid_cost",
            ErrorKind::InvalidSolver => "invalid_solver",
            ErrorKind::PlanningFailed => "planning_failed",
            ErrorKind::SimulationFailed => "simulation_failed",
            ErrorKind::TooManyRequests => "too_many_requests",
            ErrorKind::RequestTooLarge => "request_too_large",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::NotReady => "not_ready",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::TracingDisabled => "tracing_disabled",
            ErrorKind::Internal => "internal",
        };
        f.write_str(s)
    }
}

impl ErrorKind {
    /// Whether retrying the identical request later can succeed. Only
    /// transient server-side conditions qualify; malformed or invalid
    /// requests will fail the same way every time, and an expired
    /// deadline stays expired.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ErrorKind::Overloaded | ErrorKind::NotReady | ErrorKind::Internal
        )
    }
}

/// Maps a facade error onto the wire discriminant.
pub fn classify(err: &RsjError) -> ErrorKind {
    match err {
        RsjError::Dist(_) => ErrorKind::InvalidDistribution,
        // The only cancellation source in the server is the per-request
        // deadline token, so a cancelled solve is a deadline miss.
        RsjError::Core(rsj_core::CoreError::Cancelled) => ErrorKind::DeadlineExceeded,
        RsjError::Core(rsj_core::CoreError::UnknownName { .. }) => ErrorKind::InvalidSolver,
        RsjError::Core(rsj_core::CoreError::InvalidHeuristicParameter { .. }) => {
            ErrorKind::InvalidSolver
        }
        RsjError::Core(rsj_core::CoreError::InvalidCostParameter { .. }) => ErrorKind::InvalidCost,
        RsjError::Core(_) => ErrorKind::PlanningFailed,
        RsjError::Sim(_) => ErrorKind::SimulationFailed,
        RsjError::Par(_) => ErrorKind::Internal,
        RsjError::Config { .. } => ErrorKind::MalformedRequest,
    }
}

/// The server's durability and load posture, as reported by the `health`
/// op. Always available — a server mid-recovery still answers `health`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthInfo {
    /// Whether the server would answer a `ready` probe right now:
    /// recovery complete, not draining, queue below its high watermark.
    pub ready: bool,
    /// Whether startup recovery (snapshot load + journal replay) has
    /// completed. Servers without a `--journal-dir` recover trivially.
    pub recovered: bool,
    /// Whether a shutdown/drain is in progress.
    pub draining: bool,
    /// Current admission-queue depth.
    pub queue_depth: usize,
    /// Plans currently held by the cache.
    pub cache_entries: usize,
    /// What recovery found, once it has run (absent before that, and on
    /// servers without durability configured).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub recovery: Option<RecoveryStats>,
}

/// One item of a `plan_batch` response: independently a plan or a typed
/// error, tagged like a top-level response (`status`: `plan` / `error`).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum BatchItem {
    /// The item's plan, bit-identical to what a standalone `plan` op for
    /// the same request would return.
    Plan {
        /// The computed (or cached) plan.
        plan: Plan,
        /// Who computed it and whether the cache served it.
        provenance: Provenance,
    },
    /// The item failed; its neighbours are unaffected.
    Error {
        /// Stable machine-readable discriminant.
        kind: ErrorKind,
        /// Human-readable explanation.
        message: String,
    },
}

impl BatchItem {
    /// Shorthand for an error item.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Self {
        BatchItem::Error {
            kind,
            message: message.into(),
        }
    }

    /// Whether the item carries a plan.
    pub fn is_ok(&self) -> bool {
        matches!(self, BatchItem::Plan { .. })
    }

    /// The item's error kind, when it failed.
    pub fn error_kind(&self) -> Option<ErrorKind> {
        match self {
            BatchItem::Error { kind, .. } => Some(*kind),
            BatchItem::Plan { .. } => None,
        }
    }

    /// Whether a failed item is worth retrying (transient error kind).
    pub fn is_retryable_error(&self) -> bool {
        self.error_kind().is_some_and(|k| k.is_retryable())
    }
}

/// A server response.
// One short-lived Response exists per request and is serialized right
// away, so the size skew of the Plan variant costs nothing; boxing it
// would complicate the wire shape for the vendored serde stub.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum Response {
    /// A successful plan.
    Plan {
        /// Protocol version.
        v: u32,
        /// The computed (or cached) plan, exactly as the offline facade
        /// would return it — including the FNV-1a sequence digest.
        plan: Plan,
        /// Who computed it and whether the cache served it.
        provenance: Provenance,
        /// Wall-clock breakdown.
        timings: Timings,
        /// The request's trace id (echoed when the client sent one,
        /// server-generated when tracing is on, absent otherwise).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace_id: Option<String>,
        /// The server-side stage timeline, when the request asked for it
        /// with `trace: true`.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        timeline: Option<rsj_obs::TimelineRecord>,
    },
    /// Per-item results of a `plan_batch` request, in input order
    /// (protocol v2).
    PlanBatch {
        /// Protocol version.
        v: u32,
        /// One tagged result per requested item.
        results: Vec<BatchItem>,
        /// The batch's trace id (one id for the whole batch).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace_id: Option<String>,
        /// The server-side stage timeline (one `item` stage per solved
        /// item), when the request asked with `trace: true`.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        timeline: Option<rsj_obs::TimelineRecord>,
    },
    /// Recent request timelines from the server's trace ring, newest
    /// first.
    Trace {
        /// Protocol version.
        v: u32,
        /// The matching timelines.
        timelines: Vec<rsj_obs::TimelineRecord>,
    },
    /// Metrics in Prometheus text exposition format.
    Metrics {
        /// Protocol version.
        v: u32,
        /// The exposition body.
        prometheus: String,
    },
    /// Liveness reply.
    Pong {
        /// Protocol version.
        v: u32,
    },
    /// Health report (always answered, even mid-recovery).
    Health {
        /// Protocol version.
        v: u32,
        /// The server's current posture.
        health: HealthInfo,
    },
    /// Readiness confirmation; a not-ready server answers the `ready` op
    /// with a typed [`ErrorKind::NotReady`] error instead.
    Ready {
        /// Protocol version.
        v: u32,
    },
    /// Acknowledges a shutdown request; the server drains and exits.
    ShuttingDown {
        /// Protocol version.
        v: u32,
    },
    /// A typed failure; the connection remains usable unless the kind is
    /// [`ErrorKind::TooManyRequests`] or [`ErrorKind::RequestTooLarge`].
    Error {
        /// Protocol version.
        v: u32,
        /// Stable machine-readable discriminant.
        kind: ErrorKind,
        /// Human-readable explanation.
        message: String,
        /// The request's trace id, echoed even on failures and sheds so
        /// client-side errors join to server-side timelines.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace_id: Option<String>,
    },
}

impl Response {
    /// Shorthand for a versioned error response.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Self {
        Response::Error {
            v: PROTOCOL_VERSION,
            kind,
            message: message.into(),
            trace_id: None,
        }
    }

    /// [`Response::error`] carrying the request's trace id.
    pub fn error_traced(
        kind: ErrorKind,
        message: impl Into<String>,
        trace_id: Option<String>,
    ) -> Self {
        Response::Error {
            v: PROTOCOL_VERSION,
            kind,
            message: message.into(),
            trace_id,
        }
    }

    /// The trace id the response carries, if any.
    pub fn trace_id(&self) -> Option<&str> {
        match self {
            Response::Plan { trace_id, .. }
            | Response::PlanBatch { trace_id, .. }
            | Response::Error { trace_id, .. } => trace_id.as_deref(),
            _ => None,
        }
    }

    /// Stamps `id` onto the variants that carry a trace id (plan,
    /// plan-batch and error responses); a no-op for the rest.
    pub fn with_trace_id(mut self, id: Option<String>) -> Self {
        if id.is_some() {
            match &mut self {
                Response::Plan { trace_id, .. }
                | Response::PlanBatch { trace_id, .. }
                | Response::Error { trace_id, .. } => {
                    *trace_id = id;
                }
                _ => {}
            }
        }
        self
    }

    /// The protocol version the response claims.
    pub fn version(&self) -> u32 {
        match *self {
            Response::Plan { v, .. }
            | Response::PlanBatch { v, .. }
            | Response::Trace { v, .. }
            | Response::Metrics { v, .. }
            | Response::Pong { v }
            | Response::Health { v, .. }
            | Response::Ready { v }
            | Response::ShuttingDown { v }
            | Response::Error { v, .. } => v,
        }
    }

    /// Restamps the response in `version` — the negotiation step: the
    /// server answers each request in the version the request arrived in.
    /// Provenance `protocol` fields follow the stamp.
    pub fn with_version(mut self, version: u32) -> Self {
        match &mut self {
            Response::Plan { v, provenance, .. } => {
                *v = version;
                provenance.protocol = version;
            }
            Response::PlanBatch { v, results, .. } => {
                *v = version;
                for item in results {
                    if let BatchItem::Plan { provenance, .. } = item {
                        provenance.protocol = version;
                    }
                }
            }
            Response::Trace { v, .. }
            | Response::Metrics { v, .. }
            | Response::Pong { v }
            | Response::Health { v, .. }
            | Response::Ready { v }
            | Response::ShuttingDown { v }
            | Response::Error { v, .. } => *v = version,
        }
        self
    }
}

/// Parses one request line, enforcing version negotiation: `v` must fall
/// in `1..=PROTOCOL_VERSION_MAX` (default [`PROTOCOL_VERSION`] when
/// omitted), and v2-only ops (`plan_batch`) must claim `v: 2`. The error
/// arm is ready to ship as a [`Response::Error`].
pub fn decode_request(line: &str) -> Result<Request, (ErrorKind, String)> {
    let request: Request = serde_json::from_str(line.trim())
        .map_err(|e| (ErrorKind::MalformedRequest, format!("bad request: {e}")))?;
    let v = request.version();
    if !(PROTOCOL_VERSION..=PROTOCOL_VERSION_MAX).contains(&v) {
        return Err((
            ErrorKind::UnsupportedVersion,
            format!(
                "protocol version {v} not supported \
                 (server speaks {PROTOCOL_VERSION}..={PROTOCOL_VERSION_MAX})"
            ),
        ));
    }
    if matches!(request, Request::PlanBatch { .. }) && v < 2 {
        return Err((
            ErrorKind::UnsupportedVersion,
            "the plan_batch op requires protocol v:2".to_string(),
        ));
    }
    Ok(request)
}

/// Serializes a message as one wire line (no trailing newline).
pub fn encode<T: Serialize>(message: &T) -> serde_json::Result<String> {
    serde_json::to_string(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_defaults_and_is_enforced() {
        let req = decode_request(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(req, Request::ping());
        let (kind, msg) = decode_request(r#"{"op":"ping","v":99}"#).unwrap_err();
        assert_eq!(kind, ErrorKind::UnsupportedVersion);
        assert!(msg.contains("99"), "{msg}");
    }

    #[test]
    fn v2_frames_decode_and_plan_batch_is_v2_only() {
        // Any v1 op is also accepted at v2 (the server answers in kind).
        let req = decode_request(r#"{"op":"ping","v":2}"#).unwrap();
        assert_eq!(req.version(), 2);
        // plan_batch decodes at v2…
        let req = decode_request(
            r#"{"op":"plan_batch","v":2,"items":[{"distribution":{"family":"exponential","lambda":1.0}}]}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::plan_batch(vec![PlanRequest::new(DistSpec::Exponential { lambda: 1.0 })])
        );
        // …and a bare plan_batch frame (defaulting to v1) is rejected with
        // a pointer at v2, not a confusing malformed_request.
        let (kind, msg) = decode_request(
            r#"{"op":"plan_batch","items":[{"distribution":{"family":"exponential","lambda":1.0}}]}"#,
        )
        .unwrap_err();
        assert_eq!(kind, ErrorKind::UnsupportedVersion);
        assert!(msg.contains("v:2"), "{msg}");
    }

    #[test]
    fn batch_response_round_trips_mixed_items() {
        let resp = Response::PlanBatch {
            v: PROTOCOL_VERSION_MAX,
            results: vec![
                BatchItem::error(ErrorKind::InvalidDistribution, "lambda must be positive"),
                BatchItem::error(ErrorKind::DeadlineExceeded, "batch deadline expired"),
            ],
            trace_id: Some("batch-1".into()),
            timeline: None,
        };
        assert_eq!(resp.trace_id(), Some("batch-1"));
        let line = encode(&resp).unwrap();
        assert!(line.contains(r#""status":"plan_batch""#), "{line}");
        assert!(line.contains(r#""status":"error""#), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
        assert_eq!(resp.version(), 2);
        assert_eq!(resp.with_version(1).version(), 1);
    }

    #[test]
    fn with_version_restamps_everything_including_provenance() {
        let resp = Response::Pong { v: 1 }.with_version(2);
        assert_eq!(resp.version(), 2);
        let err = Response::error(ErrorKind::Internal, "x").with_version(2);
        assert_eq!(err.version(), 2);
        let line = encode(&err).unwrap();
        assert!(line.contains(r#""v":2"#), "{line}");
    }

    #[test]
    fn plan_request_defaults_mirror_the_facade() {
        let req =
            decode_request(r#"{"op":"plan","distribution":{"family":"exponential","lambda":1.0}}"#)
                .unwrap();
        assert_eq!(req, Request::plan(DistSpec::Exponential { lambda: 1.0 }));
    }

    #[test]
    fn deadline_round_trips_and_defaults_off() {
        let req =
            decode_request(r#"{"op":"plan","distribution":{"family":"exponential","lambda":1.0}}"#)
                .unwrap();
        assert!(matches!(
            req,
            Request::Plan {
                deadline_ms: None,
                ..
            }
        ));
        let req = Request::plan(DistSpec::Exponential { lambda: 1.0 }).with_deadline_ms(250);
        let line = encode(&req).unwrap();
        assert!(line.contains(r#""deadline_ms":250"#), "{line}");
        assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn health_and_ready_round_trip() {
        assert_eq!(
            decode_request(r#"{"op":"health"}"#).unwrap(),
            Request::health()
        );
        assert_eq!(
            decode_request(r#"{"op":"ready"}"#).unwrap(),
            Request::ready()
        );
        let resp = Response::Health {
            v: PROTOCOL_VERSION,
            health: HealthInfo {
                ready: true,
                recovered: true,
                draining: false,
                queue_depth: 3,
                cache_entries: 17,
                recovery: Some(RecoveryStats {
                    snapshot_generation: Some(2),
                    snapshot_records: 10,
                    journal_records: 7,
                    recovered_records: 17,
                    corrupt_records: 1,
                    wall_seconds: 0.25,
                }),
            },
        };
        let line = encode(&resp).unwrap();
        assert!(line.contains(r#""status":"health""#), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn retryability_is_limited_to_transient_kinds() {
        assert!(ErrorKind::Overloaded.is_retryable());
        assert!(ErrorKind::NotReady.is_retryable());
        assert!(ErrorKind::Internal.is_retryable());
        for kind in [
            ErrorKind::MalformedRequest,
            ErrorKind::InvalidDistribution,
            ErrorKind::DeadlineExceeded,
            ErrorKind::TooManyRequests,
            ErrorKind::RequestTooLarge,
        ] {
            assert!(!kind.is_retryable(), "{kind}");
        }
    }

    #[test]
    fn trace_fields_round_trip_and_default_off() {
        let req =
            decode_request(r#"{"op":"plan","distribution":{"family":"exponential","lambda":1.0}}"#)
                .unwrap();
        assert!(matches!(
            req,
            Request::Plan {
                trace_id: None,
                trace: false,
                ..
            }
        ));
        let req = Request::plan(DistSpec::Exponential { lambda: 1.0 })
            .with_trace_id("abc123")
            .with_trace();
        assert_eq!(req.trace_id(), Some("abc123"));
        let line = encode(&req).unwrap();
        assert!(line.contains(r#""trace_id":"abc123""#), "{line}");
        assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn trace_op_round_trips() {
        let req = decode_request(r#"{"op":"trace","last":5,"min_duration_ms":2.5}"#).unwrap();
        assert_eq!(req, Request::trace_query(Some(5), Some(2.5), None));
        let resp = Response::Trace {
            v: PROTOCOL_VERSION,
            timelines: vec![rsj_obs::TimelineRecord {
                trace_id: "deadbeef".to_string(),
                op: "plan".to_string(),
                total_us: 1234,
                stages: vec![rsj_obs::StageRecord {
                    name: "solve".to_string(),
                    start_us: 10,
                    end_us: 1200,
                    args: Vec::new(),
                }],
            }],
        };
        let line = encode(&resp).unwrap();
        assert!(line.contains(r#""status":"trace""#), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn error_responses_echo_trace_ids() {
        let resp = Response::error_traced(ErrorKind::Overloaded, "try later", Some("t-1".into()));
        assert_eq!(resp.trace_id(), Some("t-1"));
        let line = encode(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.trace_id(), Some("t-1"));
        // Stamping only fills variants that carry an id, and never erases.
        let stamped = Response::error(ErrorKind::Internal, "x").with_trace_id(Some("t-2".into()));
        assert_eq!(stamped.trace_id(), Some("t-2"));
        let pong = Response::Pong {
            v: PROTOCOL_VERSION,
        }
        .with_trace_id(Some("ignored".into()));
        assert_eq!(pong.trace_id(), None);
    }

    #[test]
    fn trace_id_sanitizer_rejects_junk() {
        assert_eq!(sanitize_trace_id(Some(" ab12 ")).as_deref(), Some("ab12"));
        assert_eq!(sanitize_trace_id(None), None);
        assert_eq!(sanitize_trace_id(Some("")), None);
        assert_eq!(sanitize_trace_id(Some("   ")), None);
        assert_eq!(sanitize_trace_id(Some("has space")), None);
        assert_eq!(sanitize_trace_id(Some("new\nline")), None);
        assert_eq!(sanitize_trace_id(Some(&"x".repeat(65))), None);
        assert!(sanitize_trace_id(Some(&"x".repeat(64))).is_some());
    }

    #[test]
    fn malformed_lines_are_typed() {
        for line in [
            "not json",
            "{}",
            r#"{"op":"warp"}"#,
            r#"{"op":"plan"}"#,
            r#"{"op":"plan","distribution":{"family":"nope"}}"#,
        ] {
            let (kind, _) = decode_request(line).unwrap_err();
            assert_eq!(kind, ErrorKind::MalformedRequest, "{line}");
        }
    }
}
