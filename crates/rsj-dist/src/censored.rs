//! Censored-observation estimation (system S19, estimation layer).
//!
//! A reservation system that learns while scheduling never sees clean
//! samples: a job killed at its reservation boundary `t_i` reveals only
//! `X > t_i` — a *right-censored* observation. This module provides the
//! estimators an online adaptive planner needs:
//!
//! * [`Observation`] — a `(value, Exact | RightCensored)` pair;
//! * [`KaplanMeier`] — the product-limit survival estimator, with a bridge
//!   to [`InterpolatedEmpirical`] so a nonparametric survival curve can be
//!   planned on directly;
//! * [`fit_exponential_censored`] / [`fit_weibull_censored`] /
//!   [`fit_lognormal_censored`] — censored maximum-likelihood fits
//!   (closed-form total-time-on-test, profile-likelihood bisection, and EM
//!   with the inverse Mills ratio, respectively).
//!
//! Every censored fit reduces **exactly** to its uncensored counterpart
//! when no observation is censored: `fit_lognormal_censored` delegates to
//! [`fit_lognormal`] verbatim, and the exponential/Weibull likelihood
//! equations collapse to the classical uncensored MLEs.

use crate::continuous::{Exponential, LogNormal, Weibull};
use crate::error::{DistError, Result};
use crate::fit::fit_lognormal;
use crate::interpolated::InterpolatedEmpirical;
use crate::special::normal::{norm_pdf, norm_sf};
use serde::{Deserialize, Serialize};

/// Whether an observation is a completed runtime or a censoring bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CensorKind {
    /// The job completed; `value` is its exact duration.
    Exact,
    /// The job was killed at `value`; only `X > value` is known.
    RightCensored,
}

/// One runtime observation, possibly right-censored.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The observed duration (exact) or censoring bound.
    pub value: f64,
    /// Exact completion or right-censoring.
    pub kind: CensorKind,
}

impl Observation {
    /// An exactly observed duration.
    pub fn exact(value: f64) -> Self {
        Self {
            value,
            kind: CensorKind::Exact,
        }
    }

    /// A right-censored observation: the job was still running at `value`.
    pub fn censored(value: f64) -> Self {
        Self {
            value,
            kind: CensorKind::RightCensored,
        }
    }

    /// `true` for right-censored observations.
    pub fn is_censored(&self) -> bool {
        self.kind == CensorKind::RightCensored
    }
}

/// Rejects empty streams and non-finite or non-positive values (a censoring
/// bound at 0 carries no information; an exact duration of 0 has zero
/// likelihood under every family fitted here).
fn validate(observations: &[Observation]) -> Result<()> {
    if observations.is_empty() {
        return Err(DistError::DegenerateSample {
            reason: "no observations",
        });
    }
    if observations
        .iter()
        .any(|o| !o.value.is_finite() || !(o.value > 0.0))
    {
        return Err(DistError::DegenerateSample {
            reason: "observations must be finite and strictly positive",
        });
    }
    Ok(())
}

fn exact_values(observations: &[Observation]) -> Vec<f64> {
    observations
        .iter()
        .filter(|o| !o.is_censored())
        .map(|o| o.value)
        .collect()
}

/// A censored maximum-likelihood fit: the fitted law plus sample counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CensoredFit<D> {
    /// The fitted distribution.
    pub dist: D,
    /// Total observations used.
    pub n: usize,
    /// How many of them were right-censored.
    pub n_censored: usize,
    /// Solver iterations spent (0 for closed-form fits).
    pub iterations: usize,
}

/// Kaplan–Meier product-limit estimator of the survival function from
/// right-censored observations.
///
/// At each distinct exact-event time `tᵢ` with `dᵢ` completions out of
/// `nᵢ` observations still at risk, the survival estimate multiplies by
/// `1 − dᵢ/nᵢ`; censored observations leave the risk set without an event.
/// The estimate is a right-continuous step function, always in `[0, 1]`
/// and monotone non-increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct KaplanMeier {
    /// Distinct exact-event times, sorted ascending.
    times: Vec<f64>,
    /// `S(tᵢ)` immediately after each event time.
    survival: Vec<f64>,
    n: usize,
    n_censored: usize,
    /// Largest observation of either kind.
    max_observed: f64,
}

impl KaplanMeier {
    /// Fits the product-limit estimator. Errors on empty or non-positive
    /// input; an all-censored stream is allowed (the curve stays at 1).
    pub fn fit(observations: &[Observation]) -> Result<Self> {
        validate(observations)?;
        // Sort by value with exact events before censorings at ties: the
        // standard convention that a censoring at t is still at risk for
        // the deaths at t.
        let mut sorted: Vec<(f64, bool)> = observations
            .iter()
            .map(|o| (o.value, o.is_censored()))
            .collect();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
        let n = sorted.len();
        let mut times = Vec::new();
        let mut survival = Vec::new();
        let mut s = 1.0;
        let mut i = 0;
        while i < n {
            let t = sorted[i].0;
            let at_risk = n - i;
            let mut deaths = 0usize;
            while i < n && sorted[i].0 == t {
                deaths += usize::from(!sorted[i].1);
                i += 1;
            }
            if deaths > 0 {
                s *= 1.0 - deaths as f64 / at_risk as f64;
                times.push(t);
                survival.push(s);
            }
        }
        Ok(Self {
            times,
            survival,
            n,
            n_censored: observations.iter().filter(|o| o.is_censored()).count(),
            max_observed: sorted.last().expect("non-empty").0,
        })
    }

    /// The estimated survival probability `Ŝ(t) = P(X > t)`.
    pub fn survival(&self, t: f64) -> f64 {
        let idx = self.times.partition_point(|x| *x <= t);
        if idx == 0 {
            1.0
        } else {
            self.survival[idx - 1]
        }
    }

    /// Distinct exact-event times, sorted ascending.
    pub fn event_times(&self) -> &[f64] {
        &self.times
    }

    /// Survival values immediately after each event time.
    pub fn survival_at_events(&self) -> &[f64] {
        &self.survival
    }

    /// Total observations used.
    pub fn n(&self) -> usize {
        self.n
    }

    /// How many observations were right-censored.
    pub fn n_censored(&self) -> usize {
        self.n_censored
    }

    /// Converts the step curve into a plannable continuous law by linear
    /// interpolation of the CDF through the event-time knots, anchored at
    /// `F(0) = 0`.
    ///
    /// When the largest observation is censored the curve never reaches 1;
    /// a pragmatic tail knot extends the final cell's slope (and at least
    /// past the largest censoring bound) until the CDF closes. Errors when
    /// there are no exact events to interpolate through.
    pub fn to_interpolated(&self) -> Result<InterpolatedEmpirical> {
        if self.times.is_empty() {
            return Err(DistError::DegenerateSample {
                reason: "all observations censored; survival curve never leaves 1",
            });
        }
        let mut points = vec![(0.0, 0.0)];
        for (t, s) in self.times.iter().zip(&self.survival) {
            points.push((*t, 1.0 - s));
        }
        let s_last = *self.survival.last().expect("non-empty");
        let (t_last, f_last) = *points.last().expect("non-empty");
        if s_last <= 0.0 {
            points.last_mut().expect("non-empty").1 = 1.0;
        } else {
            // Extend the last cell's slope until the CDF reaches 1, but at
            // least past the deepest censoring bound (we know S stays at
            // `s_last` out to `max_observed`).
            let (t_prev, f_prev) = points[points.len() - 2];
            let slope = (f_last - f_prev) / (t_last - t_prev);
            let mut t_end = t_last + s_last / slope;
            if t_end <= self.max_observed {
                t_end = self.max_observed * (1.0 + 1e-9) + 1e-12;
            }
            points.push((t_end, 1.0));
        }
        InterpolatedEmpirical::from_cdf_points(&points)
    }
}

/// Censored maximum-likelihood fit of an `Exponential(λ)`: the classical
/// total-time-on-test estimator `λ̂ = d / Σᵢ xᵢ` with `d` the number of
/// exact events and the sum running over *all* observations. With no
/// censoring this is exactly the uncensored MLE `1 / x̄`.
pub fn fit_exponential_censored(observations: &[Observation]) -> Result<CensoredFit<Exponential>> {
    validate(observations)?;
    let d = observations.iter().filter(|o| !o.is_censored()).count();
    if d == 0 {
        return Err(DistError::DegenerateSample {
            reason: "all observations censored; exponential rate unidentifiable",
        });
    }
    let total: f64 = observations.iter().map(|o| o.value).sum();
    let lambda = d as f64 / total;
    Ok(CensoredFit {
        dist: Exponential::new(lambda)?,
        n: observations.len(),
        n_censored: observations.len() - d,
        iterations: 0,
    })
}

/// Uncensored convenience wrapper around [`fit_exponential_censored`].
pub fn fit_exponential(samples: &[f64]) -> Result<CensoredFit<Exponential>> {
    let obs: Vec<Observation> = samples.iter().map(|&x| Observation::exact(x)).collect();
    fit_exponential_censored(&obs)
}

const WEIBULL_MAX_ITER: usize = 500;

/// Censored maximum-likelihood fit of a `Weibull(λ, κ)` by profile
/// likelihood: the shape solves
/// `Σ xᵢ^κ ln xᵢ / Σ xᵢ^κ − 1/κ = (1/d) Σ_exact ln xᵢ`
/// (sums over all observations, `d` exact events), then
/// `λ̂ = (Σ xᵢ^κ / d)^{1/κ}`. Solved by bisection on `κ ∈ [10⁻⁴, 10⁴]`
/// with values rescaled by the sample maximum so `xᵢ^κ` cannot overflow.
/// With no censoring the equations are the classical uncensored Weibull
/// MLE.
pub fn fit_weibull_censored(observations: &[Observation]) -> Result<CensoredFit<Weibull>> {
    validate(observations)?;
    let exact = exact_values(observations);
    let d = exact.len();
    if d < 2 {
        return Err(DistError::DegenerateSample {
            reason: "need at least two exact events to fit a Weibull shape",
        });
    }
    if exact.iter().all(|&x| x == exact[0]) && observations.len() == d {
        return Err(DistError::DegenerateSample {
            reason: "all observations identical; Weibull shape diverges",
        });
    }
    let scale_ref = observations
        .iter()
        .map(|o| o.value)
        .fold(f64::NEG_INFINITY, f64::max);
    let mean_exact_log: f64 = exact.iter().map(|x| x.ln()).sum::<f64>() / d as f64;
    // g(κ) = A(κ) − 1/κ − mean_exact_log, increasing in κ, with
    // A(κ) = Σ (xᵢ/m)^κ ln xᵢ / Σ (xᵢ/m)^κ (rescaling cancels in A).
    let g = |kappa: f64| -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for o in observations {
            let w = (o.value / scale_ref).powf(kappa);
            num += w * o.value.ln();
            den += w;
        }
        num / den - 1.0 / kappa - mean_exact_log
    };
    let (mut lo, mut hi) = (1e-4, 1e4);
    let (g_lo, g_hi) = (g(lo), g(hi));
    if !g_lo.is_finite() || !g_hi.is_finite() || g_lo > 0.0 || g_hi < 0.0 {
        return Err(DistError::DegenerateSample {
            reason: "Weibull profile likelihood has no root in [1e-4, 1e4]",
        });
    }
    let mut iterations = 0usize;
    let mut kappa = 0.5 * (lo + hi);
    while hi - lo > 1e-12 * kappa.max(1.0) {
        iterations += 1;
        if iterations > WEIBULL_MAX_ITER {
            return Err(DistError::NonConvergence {
                what: "Weibull censored MLE (profile bisection)",
                iterations,
            });
        }
        kappa = 0.5 * (lo + hi);
        let val = g(kappa);
        if !val.is_finite() {
            return Err(DistError::NonConvergence {
                what: "Weibull censored MLE (non-finite profile value)",
                iterations,
            });
        }
        if val < 0.0 {
            lo = kappa;
        } else {
            hi = kappa;
        }
    }
    let sum_pow: f64 = observations
        .iter()
        .map(|o| (o.value / scale_ref).powf(kappa))
        .sum();
    let lambda = scale_ref * (sum_pow / d as f64).powf(1.0 / kappa);
    Ok(CensoredFit {
        dist: Weibull::new(lambda, kappa)?,
        n: observations.len(),
        n_censored: observations.len() - d,
        iterations,
    })
}

/// Uncensored convenience wrapper around [`fit_weibull_censored`].
pub fn fit_weibull(samples: &[f64]) -> Result<CensoredFit<Weibull>> {
    let obs: Vec<Observation> = samples.iter().map(|&x| Observation::exact(x)).collect();
    fit_weibull_censored(&obs)
}

/// Standard-normal hazard `φ(a)/Φ̄(a)` (the inverse Mills ratio), with the
/// asymptotic expansion `a + 1/a` once the survival underflows.
fn normal_hazard(a: f64) -> f64 {
    let sf = norm_sf(a);
    if sf > 1e-280 {
        norm_pdf(a) / sf
    } else {
        a + 1.0 / a
    }
}

const LOGNORMAL_MAX_ITER: usize = 1000;

/// Censored maximum-likelihood fit of a `LogNormal(μ, σ)` by
/// expectation–maximization in log space: each censored observation at `c`
/// contributes the conditional moments
/// `E[z | z > ln c] = μ + σ·h(a)` and
/// `E[z² | z > ln c] = μ² + σ² + σ·(ln c + μ)·h(a)` with
/// `a = (ln c − μ)/σ` and `h` the inverse Mills ratio, after which `μ, σ²`
/// are re-estimated as the completed-sample mean and variance.
///
/// With **zero** censored observations this delegates to [`fit_lognormal`]
/// and is therefore bit-identical to the uncensored fit. Errors with
/// [`DistError::NonConvergence`] when EM fails to settle and
/// [`DistError::DegenerateSample`] when the log-variance collapses.
pub fn fit_lognormal_censored(observations: &[Observation]) -> Result<CensoredFit<LogNormal>> {
    validate(observations)?;
    let exact = exact_values(observations);
    let n_censored = observations.len() - exact.len();
    if n_censored == 0 {
        let fit = fit_lognormal(&exact)?;
        return Ok(CensoredFit {
            dist: fit.dist,
            n: fit.n,
            n_censored: 0,
            iterations: 0,
        });
    }
    if exact.is_empty() {
        return Err(DistError::DegenerateSample {
            reason: "all observations censored; LogNormal parameters unidentifiable",
        });
    }
    if observations.len() < 2 {
        return Err(DistError::DegenerateSample {
            reason: "need at least two observations to fit a LogNormal",
        });
    }
    let n = observations.len() as f64;
    let exact_logs: Vec<f64> = exact.iter().map(|x| x.ln()).collect();
    let censor_logs: Vec<f64> = observations
        .iter()
        .filter(|o| o.is_censored())
        .map(|o| o.value.ln())
        .collect();
    // Initialize from all values as if exact — biased low, EM corrects.
    let all_logs: Vec<f64> = observations.iter().map(|o| o.value.ln()).collect();
    let mut mu = all_logs.iter().sum::<f64>() / n;
    let mut var = all_logs.iter().map(|l| (l - mu) * (l - mu)).sum::<f64>() / n;
    if var <= 0.0 {
        // Constant stream with mixed censoring: give EM a seed scale.
        var = 0.25;
    }
    let mut sigma = var.sqrt();
    let sum_exact: f64 = exact_logs.iter().sum();
    let sum_exact_sq: f64 = exact_logs.iter().map(|z| z * z).sum();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        if iterations > LOGNORMAL_MAX_ITER {
            return Err(DistError::NonConvergence {
                what: "LogNormal censored MLE (EM)",
                iterations,
            });
        }
        let mut s1 = sum_exact;
        let mut s2 = sum_exact_sq;
        for &c in &censor_logs {
            let a = (c - mu) / sigma;
            let h = normal_hazard(a);
            s1 += mu + sigma * h;
            s2 += mu * mu + sigma * sigma + sigma * (c + mu) * h;
        }
        let mu_next = s1 / n;
        let var_next = s2 / n - mu_next * mu_next;
        if !mu_next.is_finite() || !var_next.is_finite() || var_next <= 1e-300 {
            return Err(DistError::DegenerateSample {
                reason: "log-variance collapsed during censored EM",
            });
        }
        let sigma_next = var_next.sqrt();
        let done = (mu_next - mu).abs() <= 1e-10 * (1.0 + mu.abs())
            && (sigma_next - sigma).abs() <= 1e-10 * (1.0 + sigma);
        mu = mu_next;
        sigma = sigma_next;
        if done {
            break;
        }
    }
    Ok(CensoredFit {
        dist: LogNormal::new(mu, sigma)?,
        n: observations.len(),
        n_censored,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ContinuousDistribution;
    use rand::SeedableRng;

    fn censor_at(
        dist: &dyn ContinuousDistribution,
        bound: f64,
        n: usize,
        seed: u64,
    ) -> Vec<Observation> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = dist.sample(&mut rng);
                if x > bound {
                    Observation::censored(bound)
                } else {
                    Observation::exact(x)
                }
            })
            .collect()
    }

    #[test]
    fn km_matches_ecdf_without_censoring() {
        let obs: Vec<Observation> = [1.0, 2.0, 3.0, 4.0]
            .iter()
            .map(|&x| Observation::exact(x))
            .collect();
        let km = KaplanMeier::fit(&obs).unwrap();
        assert_eq!(km.survival(0.5), 1.0);
        assert!((km.survival(1.0) - 0.75).abs() < 1e-12);
        assert!((km.survival(2.5) - 0.5).abs() < 1e-12);
        assert_eq!(km.survival(4.0), 0.0);
    }

    #[test]
    fn km_textbook_example() {
        // Events at 1, 3 (death), censorings at 2, 4.
        let obs = vec![
            Observation::exact(1.0),
            Observation::censored(2.0),
            Observation::exact(3.0),
            Observation::censored(4.0),
        ];
        let km = KaplanMeier::fit(&obs).unwrap();
        // S(1) = 3/4; at t=3 risk set {3, 4}: S(3) = 3/4 · 1/2 = 3/8.
        assert!((km.survival(1.5) - 0.75).abs() < 1e-12);
        assert!((km.survival(3.5) - 0.375).abs() < 1e-12);
        // Curve never reaches 0 (last observation censored).
        assert!(km.survival(100.0) > 0.0);
        assert_eq!(km.n_censored(), 2);
    }

    #[test]
    fn km_interpolation_closes_the_tail() {
        let obs = vec![
            Observation::exact(1.0),
            Observation::censored(2.0),
            Observation::exact(3.0),
            Observation::censored(4.0),
        ];
        let km = KaplanMeier::fit(&obs).unwrap();
        let d = km.to_interpolated().unwrap();
        assert_eq!(d.cdf(0.0), 0.0);
        let upper = d.support().upper().unwrap();
        assert!(upper > 4.0, "tail knot must pass the deepest censoring");
        assert!((d.cdf(upper) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn km_all_censored_has_flat_curve_and_no_interpolation() {
        let obs = vec![Observation::censored(1.0), Observation::censored(2.0)];
        let km = KaplanMeier::fit(&obs).unwrap();
        assert_eq!(km.survival(10.0), 1.0);
        assert!(km.to_interpolated().is_err());
    }

    #[test]
    fn exponential_censored_closed_form() {
        // 2 events (1.0, 2.0) + 1 censoring at 3.0: λ = 2 / 6.
        let obs = vec![
            Observation::exact(1.0),
            Observation::exact(2.0),
            Observation::censored(3.0),
        ];
        let fit = fit_exponential_censored(&obs).unwrap();
        assert!((fit.dist.lambda() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(fit.n_censored, 1);
        // Uncensored reduction: λ = 1/mean.
        let fit = fit_exponential(&[1.0, 2.0, 3.0]).unwrap();
        assert!((fit.dist.lambda() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weibull_censored_recovers_parameters() {
        let truth = Weibull::new(2.0, 1.5).unwrap();
        let obs = censor_at(&truth, truth.quantile(0.8), 8000, 11);
        let fit = fit_weibull_censored(&obs).unwrap();
        assert!(fit.n_censored > 1000, "20% censoring expected");
        assert!(
            (fit.dist.lambda() - 2.0).abs() < 0.1,
            "lambda {}",
            fit.dist.lambda()
        );
        assert!(
            (fit.dist.kappa() - 1.5).abs() < 0.1,
            "kappa {}",
            fit.dist.kappa()
        );
    }

    #[test]
    fn lognormal_censored_recovers_parameters() {
        let truth = LogNormal::new(1.0, 0.5).unwrap();
        let obs = censor_at(&truth, truth.quantile(0.7), 8000, 12);
        let fit = fit_lognormal_censored(&obs).unwrap();
        assert!(fit.n_censored > 1500, "30% censoring expected");
        assert!((fit.dist.mu() - 1.0).abs() < 0.05, "mu {}", fit.dist.mu());
        assert!(
            (fit.dist.sigma() - 0.5).abs() < 0.05,
            "sigma {}",
            fit.dist.sigma()
        );
        assert!(fit.iterations > 0);
    }

    #[test]
    fn censored_fits_reject_degenerate_streams() {
        let all_censored = vec![Observation::censored(1.0), Observation::censored(2.0)];
        assert!(fit_exponential_censored(&all_censored).is_err());
        assert!(fit_weibull_censored(&all_censored).is_err());
        assert!(fit_lognormal_censored(&all_censored).is_err());
        assert!(fit_exponential_censored(&[]).is_err());
        assert!(fit_lognormal_censored(&[Observation::exact(-1.0)]).is_err());
        let constant: Vec<Observation> = (0..5).map(|_| Observation::exact(2.0)).collect();
        assert!(fit_weibull_censored(&constant).is_err());
        assert!(fit_lognormal_censored(&constant).is_err());
    }

    #[test]
    fn observation_serde_round_trip() {
        let obs = vec![Observation::exact(1.5), Observation::censored(2.5)];
        let json = serde_json::to_string(&obs).unwrap();
        let back: Vec<Observation> = serde_json::from_str(&json).unwrap();
        assert_eq!(obs, back);
    }
}
