//! Observability for the reservation-strategies workspace: structured
//! span/event tracing, a metrics registry with mergeable log-linear
//! histograms (with per-bucket exemplars), exporters (Prometheus text
//! exposition and round-trip-exact JSON), wall-clock profiling hooks,
//! and per-request distributed tracing — [`TraceContext`] identities,
//! [`Timeline`] stage recorders, a [`TraceRing`] of completed request
//! timelines, and a Chrome-trace/Perfetto exporter
//! ([`chrome_trace_json`]).
//!
//! The crate is built so that *disabled* observability is effectively
//! free: every tracing macro and metrics guard reduces to one relaxed
//! atomic load on its fast path, and the [`timer::NoopRecorder`] lets
//! generic instrumentation compile out entirely.
//!
//! ## Quick start
//!
//! ```
//! // Install the stderr logger from RSJ_LOG (defaults to `info`).
//! rsj_obs::init_from_env();
//!
//! // Leveled logging with format! syntax — free when filtered out.
//! rsj_obs::info!("batch finished: {} jobs", 128);
//!
//! // Metrics: opt in, record, export.
//! rsj_obs::set_metrics_enabled(true);
//! if rsj_obs::metrics_enabled() {
//!     rsj_obs::global_registry().counter("jobs_total").add(128);
//! }
//! let prometheus_text = rsj_obs::global_registry().snapshot().to_prometheus();
//! # assert!(prometheus_text.contains("jobs_total"));
//! ```
//!
//! ## Environment
//!
//! | Variable | Effect |
//! |---|---|
//! | `RSJ_LOG` | stderr log level: `error`, `warn`, `info`, `debug`, `trace`, or `off` |

#![warn(missing_docs)]

pub mod chrome;
pub mod export;
pub mod histogram;
pub mod level;
pub mod metrics;
pub mod ring;
pub mod subscribers;
pub mod timeline;
pub mod timer;
pub mod trace;

pub use chrome::chrome_trace_json;
pub use export::{
    sanitize_metric_name, write_metrics_file, BucketSample, CounterSample, ExemplarSample,
    GaugeSample, HistogramSample, MetricsSnapshot,
};
pub use histogram::{Exemplar, Histogram, SUBBUCKETS};
pub use level::{parse_filter, Level, ParseLevelError};
pub use metrics::{Counter, Gauge, HistogramHandle, Registry};
pub use ring::TraceRing;
pub use subscribers::{JsonLinesSink, MemorySink, StderrLogger};
pub use timeline::{
    request_tracing_enabled, set_request_tracing, set_trace_seed, StageRecord, Timeline,
    TimelineRecord, TraceContext,
};
pub use timer::{NoopRecorder, Recorder, ScopedTimer, Stopwatch};
pub use trace::{clear_subscriber, set_subscriber, Span, Subscriber};

use std::sync::Arc;

/// Whether recording into the global metrics registry is enabled
/// (re-export of [`metrics::enabled`] under an unambiguous name).
#[inline(always)]
pub fn metrics_enabled() -> bool {
    metrics::enabled()
}

/// Turns global metrics recording on or off (re-export of
/// [`metrics::set_enabled`]).
pub fn set_metrics_enabled(on: bool) {
    metrics::set_enabled(on);
}

/// The process-global metrics registry (re-export of [`metrics::global`]).
pub fn global_registry() -> &'static Registry {
    metrics::global()
}

/// Installs a [`StderrLogger`] at `level`; `None` clears the subscriber
/// so tracing reverts to the free disabled path.
pub fn init(level: Option<Level>) {
    match level {
        Some(level) => set_subscriber(Arc::new(StderrLogger::new(level))),
        None => clear_subscriber(),
    }
}

/// Installs a [`StderrLogger`] at the level named by `RSJ_LOG`, falling
/// back to `default` when the variable is unset and to `warn` when it is
/// set to an unparsable value (a typo should not silence error reporting).
pub fn init_from_env_default(default: Option<Level>) {
    let level = match std::env::var("RSJ_LOG") {
        Ok(value) => parse_filter(&value).unwrap_or(Some(Level::Warn)),
        Err(_) => default,
    };
    init(level);
}

/// [`init_from_env_default`] with the common `info` default: progress
/// milestones visible, solver internals quiet, `RSJ_LOG=off` silent.
pub fn init_from_env() {
    init_from_env_default(Some(Level::Info));
}

#[cfg(test)]
mod tests {
    use super::*;

    // Subscriber state is process-global, so env/init behavior is
    // exercised in one test to avoid cross-test interference.
    #[test]
    fn init_paths_install_and_clear() {
        init(Some(Level::Debug));
        assert!(trace::enabled(Level::Debug));
        assert!(!trace::enabled(Level::Trace));
        init(None);
        assert!(!trace::enabled(Level::Error));
        assert!(!trace::subscriber_installed());
    }
}
