//! Criterion: wall-clock cost of computing each heuristic's reservation
//! sequence (the paper notes Brute-Force and the DP run "in a few seconds"
//! at full scale; the library should be far faster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsj_core::{
    BruteForce, CostModel, DiscretizedDp, EvalMethod, MeanByMean, MeanDoubling, MeanStdev,
    MedianByMedian, Strategy,
};
use rsj_dist::{DiscretizationScheme, LogNormal};

fn bench_heuristics(c: &mut Criterion) {
    let dist = LogNormal::new(3.0, 0.5).unwrap();
    let cost = CostModel::reservation_only();

    let mut group = c.benchmark_group("sequence_computation");
    let simple: Vec<(&str, Box<dyn Strategy>)> = vec![
        ("mean_by_mean", Box::new(MeanByMean::default())),
        ("mean_stdev", Box::new(MeanStdev::default())),
        ("mean_doubling", Box::new(MeanDoubling::default())),
        ("median_by_median", Box::new(MedianByMedian::default())),
    ];
    for (name, h) in &simple {
        group.bench_function(*name, |b| {
            b.iter(|| h.sequence(&dist, &cost).unwrap());
        });
    }
    group.bench_function("dp_equal_time_n1000", |b| {
        let h = DiscretizedDp::paper(DiscretizationScheme::EqualTime);
        b.iter(|| h.sequence(&dist, &cost).unwrap());
    });
    group.bench_function("dp_equal_probability_n1000", |b| {
        let h = DiscretizedDp::paper(DiscretizationScheme::EqualProbability);
        b.iter(|| h.sequence(&dist, &cost).unwrap());
    });
    group.sample_size(10);
    for m in [500usize, 5000] {
        group.bench_with_input(BenchmarkId::new("brute_force_analytic", m), &m, |b, &m| {
            let h = BruteForce::new(m, 1000, EvalMethod::Analytic, 1).unwrap();
            b.iter(|| h.sequence(&dist, &cost).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new("brute_force_monte_carlo", m),
            &m,
            |b, &m| {
                let h = BruteForce::new(m, 1000, EvalMethod::MonteCarlo, 1).unwrap();
                b.iter(|| h.sequence(&dist, &cost).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
