//! Startup recovery: snapshot load + journal replay → a warm cache.
//!
//! The sequence mirrors every log-structured store:
//!
//! 1. pick the newest *usable* snapshot (falling back one generation if
//!    the newest is damaged — see [`crate::snapshot`]), insert its
//!    records into the cache;
//! 2. replay `journal.log` on top — records written after the snapshot
//!    win by insertion order, and duplicate keys are benign because the
//!    cache key deterministically identifies the plan bytes;
//! 3. count everything: recovered records warm the cache, corrupt
//!    records are skipped with a typed [`RecordFault`] and a warning,
//!    never a panic.
//!
//! Every recovered plan re-earns its place: the [`RecordScanner`] has
//! already recomputed the FNV-1a digest over the journaled sequence and
//! rejected any record whose digest disagrees, so a warm hit is exactly
//! as trustworthy as a fresh solve.

use std::path::Path;
use std::time::Instant;

use crate::cache::PlanCache;
use crate::journal::{read_log_bytes, RecordFault, RecordScanner, JOURNAL_FILE};
use crate::snapshot::SnapshotStore;

use serde::{Deserialize, Serialize};

/// What recovery found, both for the operator (`health` op) and for the
/// metrics registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Generation of the snapshot that was loaded, if any.
    pub snapshot_generation: Option<u64>,
    /// Records recovered from the snapshot.
    pub snapshot_records: u64,
    /// Records recovered from the journal tail.
    pub journal_records: u64,
    /// Total records inserted into the cache (snapshot + journal).
    pub recovered_records: u64,
    /// Damaged records skipped with a typed fault (snapshot + journal).
    pub corrupt_records: u64,
    /// Wall-clock seconds recovery took.
    pub wall_seconds: f64,
}

/// Recovers the plan cache from `dir` (a `--journal-dir`): newest usable
/// snapshot, then the journal tail. Returns the tallies; corrupt records
/// are logged and counted, never fatal. The only hard error is an I/O
/// failure reading the directory itself.
pub fn recover(dir: &Path, cache: &PlanCache) -> std::io::Result<RecoveryStats> {
    let started = Instant::now();
    let mut stats = RecoveryStats::default();

    // Newest usable snapshot wins; a snapshot that yields zero records
    // *and* faults is damaged beyond use, so fall back a generation.
    let store = SnapshotStore::open(dir)?;
    for file in store.list()? {
        let (records, faults) = store.load(&file)?;
        for fault in &faults {
            rsj_obs::warn!(
                "recovery: corrupt snapshot record in {}: {fault}",
                file.path.display()
            );
        }
        if records.is_empty() && !faults.is_empty() {
            rsj_obs::warn!(
                "recovery: snapshot generation {} unusable, falling back",
                file.generation
            );
            stats.corrupt_records += faults.len() as u64;
            continue;
        }
        stats.snapshot_generation = Some(file.generation);
        stats.snapshot_records = records.len() as u64;
        stats.corrupt_records += faults.len() as u64;
        for record in records {
            cache.insert(record.key, std::sync::Arc::new(record.plan));
        }
        break;
    }

    // Journal tail on top: appended after the snapshot, so later wins —
    // though with deterministic keys, "wins" is a distinction without a
    // difference.
    let journal_bytes = read_log_bytes(&dir.join(JOURNAL_FILE))?;
    for item in RecordScanner::new(&journal_bytes) {
        match item {
            Ok((_, record)) => {
                stats.journal_records += 1;
                cache.insert(record.key, std::sync::Arc::new(record.plan));
            }
            Err(fault) => {
                stats.corrupt_records += 1;
                // A torn tail is the expected signature of a crash mid-
                // append, not an anomaly worth a warning.
                if matches!(fault, RecordFault::TornTail { .. }) {
                    rsj_obs::info!("recovery: journal ends in a torn record: {fault}");
                } else {
                    rsj_obs::warn!("recovery: corrupt journal record: {fault}");
                }
            }
        }
    }

    stats.recovered_records = stats.snapshot_records + stats.journal_records;
    stats.wall_seconds = started.elapsed().as_secs_f64();

    let registry = rsj_obs::global_registry();
    registry
        .counter("rsj_serve_recovered_records_total")
        .add(stats.recovered_records);
    registry
        .counter("rsj_serve_corrupt_records_total")
        .add(stats.corrupt_records);
    registry
        .gauge("rsj_serve_cache_entries")
        .set(cache.len() as f64);

    rsj_obs::info!(
        "recovery: {} records warm ({} snapshot + {} journal), {} corrupt skipped, {:.3}s",
        stats.recovered_records,
        stats.snapshot_records,
        stats.journal_records,
        stats.corrupt_records,
        stats.wall_seconds
    );
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{JournalRecord, JournalWriter};
    use reservation_strategies::{plan_digest, Plan};
    use std::path::PathBuf;

    fn record(tag: &str, seq: &[f64]) -> JournalRecord {
        JournalRecord {
            key: format!("key-{tag}"),
            plan: Plan {
                distribution: format!("dist-{tag}"),
                solver: "mean_by_mean".to_string(),
                sequence: seq.to_vec(),
                complete: true,
                expected_cost: 2.5,
                omniscient_cost: 1.25,
                normalized_cost: 2.0,
                coverage_gap: 0.0,
                digest: plan_digest(seq.iter().copied()),
                simulation: None,
            },
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rsj_recover_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn empty_directory_recovers_to_an_empty_cache() {
        let dir = temp_dir("empty");
        let cache = PlanCache::new(16, 2);
        let stats = recover(&dir, &cache).unwrap();
        assert_eq!(stats.recovered_records, 0);
        assert_eq!(stats.corrupt_records, 0);
        assert!(stats.snapshot_generation.is_none());
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_plus_journal_tail_warms_the_cache() {
        let dir = temp_dir("warm");
        let store = SnapshotStore::open(&dir).unwrap();
        store
            .write(3, &[record("a", &[1.0]), record("b", &[2.0])])
            .unwrap();
        let mut writer = JournalWriter::open(dir.join(JOURNAL_FILE), false).unwrap();
        writer.append(&record("c", &[3.0])).unwrap();

        let cache = PlanCache::new(16, 2);
        let stats = recover(&dir, &cache).unwrap();
        assert_eq!(stats.snapshot_generation, Some(3));
        assert_eq!(stats.snapshot_records, 2);
        assert_eq!(stats.journal_records, 1);
        assert_eq!(stats.recovered_records, 3);
        assert_eq!(stats.corrupt_records, 0);
        for tag in ["a", "b", "c"] {
            assert!(cache.get(&format!("key-{tag}")).is_some(), "missing {tag}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_counted_not_fatal() {
        let dir = temp_dir("torn");
        let mut writer = JournalWriter::open(dir.join(JOURNAL_FILE), false).unwrap();
        writer.append(&record("a", &[1.0])).unwrap();
        writer.append(&record("b", &[2.0])).unwrap();
        drop(writer);
        // Simulate a crash mid-append: chop the last 5 bytes.
        let path = dir.join(JOURNAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let cache = PlanCache::new(16, 2);
        let stats = recover(&dir, &cache).unwrap();
        assert_eq!(stats.journal_records, 1);
        assert_eq!(stats.corrupt_records, 1);
        assert!(cache.get("key-a").is_some());
        assert!(cache.get("key-b").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn falls_back_to_an_older_snapshot_when_the_newest_is_destroyed() {
        let dir = temp_dir("fallback");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(1, &[record("old", &[1.0])]).unwrap();
        let newest = store.write(2, &[record("new", &[2.0])]).unwrap();
        // Destroy generation 2 wholesale: every record damaged.
        let mut bytes = std::fs::read(&newest).unwrap();
        for b in bytes.iter_mut() {
            *b ^= 0xFF;
        }
        std::fs::write(&newest, &bytes).unwrap();

        let cache = PlanCache::new(16, 2);
        let stats = recover(&dir, &cache).unwrap();
        assert_eq!(stats.snapshot_generation, Some(1));
        assert!(cache.get("key-old").is_some());
        assert!(stats.corrupt_records > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
