//! Typed errors for the parallel execution layer.

use std::fmt;

/// Errors surfaced by [`crate::Parallelism`] construction and the
/// fork-join entry points.
///
/// `Clone + PartialEq` so downstream error enums (e.g. `SimError`) can
/// embed these without giving up their own derives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A thread count of zero was requested (`--threads 0`,
    /// `RSJ_THREADS=0`, or `Parallelism::new(0)`).
    ZeroThreads,
    /// `RSJ_THREADS` was set but did not parse as a positive integer.
    InvalidEnv {
        /// The raw value of the environment variable.
        value: String,
    },
    /// A worker panicked while executing a task. The panic does not tear
    /// down the caller; it is captured and surfaced as this variant so
    /// batch drivers can fail one batch without aborting the process.
    WorkerPanicked {
        /// Stringified panic payload (`&str`/`String` payloads verbatim,
        /// anything else a placeholder).
        message: String,
    },
}

impl fmt::Display for ParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParError::ZeroThreads => {
                write!(f, "thread count must be at least 1 (got 0)")
            }
            ParError::InvalidEnv { value } => {
                write!(f, "RSJ_THREADS must be a positive integer, got {value:?}")
            }
            ParError::WorkerPanicked { message } => {
                write!(f, "worker panicked during parallel execution: {message}")
            }
        }
    }
}

impl std::error::Error for ParError {}

/// Extracts a human-readable message from a captured panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
