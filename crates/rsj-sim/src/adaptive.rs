//! Online adaptive replanning under censored observations (system S19).
//!
//! The paper's pipeline plans once on a fitted distribution (§5.3); this
//! module closes the loop for a production service that must *learn while
//! scheduling*: prior → plan → observe → refit → replan. Each executed job
//! yields either an exact duration (it completed) or a right-censored
//! observation (it was abandoned at a reservation boundary, revealing only
//! `X > t_i`); the censored estimators of [`rsj_dist::censored`] turn the
//! stream back into a model.
//!
//! Refits are **guardrailed** so bad or sparse data can never corrupt the
//! executor:
//!
//! * *sanity* — a fitted model must have finite positive mean and finite
//!   variance;
//! * *bounded drift* — the working model's mean may move by at most a
//!   configured factor per refit round (persistent evidence still wins:
//!   the reference mean advances by the clamped factor, so a badly
//!   misspecified prior converges over a few rounds instead of never);
//! * *hysteresis* — the reservation sequence only changes when the refit
//!   improves expected cost beyond a threshold, so an oracle-quality prior
//!   never triggers spurious replans;
//! * *graceful degradation* — a degenerate parametric fit falls back to
//!   the Kaplan–Meier trace-interpolated law, and if that too fails the
//!   last-good model is kept.
//!
//! Costs are tracked per job together with the cost of the
//! known-distribution oracle (the same strategy planned on the truth and
//! executed fault-free on the same durations), giving cold-start regret
//! curves.

use crate::error::SimError;
use crate::fault::FaultInjector;
use crate::resilient::{run_job_resilient, ResilienceConfig};
use rand::RngCore;
use rsj_core::{expected_cost_with_extension, run_job, CostModel, ReservationSequence, Strategy};
use rsj_dist::censored::{
    fit_exponential_censored, fit_lognormal_censored, fit_weibull_censored, KaplanMeier,
    Observation,
};
use rsj_dist::{ContinuousDistribution, DistError};
use rsj_par::Parallelism;
use serde::{Deserialize, Serialize};

/// Which family the refitter estimates from the observation stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ModelFamily {
    /// Censored exponential MLE (total time on test).
    Exponential,
    /// Censored Weibull MLE (profile likelihood).
    Weibull,
    /// Censored LogNormal MLE (EM) — the paper's §5.3 family.
    #[default]
    LogNormal,
    /// Nonparametric: Kaplan–Meier survival, interpolated into a
    /// continuous law.
    Empirical,
}

fn default_refit_interval() -> usize {
    10
}
fn default_min_observations() -> usize {
    10
}
fn default_hysteresis() -> f64 {
    0.02
}
fn default_max_drift() -> f64 {
    4.0
}
fn default_true() -> bool {
    true
}

/// Configuration of the adaptive replanning loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Refit family (default LogNormal, the paper's choice).
    #[serde(default)]
    pub family: ModelFamily,
    /// Refit after every this many jobs (default 10).
    #[serde(default = "default_refit_interval")]
    pub refit_interval: usize,
    /// Do not refit before this many observations exist (default 10).
    #[serde(default = "default_min_observations")]
    pub min_observations: usize,
    /// Relative expected-cost improvement required before the sequence is
    /// replaced (default 0.02; 0 disables hysteresis).
    #[serde(default = "default_hysteresis")]
    pub hysteresis: f64,
    /// Maximum factor the working model's mean may move per refit round
    /// (default 4; must be > 1).
    #[serde(default = "default_max_drift")]
    pub max_drift: f64,
    /// Abandon a job after this many failed reservations, recording a
    /// right-censored observation at the last boundary. `None` lets every
    /// job run to completion (exact observations only).
    #[serde(default)]
    pub censor_after: Option<usize>,
    /// Execution substrate (faults, retries, checkpoints); default
    /// fault-free.
    #[serde(default)]
    pub resilience: ResilienceConfig,
    /// Degrade to the Kaplan–Meier interpolated law when a parametric fit
    /// is degenerate (default true); `false` keeps the last-good model
    /// only.
    #[serde(default = "default_true")]
    pub empirical_fallback: bool,
    /// Reuse the candidate plan from an earlier refit round when the
    /// fitted model is unchanged — keyed by the model's faithful
    /// [`ContinuousDistribution::cache_key`], so a warm hit returns a
    /// plan bit-identical to what a fresh solve would produce (default
    /// true). Models without a faithful key (the empirical fallback) are
    /// always planned cold.
    #[serde(default = "default_true")]
    pub warm_start: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            family: ModelFamily::default(),
            refit_interval: default_refit_interval(),
            min_observations: default_min_observations(),
            hysteresis: default_hysteresis(),
            max_drift: default_max_drift(),
            censor_after: None,
            resilience: ResilienceConfig::fault_free(),
            empirical_fallback: true,
            warm_start: true,
        }
    }
}

impl AdaptiveConfig {
    /// Validates every parameter, naming the offending field on failure.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.refit_interval == 0 {
            return Err(SimError::InvalidParameter {
                name: "refit_interval",
                value: 0.0,
                requirement: "must be >= 1",
            });
        }
        if self.min_observations < 2 {
            return Err(SimError::InvalidParameter {
                name: "min_observations",
                value: self.min_observations as f64,
                requirement: "must be >= 2",
            });
        }
        if !(self.hysteresis.is_finite() && self.hysteresis >= 0.0) {
            return Err(SimError::InvalidParameter {
                name: "hysteresis",
                value: self.hysteresis,
                requirement: "must be finite and >= 0",
            });
        }
        if !(self.max_drift.is_finite() && self.max_drift > 1.0) {
            return Err(SimError::InvalidParameter {
                name: "max_drift",
                value: self.max_drift,
                requirement: "must be finite and > 1",
            });
        }
        if let Some(limit) = self.censor_after {
            if limit == 0 {
                return Err(SimError::InvalidParameter {
                    name: "censor_after",
                    value: 0.0,
                    requirement: "must be >= 1",
                });
            }
        }
        self.resilience.validate()
    }
}

/// Cost accounting for one job of the adaptive run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveJob {
    /// The true sampled duration.
    pub duration: f64,
    /// Cost paid by the adaptive executor.
    pub cost: f64,
    /// Cost the known-distribution oracle pays on the same duration.
    pub oracle_cost: f64,
    /// The job was abandoned at a reservation boundary (right-censored).
    pub censored: bool,
    /// The job ran to completion (false for abandonment or resilient
    /// give-up).
    pub completed: bool,
}

/// What happened at one refit boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefitRecord {
    /// Jobs executed when the refit ran.
    pub after_jobs: usize,
    /// The fitted model passed the guardrails and became the working
    /// model.
    pub accepted: bool,
    /// The sequence was actually replaced (hysteresis cleared).
    pub replanned: bool,
    /// The parametric fit was degenerate and the empirical fallback path
    /// was taken.
    pub fallback: bool,
    /// Name of the working model after this refit.
    pub model: String,
    /// Cumulative cost ratio vs the oracle up to this point.
    pub mean_ratio_so_far: f64,
    /// The candidate plan came from the warm-start memo (the fitted model
    /// was unchanged since an earlier round) instead of a fresh solve.
    #[serde(default)]
    pub warm: bool,
}

/// Full outcome of an adaptive run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// Per-job cost accounting, in execution order.
    pub jobs: Vec<AdaptiveJob>,
    /// One record per refit boundary reached.
    pub refits: Vec<RefitRecord>,
    /// Total cost paid by the adaptive executor.
    pub total_cost: f64,
    /// Total cost of the known-distribution oracle on the same durations.
    pub oracle_total_cost: f64,
    /// `total_cost / oracle_total_cost`.
    pub mean_cost_ratio: f64,
    /// `total_cost − oracle_total_cost` (cumulative regret).
    pub cumulative_regret: f64,
    /// Refits that replaced the reservation sequence.
    pub replans: usize,
    /// Refits rejected by a guardrail (degenerate fit with failed
    /// fallback, or drift bound).
    pub rejected_refits: usize,
    /// Refit rounds that took the empirical fallback path.
    pub fallbacks: usize,
    /// Right-censored observations recorded.
    pub censored_observations: usize,
    /// Jobs the resilient executor gave up on (no observation recorded).
    pub gave_up: usize,
    /// Name of the working model when the run ended.
    pub final_model: String,
}

impl AdaptiveReport {
    /// Cost ratio vs the oracle over the last `k` jobs (the "warmed-up"
    /// regime, excluding cold-start rounds). Clamps `k` to the run length.
    pub fn tail_cost_ratio(&self, k: usize) -> f64 {
        let k = k.min(self.jobs.len()).max(1);
        let tail = &self.jobs[self.jobs.len() - k..];
        let cost: f64 = tail.iter().map(|j| j.cost).sum();
        let oracle: f64 = tail.iter().map(|j| j.oracle_cost).sum();
        cost / oracle
    }
}

/// Fits the configured family to the observation stream.
fn fit_model(
    family: ModelFamily,
    observations: &[Observation],
) -> Result<Box<dyn ContinuousDistribution>, DistError> {
    match family {
        ModelFamily::Exponential => {
            fit_exponential_censored(observations).map(|f| Box::new(f.dist) as _)
        }
        ModelFamily::Weibull => fit_weibull_censored(observations).map(|f| Box::new(f.dist) as _),
        ModelFamily::LogNormal => {
            fit_lognormal_censored(observations).map(|f| Box::new(f.dist) as _)
        }
        ModelFamily::Empirical => KaplanMeier::fit(observations)?
            .to_interpolated()
            .map(|d| Box::new(d) as _),
    }
}

/// Fitted-parameter sanity: finite positive mean, finite variance.
fn model_sane(model: &dyn ContinuousDistribution) -> bool {
    let mean = model.mean();
    let var = model.variance();
    mean.is_finite() && mean > 0.0 && var.is_finite() && var >= 0.0
}

/// Executes one job under the current plan: abandonment at the
/// `censor_after` boundary (yielding a right-censored observation), or
/// resilient execution (yielding an exact observation on completion and
/// none on give-up — a job lost to faults reveals no reliable duration).
///
/// Abandoned jobs are accounted with the fault-free Eq. 1 cost of their
/// failed reservations; fault injection applies to jobs that run past the
/// censoring horizon check.
fn execute_one(
    plan: &ReservationSequence,
    cost: &CostModel,
    config: &AdaptiveConfig,
    t: f64,
    injector: &mut FaultInjector,
) -> (f64, bool, bool, Option<Observation>) {
    if let Some(limit) = config.censor_after {
        if plan.first_fitting(t) >= limit {
            let total: f64 = (0..limit).map(|i| cost.failed(plan.reservation(i))).sum();
            let bound = plan.reservation(limit - 1);
            return (total, true, false, Some(Observation::censored(bound)));
        }
    }
    let r = run_job_resilient(plan, cost, &config.resilience, t, injector);
    let obs = r.completed.then_some(Observation::exact(t));
    (r.outcome.cost, false, r.completed, obs)
}

/// Blocks shorter than this execute serially: the plan is fixed between
/// refit boundaries, so a refit-interval block is the natural parallel
/// unit, but tiny blocks are not worth the fork-join overhead. Serial and
/// parallel paths run the identical closure, so the threshold cannot
/// affect results.
const MIN_PAR_BLOCK: usize = 64;

/// Runs the full adaptive loop: `n_jobs` durations sampled from `truth`,
/// planned with `strategy` starting from `prior`, refitting the
/// [`AdaptiveConfig::family`] on the growing (censored) observation
/// stream.
///
/// One duration is drawn from `rng` per job, in order, so a run whose
/// guardrails never replace the plan is bit-for-bit identical to executing
/// the static prior plan on the same seed.
///
/// Jobs between two refit boundaries share one fixed plan, so each
/// refit-interval block executes on the ambient [`Parallelism`]: durations
/// are pre-drawn serially from `rng` (preserving the draw order), each job
/// gets its fault trace from the per-job substream
/// [`FaultInjector::for_job`], and accounting, observation collection and
/// refits stay serial at block boundaries — results are bit-for-bit
/// identical at any thread count.
pub fn run_adaptive(
    truth: &dyn ContinuousDistribution,
    prior: &dyn ContinuousDistribution,
    strategy: &dyn Strategy,
    cost: &CostModel,
    n_jobs: usize,
    config: &AdaptiveConfig,
    rng: &mut dyn RngCore,
) -> Result<AdaptiveReport, SimError> {
    if n_jobs == 0 {
        return Err(SimError::EmptyBatch);
    }
    config.validate()?;
    let _wall = rsj_obs::ScopedTimer::global("rsj_sim_adaptive_wall_seconds");
    let _span = rsj_obs::span!("sim.run_adaptive");
    let par = Parallelism::current();
    let mut plan = strategy
        .sequence(prior, cost)
        .map_err(|e| SimError::Planning {
            context: "prior",
            source: e,
        })?;
    let oracle_plan = strategy
        .sequence(truth, cost)
        .map_err(|e| SimError::Planning {
            context: "oracle",
            source: e,
        })?;
    let mut current_mean = prior.mean();
    let mut current_model_name = format!("prior: {}", prior.name());
    // Warm-start memo: candidate plans from earlier refit rounds, keyed by
    // the fitted model's faithful cache key. Strategies are deterministic
    // functions of (model, cost), so replaying a memoized plan for an
    // identical model is bit-for-bit what a fresh solve would return.
    let mut plan_memo: std::collections::HashMap<String, ReservationSequence> =
        std::collections::HashMap::new();
    let mut observations: Vec<Observation> = Vec::new();
    let mut jobs = Vec::with_capacity(n_jobs);
    let mut refits = Vec::new();
    let mut total_cost = 0.0;
    let mut oracle_total = 0.0;
    let mut replans = 0usize;
    let mut rejected = 0usize;
    let mut fallbacks = 0usize;
    let mut censored_count = 0usize;
    let mut gave_up = 0usize;

    let mut j0 = 0usize;
    while j0 < n_jobs {
        // --- One refit-interval block under the current (fixed) plan. ---
        let block = config.refit_interval.min(n_jobs - j0);
        let mut durations = Vec::with_capacity(block);
        for k in 0..block {
            let t = truth.sample(rng);
            if !t.is_finite() || t < 0.0 {
                return Err(SimError::NonFiniteSample {
                    index: j0 + k,
                    value: t,
                });
            }
            durations.push(t);
        }
        let execute = |k: usize, t: &f64| {
            let t = *t;
            let mut injector =
                FaultInjector::for_job_unvalidated(&config.resilience.faults, (j0 + k) as u64);
            let oracle_cost_j = run_job(&oracle_plan, cost, t).cost;
            let (cost_j, censored, completed, obs) =
                execute_one(&plan, cost, config, t, &mut injector);
            (oracle_cost_j, cost_j, censored, completed, obs)
        };
        let results = if block >= MIN_PAR_BLOCK {
            par.try_par_map(&durations, execute)?
        } else {
            durations
                .iter()
                .enumerate()
                .map(|(k, t)| execute(k, t))
                .collect()
        };
        for (k, (oracle_cost_j, cost_j, censored, completed, obs)) in
            results.into_iter().enumerate()
        {
            censored_count += usize::from(censored);
            gave_up += usize::from(!completed && !censored);
            if let Some(o) = obs {
                observations.push(o);
            }
            total_cost += cost_j;
            oracle_total += oracle_cost_j;
            jobs.push(AdaptiveJob {
                duration: durations[k],
                cost: cost_j,
                oracle_cost: oracle_cost_j,
                censored,
                completed,
            });
        }
        j0 += block;

        // `j0` only stops being a multiple of the interval on the final,
        // partial block — where the `j0 >= n_jobs` guard fires anyway.
        let at_boundary = block == config.refit_interval;
        if !at_boundary || j0 >= n_jobs || observations.len() < config.min_observations {
            continue;
        }

        // --- Refit with guardrails. ---
        let mut fallback = false;
        let candidate = match fit_model(config.family, &observations) {
            Ok(m) if model_sane(&*m) => Some(m),
            _ if config.empirical_fallback => {
                // Degenerate parametric fit: degrade to the trace-
                // interpolated empirical law when it is itself sane.
                fallback = true;
                KaplanMeier::fit(&observations)
                    .and_then(|km| km.to_interpolated())
                    .ok()
                    .map(|d| Box::new(d) as Box<dyn ContinuousDistribution>)
                    .filter(|m| model_sane(&**m))
            }
            _ => None,
        };
        fallbacks += usize::from(fallback);
        let mut accepted = false;
        let mut replanned = false;
        let mut warm = false;
        if let Some(model) = candidate {
            let drift = model.mean() / current_mean;
            if !(drift.is_finite() && (1.0 / config.max_drift..=config.max_drift).contains(&drift))
            {
                // Drift bound: reject the model this round but advance the
                // reference mean by the clamped factor, so persistent
                // evidence converges over a few rounds.
                rejected += 1;
                if drift.is_finite() && drift > 0.0 {
                    current_mean *= drift.clamp(1.0 / config.max_drift, config.max_drift);
                }
            } else {
                // Candidate plan: warm from the memo when this exact model
                // was already planned, cold (a full solve) otherwise.
                let refit_start = std::time::Instant::now();
                let memo_key = if config.warm_start {
                    model.cache_key()
                } else {
                    None
                };
                let planned = match memo_key.as_ref().and_then(|k| plan_memo.get(k)) {
                    Some(hit) => {
                        warm = true;
                        Ok(hit.clone())
                    }
                    None => strategy.sequence(&*model, cost),
                };
                if rsj_obs::metrics_enabled() {
                    let name = if warm {
                        "rsj_sim_adaptive_refit_seconds_warm"
                    } else {
                        "rsj_sim_adaptive_refit_seconds_cold"
                    };
                    rsj_obs::global_registry()
                        .histogram(name)
                        .observe(refit_start.elapsed().as_secs_f64());
                }
                if let Ok(candidate_plan) = planned {
                    if let (false, Some(key)) = (warm, memo_key) {
                        plan_memo.insert(key, candidate_plan.clone());
                    }
                    let e_cur = expected_cost_with_extension(&plan, &*model, cost);
                    let e_new = expected_cost_with_extension(&candidate_plan, &*model, cost);
                    accepted = true;
                    current_mean = model.mean();
                    current_model_name = model.name();
                    if e_cur.is_finite()
                        && e_new.is_finite()
                        && e_new < e_cur * (1.0 - config.hysteresis)
                    {
                        plan = candidate_plan;
                        replans += 1;
                        replanned = true;
                    }
                } else {
                    // The refit model produced no valid plan: keep last-good.
                    rejected += 1;
                }
            }
        } else {
            rejected += 1;
        }
        rsj_obs::debug!(
            "refit after {} jobs: accepted {}, replanned {}, fallback {}, warm {}, model {}, ratio {:.4}",
            j0,
            accepted,
            replanned,
            fallback,
            warm,
            current_model_name,
            total_cost / oracle_total
        );
        refits.push(RefitRecord {
            after_jobs: j0,
            accepted,
            replanned,
            fallback,
            model: current_model_name.clone(),
            mean_ratio_so_far: total_cost / oracle_total,
            warm,
        });
    }

    if rsj_obs::metrics_enabled() {
        let reg = rsj_obs::global_registry();
        reg.counter("rsj_sim_adaptive_runs_total").inc();
        reg.counter("rsj_sim_adaptive_replans_total")
            .add(replans as u64);
        reg.counter("rsj_sim_adaptive_rejected_refits_total")
            .add(rejected as u64);
        reg.counter("rsj_sim_adaptive_fallbacks_total")
            .add(fallbacks as u64);
        reg.counter("rsj_sim_adaptive_censored_total")
            .add(censored_count as u64);
        reg.counter("rsj_sim_adaptive_gave_up_total")
            .add(gave_up as u64);
        let warm_plans = refits.iter().filter(|r| r.warm).count();
        reg.counter("rsj_sim_adaptive_warm_plans_total")
            .add(warm_plans as u64);
        // Hysteresis holds: the refit was accepted as the working model
        // but the improvement did not clear the replan threshold.
        let holds = refits.iter().filter(|r| r.accepted && !r.replanned).count();
        reg.counter("rsj_sim_adaptive_hysteresis_holds_total")
            .add(holds as u64);
        reg.histogram("rsj_sim_adaptive_cost_ratio")
            .observe(total_cost / oracle_total);
    }

    Ok(AdaptiveReport {
        mean_cost_ratio: total_cost / oracle_total,
        cumulative_regret: total_cost - oracle_total,
        total_cost,
        oracle_total_cost: oracle_total,
        jobs,
        refits,
        replans,
        rejected_refits: rejected,
        fallbacks,
        censored_observations: censored_count,
        gave_up,
        final_model: current_model_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rsj_core::MeanByMean;
    use rsj_dist::LogNormal;

    fn scenario() -> (LogNormal, CostModel) {
        (
            LogNormal::new(3.0, 0.5).unwrap(),
            CostModel::reservation_only(),
        )
    }

    #[test]
    fn config_validation_names_offenders() {
        let cfg = AdaptiveConfig {
            refit_interval: 0,
            ..AdaptiveConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidParameter {
                name: "refit_interval",
                ..
            })
        ));
        let cfg = AdaptiveConfig {
            max_drift: 1.0,
            ..AdaptiveConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = AdaptiveConfig {
            hysteresis: f64::NAN,
            ..AdaptiveConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = AdaptiveConfig {
            censor_after: Some(0),
            ..AdaptiveConfig::default()
        };
        assert!(cfg.validate().is_err());
        assert!(AdaptiveConfig::default().validate().is_ok());
    }

    #[test]
    fn misspecified_prior_converges_toward_oracle() {
        // The ISSUE acceptance scenario: LogNormal truth, prior with half
        // the scale, mean per-job cost ratio < 1.05 within 200 jobs.
        let (truth, cost) = scenario();
        let prior = LogNormal::new(3.0 - std::f64::consts::LN_2, 0.5).unwrap();
        let strategy = MeanByMean::default();
        let cfg = AdaptiveConfig::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let report = run_adaptive(&truth, &prior, &strategy, &cost, 200, &cfg, &mut rng).unwrap();
        assert!(
            report.replans >= 1,
            "misspecified prior must trigger a replan"
        );
        assert!(
            report.mean_cost_ratio < 1.05,
            "ratio {} must fall below 1.05 within 200 jobs",
            report.mean_cost_ratio
        );
        assert!(report.tail_cost_ratio(100) <= report.mean_cost_ratio + 1e-9);
    }

    #[test]
    fn censoring_produces_censored_observations_and_still_converges() {
        let (truth, cost) = scenario();
        let prior = LogNormal::new(3.0 - std::f64::consts::LN_2, 0.5).unwrap();
        let strategy = MeanByMean::default();
        let cfg = AdaptiveConfig {
            censor_after: Some(2),
            ..AdaptiveConfig::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let report = run_adaptive(&truth, &prior, &strategy, &cost, 300, &cfg, &mut rng).unwrap();
        assert!(
            report.censored_observations > 0,
            "short prior plan with censor_after=2 must censor some jobs"
        );
        assert!(
            report.mean_cost_ratio < 1.2,
            "ratio {}",
            report.mean_cost_ratio
        );
    }

    #[test]
    fn empirical_family_runs_end_to_end() {
        let (truth, cost) = scenario();
        let strategy = MeanByMean::default();
        let cfg = AdaptiveConfig {
            family: ModelFamily::Empirical,
            ..AdaptiveConfig::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let report = run_adaptive(&truth, &truth, &strategy, &cost, 100, &cfg, &mut rng).unwrap();
        assert_eq!(report.jobs.len(), 100);
        assert!(report.refits.iter().any(|r| r.accepted));
    }

    #[test]
    fn zero_jobs_and_bad_config_are_typed_errors() {
        let (truth, cost) = scenario();
        let strategy = MeanByMean::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(
            run_adaptive(
                &truth,
                &truth,
                &strategy,
                &cost,
                0,
                &AdaptiveConfig::default(),
                &mut rng
            ),
            Err(SimError::EmptyBatch)
        );
        let bad = AdaptiveConfig {
            min_observations: 1,
            ..AdaptiveConfig::default()
        };
        assert!(run_adaptive(&truth, &truth, &strategy, &cost, 10, &bad, &mut rng).is_err());
    }

    #[test]
    fn warm_start_is_bit_identical_to_cold_and_actually_hits() {
        // Give-up faults (max_failures = 1, short MTBF) make some refit
        // blocks contribute zero observations, so consecutive rounds fit
        // the identical model and the warm memo fires. The warm run must
        // be bit-for-bit identical to the cold run everywhere except the
        // `warm` flags themselves.
        let (truth, cost) = scenario();
        let strategy = MeanByMean::default();
        let mk_cfg = |warm_start| AdaptiveConfig {
            family: ModelFamily::Exponential,
            refit_interval: 2,
            min_observations: 2,
            resilience: ResilienceConfig {
                faults: crate::fault::FaultConfig {
                    seed: 11,
                    mtbf: Some(20.0),
                    preemption_rate: None,
                    walltime_jitter: None,
                },
                max_failures: 1,
                ..ResilienceConfig::default()
            },
            warm_start,
            ..AdaptiveConfig::default()
        };
        let run = |warm_start: bool| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            run_adaptive(
                &truth,
                &truth,
                &strategy,
                &cost,
                80,
                &mk_cfg(warm_start),
                &mut rng,
            )
            .unwrap()
        };
        let warm = run(true);
        let cold = run(false);
        assert!(
            warm.refits.iter().any(|r| r.warm),
            "no-new-observation rounds must produce at least one warm hit"
        );
        assert!(
            cold.refits.iter().all(|r| !r.warm),
            "warm_start = false must never mark a refit warm"
        );
        assert_eq!(warm.jobs, cold.jobs);
        assert_eq!(warm.total_cost.to_bits(), cold.total_cost.to_bits());
        assert_eq!(
            warm.mean_cost_ratio.to_bits(),
            cold.mean_cost_ratio.to_bits()
        );
        assert_eq!(
            (warm.replans, warm.rejected_refits, warm.fallbacks),
            (cold.replans, cold.rejected_refits, cold.fallbacks)
        );
        assert_eq!(warm.final_model, cold.final_model);
        assert_eq!(warm.refits.len(), cold.refits.len());
        for (w, c) in warm.refits.iter().zip(&cold.refits) {
            assert_eq!(
                (w.after_jobs, w.accepted, w.replanned, w.fallback, &w.model),
                (c.after_jobs, c.accepted, c.replanned, c.fallback, &c.model)
            );
            assert_eq!(w.mean_ratio_so_far.to_bits(), c.mean_ratio_so_far.to_bits());
        }
    }

    #[test]
    fn config_json_round_trip_with_defaults() {
        let minimal: AdaptiveConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(minimal, AdaptiveConfig::default());
        let cfg = AdaptiveConfig {
            family: ModelFamily::Weibull,
            censor_after: Some(3),
            hysteresis: 0.1,
            ..AdaptiveConfig::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: AdaptiveConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
