//! A sharded, exact-LRU plan cache.
//!
//! Keys are the composite `Planner::cache_key()` strings (distribution ×
//! cost-model bits × solver config, plus the simulate options appended by
//! the server), so a hit is guaranteed to be bit-identical to recomputing:
//! every input that can change the plan is in the key, and distributions
//! without a faithful key opt out of caching entirely.
//!
//! Sharding bounds lock contention under concurrent clients: a key maps to
//! one shard by FNV-1a hash, and each shard is an independent exact-LRU
//! map guarded by its own mutex. Recency is a per-shard logical tick
//! bumped on every touch — eviction removes the entry with the smallest
//! tick, which is exact LRU within the shard.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use reservation_strategies::Plan;

#[derive(Debug)]
struct Entry {
    plan: Arc<Plan>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, Entry>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// A fixed-capacity plan cache, sharded by key hash, with exact LRU
/// eviction inside each shard.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl PlanCache {
    /// A cache holding up to `capacity` plans spread over `shards` shards
    /// (each shard holds `ceil(capacity / shards)`, minimum 1).
    ///
    /// Degenerate arguments are clamped, never panicked on, and each
    /// clamp logs a warning so a misconfigured deployment is visible:
    /// zero `shards` is clamped to 1, and zero `capacity` disables the
    /// cache entirely (every lookup misses and inserts are dropped).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = if shards == 0 {
            rsj_obs::warn!("PlanCache configured with 0 shards; clamping to 1");
            1
        } else {
            shards
        };
        let per_shard_capacity = if capacity == 0 {
            rsj_obs::warn!("PlanCache configured with 0 capacity; caching is disabled");
            0
        } else {
            capacity.div_ceil(shards).max(1)
        };
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
        }
    }

    fn shard_for(&self, key: &str) -> &Mutex<Shard> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, bumping its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<Plan>> {
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        let tick = shard.touch();
        let entry = shard.map.get_mut(key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.plan))
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least recently
    /// used entry if the shard is full.
    pub fn insert(&self, key: String, plan: Arc<Plan>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard_for(&key).lock().expect("cache shard poisoned");
        let tick = shard.touch();
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            // Exact LRU within the shard: evict the stalest tick.
            if let Some(stalest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&stalest);
            }
        }
        shard.map.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
    }

    /// Number of cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache currently holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every cached `(key, plan)` pair, in
    /// unspecified order. Shards are locked one at a time, so the copy is
    /// consistent per shard but not across shards — exactly the guarantee
    /// a snapshot compaction needs (any plan it misses is still in the
    /// journal tail).
    pub fn entries(&self) -> Vec<(String, Arc<Plan>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            out.extend(
                shard
                    .map
                    .iter()
                    .map(|(k, e)| (k.clone(), Arc::clone(&e.plan))),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(tag: &str) -> Arc<Plan> {
        Arc::new(Plan {
            distribution: tag.to_string(),
            solver: "mean_by_mean".to_string(),
            sequence: vec![1.0],
            complete: false,
            expected_cost: 1.0,
            omniscient_cost: 1.0,
            normalized_cost: 1.0,
            coverage_gap: 0.0,
            digest: tag.to_string(),
            simulation: None,
        })
    }

    #[test]
    fn evicts_in_lru_order() {
        // One shard so the eviction order is fully observable.
        let cache = PlanCache::new(2, 1);
        cache.insert("a".into(), plan("a"));
        cache.insert("b".into(), plan("b"));
        // Touch `a`, making `b` the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), plan("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none(), "b was LRU and must be evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        // Without the touch, `a` would have been the victim instead.
        let cache = PlanCache::new(2, 1);
        cache.insert("a".into(), plan("a"));
        cache.insert("b".into(), plan("b"));
        cache.insert("c".into(), plan("c"));
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let cache = PlanCache::new(2, 1);
        cache.insert("a".into(), plan("a"));
        cache.insert("b".into(), plan("b"));
        cache.insert("a".into(), plan("a2"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a").unwrap().digest, "a2");
        assert!(cache.get("b").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0, 4);
        cache.insert("a".into(), plan("a"));
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
    }

    #[test]
    fn zero_shards_clamps_to_one_without_panicking() {
        let cache = PlanCache::new(4, 0);
        cache.insert("a".into(), plan("a"));
        cache.insert("b".into(), plan("b"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_some());
    }

    #[test]
    fn zero_everything_is_a_working_null_cache() {
        // Both degenerate edges at once: must not panic, must behave as a
        // cache that never holds anything.
        let cache = PlanCache::new(0, 0);
        cache.insert("a".into(), plan("a"));
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        assert!(cache.entries().is_empty());
    }

    #[test]
    fn entries_copies_every_shard() {
        let cache = PlanCache::new(8, 4);
        cache.insert("a".into(), plan("a"));
        cache.insert("b".into(), plan("b"));
        cache.insert("c".into(), plan("c"));
        let mut keys: Vec<String> = cache.entries().into_iter().map(|(k, _)| k).collect();
        keys.sort();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn sharded_capacity_holds_at_least_the_requested_total() {
        let cache = PlanCache::new(8, 4);
        for i in 0..8 {
            cache.insert(format!("key-{i}"), plan("p"));
        }
        // Hash skew can spill a shard (evicting early) but never below
        // half; with 2 per shard and 8 keys over 4 shards we keep most.
        assert!(cache.len() >= 4, "len = {}", cache.len());
    }
}
