//! Output plumbing shared by the experiment binaries: Markdown tables, CSV
//! files and the `results/` directory convention.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Where experiment outputs go: `$RSJ_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("RSJ_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    PathBuf::from(dir)
}

/// Writes `content` to `results/<name>`, creating the directory, and
/// returns the path.
pub fn write_result_file(name: &str, content: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// A simple Markdown/CSV table builder.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the header.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(line, " {c:w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Renders CSV (comma-separated, quoting cells containing commas).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes both renderings under `results/` with the given stem and
    /// prints the Markdown to stdout.
    pub fn emit(&self, stem: &str, title: &str) -> std::io::Result<()> {
        let md = format!("# {title}\n\n{}", self.to_markdown());
        println!("{md}");
        write_result_file(&format!("{stem}.md"), &md)?;
        write_result_file(&format!("{stem}.csv"), &self.to_csv())?;
        Ok(())
    }
}

/// Formats a ratio like the paper's tables (2 decimals), with `-` for
/// invalid entries.
pub fn fmt_ratio(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "-".into(),
    }
}

/// Checks that `path` exists (used by smoke tests).
pub fn exists(path: &Path) -> bool {
    path.exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1", "2.50"]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b"), "{md}");
        assert!(md.contains("| 1 | 2.50 |"), "{md}");
        assert!(md.lines().nth(1).unwrap().starts_with("|--"), "{md}");
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(vec!["name", "v"]);
        t.push_row(vec!["a,b", "1"]);
        assert!(t.to_csv().contains("\"a,b\",1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn fmt_ratio_dash() {
        assert_eq!(fmt_ratio(None), "-");
        assert_eq!(fmt_ratio(Some(1.3333)), "1.33");
    }
}
