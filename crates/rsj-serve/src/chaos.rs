//! Seed-reproducible fault injection for the serving stack.
//!
//! Two layers, both driven by one [`ChaosPolicy`]:
//!
//! * **in-process hooks** — the server consults the policy per request to
//!   inject dispatch delays (slow workers) and worker panics, which the
//!   pool must survive;
//! * **[`ChaosProxy`]** — a TCP forwarder between client and server that
//!   drops connections mid-stream, stalls responses, and truncates writes
//!   (partial lines), exercising the client's typed-error paths.
//!
//! Every decision is a pure function of `(seed, stream, index)` via
//! [`rsj_par::substream_seed`], the workspace's splitmix64 substream
//! derivation: re-running a suite with the same seed and the same
//! connection/request ordering replays the exact same fault schedule. No
//! global RNG, no wall clock — the same property that makes solves
//! bit-identical makes the chaos harness reproducible.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rsj_par::substream_seed;

/// Labels for the per-purpose decision substreams, so a panic roll for
/// request k never correlates with a delay roll for the same request.
const STREAM_PANIC: u64 = 1;
const STREAM_DELAY: u64 = 2;
const STREAM_DROP: u64 = 3;
const STREAM_STALL: u64 = 4;
const STREAM_TRUNCATE: u64 = 5;
const STREAM_CORRUPT: u64 = 6;

/// A deterministic fault schedule. Every `*_every` knob is a sampling
/// rate: `0` disables the fault, `n` injects it on roughly 1-in-`n`
/// events, chosen by a seeded hash of the event's identity (connection
/// id, request index) rather than by a shared counter — so the schedule
/// is independent of thread interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPolicy {
    /// Root seed for every decision substream.
    pub seed: u64,
    /// Worker panics while handling ~1-in-n requests.
    pub worker_panic_every: u32,
    /// Dispatch of ~1-in-n requests is delayed by `delay_ms` (slow
    /// worker).
    pub delay_every: u32,
    /// Length of an injected dispatch delay.
    pub delay_ms: u64,
    /// The proxy drops ~1-in-n connections after forwarding a few
    /// response bytes.
    pub drop_conn_every: u32,
    /// The proxy stalls the first response read on ~1-in-n connections by
    /// `stall_ms`.
    pub stall_every: u32,
    /// Length of an injected stall.
    pub stall_ms: u64,
    /// The proxy truncates the first response chunk on ~1-in-n
    /// connections and closes (partial write).
    pub partial_write_every: u32,
}

impl ChaosPolicy {
    /// A policy with every fault disabled; turn knobs on from here.
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            worker_panic_every: 0,
            delay_every: 0,
            delay_ms: 0,
            drop_conn_every: 0,
            stall_every: 0,
            stall_ms: 0,
            partial_write_every: 0,
        }
    }

    /// The deterministic roll for event `index` of `stream`.
    fn roll(&self, stream: u64, index: u64) -> u64 {
        substream_seed(substream_seed(self.seed, stream), index)
    }

    fn hits(&self, stream: u64, index: u64, every: u32) -> bool {
        every != 0 && self.roll(stream, index).is_multiple_of(u64::from(every))
    }

    /// Event identity for a request: connection id and request index
    /// folded into one substream index.
    fn request_index(conn: u64, req: u64) -> u64 {
        conn.wrapping_mul(0x1_0000_0001).wrapping_add(req)
    }

    /// Should the worker handling request `req` of connection `conn`
    /// panic?
    pub fn worker_panics(&self, conn: u64, req: u64) -> bool {
        self.hits(
            STREAM_PANIC,
            Self::request_index(conn, req),
            self.worker_panic_every,
        )
    }

    /// Injected dispatch delay for request `req` of connection `conn`.
    pub fn dispatch_delay(&self, conn: u64, req: u64) -> Option<Duration> {
        if self.hits(
            STREAM_DELAY,
            Self::request_index(conn, req),
            self.delay_every,
        ) {
            Some(Duration::from_millis(self.delay_ms))
        } else {
            None
        }
    }

    /// The proxy-side fault (if any) for connection `conn`. At most one
    /// fault per connection, precedence drop > truncate > stall, so the
    /// observed failure mode is unambiguous.
    pub fn conn_fault(&self, conn: u64) -> Option<ConnFault> {
        if self.hits(STREAM_DROP, conn, self.drop_conn_every) {
            // Let between 1 and 64 response bytes through first, so the
            // client usually sees a torn line rather than a clean EOF.
            let after = 1 + (self.roll(STREAM_DROP, conn) >> 7) % 64;
            return Some(ConnFault::DropAfter(after as usize));
        }
        if self.hits(STREAM_TRUNCATE, conn, self.partial_write_every) {
            return Some(ConnFault::TruncateFirstChunk);
        }
        if self.hits(STREAM_STALL, conn, self.stall_every) {
            return Some(ConnFault::StallFirstByte(Duration::from_millis(
                self.stall_ms,
            )));
        }
        None
    }
}

/// One way to damage a journal/snapshot byte stream, as chosen by the
/// [`CorruptionPolicy`]. Each variant models a real failure: a crash
/// mid-append ([`TruncateAt`](Corruption::TruncateAt),
/// [`ZeroLengthTail`](Corruption::ZeroLengthTail) — filesystems often
/// extend a file with zeros before the data lands), silent media bit rot
/// ([`BitFlip`](Corruption::BitFlip)), and a replayed write
/// ([`DuplicateRecord`](Corruption::DuplicateRecord)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the stream at this byte offset (torn tail).
    TruncateAt {
        /// Offset to truncate at; clamped to the stream length.
        offset: usize,
    },
    /// Flip one bit of one byte (media rot).
    BitFlip {
        /// Byte offset to damage; clamped to the stream length.
        offset: usize,
        /// Which bit (0–7) to flip.
        bit: u8,
    },
    /// Append a copy of an existing record's frame (replayed write).
    DuplicateRecord {
        /// Index of the frame to duplicate, modulo the frame count.
        index: usize,
    },
    /// Append a run of zero bytes (preallocated-but-unwritten tail).
    ZeroLengthTail {
        /// How many zero bytes to append.
        zeros: usize,
    },
}

/// A seed-reproducible journal-corruption injector, following the same
/// `(seed, stream, index)` discipline as [`ChaosPolicy`]: corruption op
/// `k` is a pure function of the seed and `k`, so a failing recovery run
/// replays byte-for-byte from its seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionPolicy {
    /// Root seed for the corruption substream.
    pub seed: u64,
}

impl CorruptionPolicy {
    /// A policy rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The `index`-th corruption op for a stream of `len` bytes holding
    /// `records` well-formed frames. Pure: same `(seed, index, len,
    /// records)` → same op, regardless of call order or thread.
    pub fn op(&self, index: u64, len: usize, records: usize) -> Corruption {
        let roll = substream_seed(substream_seed(self.seed, STREAM_CORRUPT), index);
        // Decorrelated draws for the op selector and its parameters.
        let param = substream_seed(roll, 1);
        match roll % 4 {
            0 => Corruption::TruncateAt {
                offset: if len == 0 { 0 } else { param as usize % len },
            },
            1 => Corruption::BitFlip {
                offset: if len == 0 { 0 } else { param as usize % len },
                bit: (substream_seed(roll, 2) % 8) as u8,
            },
            2 => Corruption::DuplicateRecord {
                index: if records == 0 {
                    0
                } else {
                    param as usize % records
                },
            },
            _ => Corruption::ZeroLengthTail {
                zeros: 1 + (param as usize % 64),
            },
        }
    }

    /// Applies `count` seeded ops to a framed byte stream (`spans` are
    /// the well-formed frame ranges, from
    /// [`crate::journal::frame_spans`]). Ops are applied sequentially —
    /// op `k+1` sees the stream op `k` produced — so the damage pattern
    /// is fully determined by `(seed, count)` and the input bytes.
    pub fn corrupt(&self, bytes: &[u8], spans: &[std::ops::Range<usize>], count: u64) -> Vec<u8> {
        let mut out = bytes.to_vec();
        for index in 0..count {
            match self.op(index, out.len(), spans.len()) {
                Corruption::TruncateAt { offset } => {
                    out.truncate(offset.min(out.len()));
                }
                Corruption::BitFlip { offset, bit } => {
                    if let Some(b) = out.get_mut(offset) {
                        *b ^= 1 << bit;
                    }
                }
                Corruption::DuplicateRecord { index } => {
                    // Spans describe the *original* stream; skip if a
                    // previous truncation already ate that frame.
                    if let Some(span) = spans.get(index) {
                        if span.end <= out.len() {
                            let frame = out[span.clone()].to_vec();
                            out.extend_from_slice(&frame);
                        }
                    }
                }
                Corruption::ZeroLengthTail { zeros } => {
                    let new_len = out.len() + zeros;
                    out.resize(new_len, 0);
                }
            }
        }
        out
    }
}

/// A connection-scoped fault applied by the proxy to the server→client
/// leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Forward this many response bytes, then sever the connection.
    DropAfter(usize),
    /// Forward only half of the first response chunk, then sever.
    TruncateFirstChunk,
    /// Sleep before forwarding the first response byte.
    StallFirstByte(Duration),
}

/// Stops a running [`ChaosProxy`] from another thread.
#[derive(Debug, Clone)]
pub struct ProxyHandle(Arc<AtomicBool>);

impl ProxyHandle {
    /// Asks the proxy's accept loop and pumps to wind down. Idempotent.
    pub fn stop(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// A fault-injecting TCP forwarder: clients connect to the proxy, the
/// proxy connects onward to the real server, and the policy decides per
/// connection whether (and how) to misbehave on the response leg.
pub struct ChaosProxy {
    listener: TcpListener,
    local_addr: SocketAddr,
    upstream: SocketAddr,
    policy: ChaosPolicy,
    stop: Arc<AtomicBool>,
}

/// How often a proxy pump wakes up to poll the stop flag.
const PUMP_POLL: Duration = Duration::from_millis(50);

impl ChaosProxy {
    /// Binds the proxy on an ephemeral localhost port in front of
    /// `upstream`.
    pub fn bind(upstream: SocketAddr, policy: ChaosPolicy) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            upstream,
            policy,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can stop the proxy from another thread.
    pub fn stop_handle(&self) -> ProxyHandle {
        ProxyHandle(Arc::clone(&self.stop))
    }

    /// Forwards connections until stopped. Connection ids are assigned in
    /// accept order (0, 1, 2, …), which is what ties a fault schedule to
    /// a deterministic client workload.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut pumps = Vec::new();
        let mut conn_id: u64 = 0;
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((client, _peer)) => {
                    let fault = self.policy.conn_fault(conn_id);
                    conn_id += 1;
                    let _ = client.set_nodelay(true);
                    match TcpStream::connect(self.upstream) {
                        Ok(server) => {
                            let _ = server.set_nodelay(true);
                            pumps.extend(spawn_pumps(client, server, fault, &self.stop));
                        }
                        Err(e) => {
                            rsj_obs::debug!("chaos proxy upstream connect failed: {e}");
                            let _ = client.shutdown(Shutdown::Both);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for pump in pumps {
            let _ = pump.join();
        }
        Ok(())
    }
}

/// One pump per direction. Faults apply to the server→client leg only:
/// the request must reach the server for the fault to model a *response*
/// failure, which is the side a resilient client has to survive.
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    fault: Option<ConnFault>,
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    let up = (client.try_clone(), server.try_clone(), Arc::clone(stop));
    let down = (server, client, Arc::clone(stop));
    let mut handles = Vec::new();
    if let (Ok(from), Ok(to), stop) = up {
        handles.push(
            std::thread::Builder::new()
                .name("chaos-up".into())
                .spawn(move || pump(from, to, None, &stop))
                .expect("spawn chaos pump"),
        );
    }
    let (from, to, stop) = down;
    handles.push(
        std::thread::Builder::new()
            .name("chaos-down".into())
            .spawn(move || pump(from, to, fault, &stop))
            .expect("spawn chaos pump"),
    );
    handles
}

/// Copies bytes `from` → `to`, applying `fault`, until EOF, error, or
/// stop.
fn pump(from: TcpStream, mut to: TcpStream, fault: Option<ConnFault>, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(PUMP_POLL));
    let mut from = from;
    let mut buf = [0u8; 4096];
    let mut forwarded: usize = 0;
    let mut first_chunk = true;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let mut chunk = &buf[..n];
        match fault {
            Some(ConnFault::StallFirstByte(delay)) if first_chunk => {
                std::thread::sleep(delay);
            }
            Some(ConnFault::TruncateFirstChunk) if first_chunk => {
                // Half of the first chunk, then a hard close: the client
                // sees a torn response line.
                chunk = &chunk[..n / 2];
                if to.write_all(chunk).is_err() {
                    break;
                }
                let _ = to.flush();
                sever(&from, &to);
                return;
            }
            _ => {}
        }
        first_chunk = false;
        // A drop fault severs *mid-line*: clamp the chunk to the byte
        // budget so a small response can't slip through whole before the
        // limit check.
        if let Some(ConnFault::DropAfter(limit)) = fault {
            let room = limit.saturating_sub(forwarded);
            if chunk.len() >= room {
                if to.write_all(&chunk[..room]).is_ok() {
                    let _ = to.flush();
                }
                sever(&from, &to);
                return;
            }
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        let _ = to.flush();
        forwarded += chunk.len();
    }
    let _ = to.shutdown(Shutdown::Write);
}

fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_identity() {
        let policy = ChaosPolicy {
            worker_panic_every: 3,
            delay_every: 2,
            delay_ms: 5,
            drop_conn_every: 4,
            stall_every: 2,
            stall_ms: 10,
            partial_write_every: 5,
            ..ChaosPolicy::quiet(42)
        };
        let replay = policy;
        for conn in 0..50u64 {
            assert_eq!(policy.conn_fault(conn), replay.conn_fault(conn));
            for req in 0..20u64 {
                assert_eq!(
                    policy.worker_panics(conn, req),
                    replay.worker_panics(conn, req)
                );
                assert_eq!(
                    policy.dispatch_delay(conn, req),
                    replay.dispatch_delay(conn, req)
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = ChaosPolicy {
            worker_panic_every: 2,
            ..ChaosPolicy::quiet(1)
        };
        let b = ChaosPolicy {
            worker_panic_every: 2,
            ..ChaosPolicy::quiet(2)
        };
        let schedule =
            |p: &ChaosPolicy| -> Vec<bool> { (0..64).map(|req| p.worker_panics(0, req)).collect() };
        assert_ne!(schedule(&a), schedule(&b));
    }

    #[test]
    fn quiet_policy_injects_nothing() {
        let policy = ChaosPolicy::quiet(7);
        for conn in 0..20u64 {
            assert_eq!(policy.conn_fault(conn), None);
            for req in 0..20u64 {
                assert!(!policy.worker_panics(conn, req));
                assert_eq!(policy.dispatch_delay(conn, req), None);
            }
        }
    }

    #[test]
    fn corruption_ops_are_pure_functions_of_seed_and_index() {
        let policy = CorruptionPolicy::new(20190520);
        let replay = CorruptionPolicy::new(20190520);
        for index in 0..64u64 {
            assert_eq!(policy.op(index, 1000, 5), replay.op(index, 1000, 5));
        }
        let other = CorruptionPolicy::new(20190521);
        let ops = |p: &CorruptionPolicy| -> Vec<Corruption> {
            (0..64).map(|i| p.op(i, 1000, 5)).collect()
        };
        assert_ne!(ops(&policy), ops(&other));
    }

    #[test]
    fn corruption_covers_every_variant() {
        let policy = CorruptionPolicy::new(7);
        let mut seen = [false; 4];
        for index in 0..256u64 {
            match policy.op(index, 1000, 5) {
                Corruption::TruncateAt { .. } => seen[0] = true,
                Corruption::BitFlip { .. } => seen[1] = true,
                Corruption::DuplicateRecord { .. } => seen[2] = true,
                Corruption::ZeroLengthTail { .. } => seen[3] = true,
            }
        }
        assert_eq!(seen, [true; 4], "{seen:?}");
    }

    #[test]
    fn corrupt_is_deterministic_and_never_panics_on_short_input() {
        let policy = CorruptionPolicy::new(99);
        let bytes: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let spans = vec![0..50, 50..120, 120..200];
        let a = policy.corrupt(&bytes, &spans, 8);
        let b = policy.corrupt(&bytes, &spans, 8);
        assert_eq!(a, b);
        // Degenerate inputs must not panic.
        let _ = policy.corrupt(&[], &[], 8);
        let _ = policy.corrupt(&bytes[..3], &[], 8);
    }

    #[test]
    fn sampling_rates_are_roughly_respected() {
        let policy = ChaosPolicy {
            worker_panic_every: 4,
            ..ChaosPolicy::quiet(9)
        };
        let hits = (0..4000u64)
            .filter(|&req| policy.worker_panics(1, req))
            .count();
        // 1-in-4 nominal; allow a generous band for hash variance.
        assert!((700..=1300).contains(&hits), "{hits}");
    }
}
