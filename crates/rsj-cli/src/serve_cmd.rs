//! `rsj serve` and `rsj request`: the CLI front of the `rsj-serve`
//! planning daemon.
//!
//! `serve` binds and runs a server in the foreground until a client sends
//! a `shutdown` request (or the process is killed). `request` is a
//! one-shot client: connect, send one request, print the response, exit —
//! enough for scripts, smoke tests and quick interactive use.

use crate::config::PlanConfig;
use rsj_core::CostModel;
use rsj_serve::{
    BreakerConfig, Client, DurabilityConfig, Request, ResilientClient, Response, RetryPolicy,
    Server, ServerConfig, PROTOCOL_VERSION,
};

/// Options for `rsj serve`, all flag-settable.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (default `127.0.0.1:7077`; port 0 picks a free one).
    pub addr: String,
    /// Connection-handler threads (`--workers`).
    pub workers: Option<usize>,
    /// Plan-cache capacity (`--cache`, 0 disables caching).
    pub cache: Option<usize>,
    /// Admission-queue hard capacity (`--queue`).
    pub queue: Option<usize>,
    /// Shedding starts at this queue depth (`--queue-high`).
    pub queue_high: Option<usize>,
    /// Shedding stops once depth drains to this (`--queue-low`).
    pub queue_low: Option<usize>,
    /// Directory for the durable plan journal and snapshots
    /// (`--journal-dir`); restarting against the same directory
    /// warm-fills the cache. Unset serves memory-only.
    pub journal_dir: Option<String>,
    /// Compact the journal into a snapshot every N appends
    /// (`--snapshot-every`, default 64; 0 disables snapshots).
    pub snapshot_every: Option<u64>,
    /// Retain the last N request timelines for the `trace` op
    /// (`--trace-buffer`; 0 or unset disables server-side retention).
    pub trace_buffer: Option<usize>,
    /// Warn (one event, full stage breakdown) on requests slower than
    /// this many milliseconds (`--slow-ms`; unset disables).
    pub slow_ms: Option<u64>,
    /// Per-worker dequeue batch: each worker drains up to this many
    /// queued requests at once and solves same-table groups on one warm
    /// eval table (`--batch`, default 8; 1 disables batching).
    pub batch: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".to_string(),
            workers: None,
            cache: None,
            queue: None,
            queue_high: None,
            queue_low: None,
            journal_dir: None,
            snapshot_every: None,
            trace_buffer: None,
            slow_ms: None,
            batch: None,
        }
    }
}

/// `rsj serve`: run the planning server in the foreground. Prints the
/// bound address on stdout (scripts bind port 0 and read it back), then
/// blocks until a graceful shutdown drains the last request.
pub fn run_serve(opts: &ServeOptions) -> Result<(), String> {
    let mut config = ServerConfig {
        addr: opts.addr.clone(),
        ..ServerConfig::default()
    };
    if let Some(workers) = opts.workers {
        if workers == 0 {
            return Err("--workers must be >= 1".to_string());
        }
        config.workers = workers;
    }
    if let Some(cache) = opts.cache {
        config.cache_capacity = cache;
    }
    if let Some(queue) = opts.queue {
        if queue == 0 {
            return Err("--queue must be >= 1".to_string());
        }
        config.admission.capacity = queue;
        // Keep the watermarks proportional unless overridden below.
        config.admission.high_watermark = queue * 3 / 4;
        config.admission.low_watermark = queue / 4;
    }
    if let Some(high) = opts.queue_high {
        config.admission.high_watermark = high;
    }
    if let Some(low) = opts.queue_low {
        config.admission.low_watermark = low;
    }
    if let Some(dir) = &opts.journal_dir {
        let mut durability = DurabilityConfig::new(dir);
        if let Some(every) = opts.snapshot_every {
            durability.snapshot_every = every;
        }
        config.durability = Some(durability);
    } else if opts.snapshot_every.is_some() {
        return Err("--snapshot-every requires --journal-dir".to_string());
    }
    if let Some(buffer) = opts.trace_buffer {
        config.trace_buffer = buffer;
    }
    config.slow_ms = opts.slow_ms;
    if let Some(batch) = opts.batch {
        if batch == 0 {
            return Err("--batch must be >= 1".to_string());
        }
        config.batch = batch;
    }
    let server = Server::bind(config).map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    println!("rsj-serve listening on {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| format!("server error: {e}"))
}

/// What `rsj request` should send.
#[derive(Debug, Clone)]
pub enum RequestAction {
    /// `--ping`: liveness probe.
    Ping,
    /// `--metrics`: fetch Prometheus metrics.
    Metrics,
    /// `--health`: fetch the server's durability/load posture (answers
    /// even mid-recovery).
    Health,
    /// `--ready`: readiness probe; exits non-zero with a typed
    /// `not_ready` while the server is still recovering.
    Ready,
    /// `--shutdown`: ask the server to drain and exit.
    Shutdown,
    /// `--config <plan.json>`: request a plan (the same schema as
    /// `rsj plan`).
    Plan(Box<PlanConfig>),
}

/// Client-side knobs for `rsj request`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestOptions {
    /// Per-request deadline in milliseconds (`--deadline-ms`); the server
    /// sheds the request (typed `deadline_exceeded`) once it lapses.
    pub deadline_ms: Option<u64>,
    /// Retry attempts after the first (`--retries`); retried through the
    /// resilient client (seeded-jitter backoff + circuit breaker) and
    /// only for transient failures (`overloaded`, `internal`, transport).
    pub retries: Option<u32>,
    /// `--trace`: ask the server to return its per-request timeline and
    /// render it under the plan (text mode) or embed it (JSON mode).
    pub trace: bool,
}

/// `rsj request`: send one request to a running server and render the
/// response. Error responses become `Err`, so the process exits non-zero.
pub fn run_request(
    addr: &str,
    action: &RequestAction,
    json: bool,
    opts: RequestOptions,
) -> Result<String, String> {
    let mut request = match action {
        RequestAction::Ping => Request::ping(),
        RequestAction::Metrics => Request::metrics(),
        RequestAction::Health => Request::health(),
        RequestAction::Ready => Request::ready(),
        RequestAction::Shutdown => Request::shutdown(),
        RequestAction::Plan(cfg) => Request::Plan {
            v: PROTOCOL_VERSION,
            distribution: cfg.distribution.clone(),
            cost: Some(CostModel {
                alpha: cfg.cost.alpha,
                beta: cfg.cost.beta,
                gamma: cfg.cost.gamma,
            }),
            solver: cfg.heuristic.clone(),
            seed: None,
            simulate: None,
            deadline_ms: None,
            trace_id: None,
            trace: false,
        },
    };
    if let Some(ms) = opts.deadline_ms {
        request = request.with_deadline_ms(ms);
    }
    if opts.trace {
        request = request.with_trace();
    }
    let response = match opts.retries {
        Some(retries) if retries > 0 => {
            let policy = RetryPolicy {
                max_attempts: retries + 1,
                ..RetryPolicy::default()
            };
            let mut client = ResilientClient::new(addr, policy, BreakerConfig::default());
            client
                .call(&request)
                .map_err(|e| format!("request failed: {e}"))?
        }
        _ => {
            let mut client =
                Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            client
                .call(&request)
                .map_err(|e| format!("request failed: {e}"))?
        }
    };

    if let Response::Error { kind, message, .. } = &response {
        return Err(format!("server error ({kind}): {message}"));
    }
    if json {
        return Ok(format!(
            "{}\n",
            serde_json::to_string_pretty(&response).expect("responses are serializable")
        ));
    }
    Ok(match response {
        Response::Pong { .. } => "pong\n".to_string(),
        Response::Ready { .. } => "ready\n".to_string(),
        Response::Health { health, .. } => {
            let mut out = String::new();
            out.push_str(&format!("ready:            {}\n", health.ready));
            out.push_str(&format!("recovered:        {}\n", health.recovered));
            out.push_str(&format!("draining:         {}\n", health.draining));
            out.push_str(&format!("queue depth:      {}\n", health.queue_depth));
            out.push_str(&format!("cache entries:    {}\n", health.cache_entries));
            if let Some(recovery) = &health.recovery {
                out.push_str(&format!(
                    "recovery:         {} records warm ({} snapshot + {} journal), {} corrupt skipped, {:.3}s\n",
                    recovery.recovered_records,
                    recovery.snapshot_records,
                    recovery.journal_records,
                    recovery.corrupt_records,
                    recovery.wall_seconds
                ));
            }
            out
        }
        Response::ShuttingDown { .. } => "server shutting down\n".to_string(),
        Response::Metrics { prometheus, .. } => prometheus,
        Response::Plan {
            plan,
            provenance,
            timings,
            trace_id,
            timeline,
            ..
        } => {
            let mut out = String::new();
            out.push_str(&format!("server:           {}\n", provenance.server));
            out.push_str(&format!("distribution:     {}\n", plan.distribution));
            out.push_str(&format!("solver:           {}\n", plan.solver));
            out.push_str(&format!("ladder length:    {}\n", plan.sequence.len()));
            out.push_str(&format!("expected cost:    {:.4}\n", plan.expected_cost));
            out.push_str(&format!(
                "vs omniscient:    {:.4} (E° = {:.4})\n",
                plan.normalized_cost, plan.omniscient_cost
            ));
            out.push_str(&format!("plan digest:      {}\n", plan.digest));
            out.push_str(&format!(
                "served:           {} in {:.1} ms\n",
                if provenance.cached {
                    "from cache"
                } else if provenance.coalesced {
                    "coalesced"
                } else {
                    "computed"
                },
                timings.total_seconds * 1e3
            ));
            if let Some(id) = &trace_id {
                out.push_str(&format!("trace id:         {id}\n"));
            }
            if let Some(timeline) = &timeline {
                out.push_str(&render_timeline(timeline));
            }
            out
        }
        Response::Error { .. } => unreachable!("handled above"),
        Response::Trace { .. } => unreachable!("request never sends a trace op"),
        Response::PlanBatch { .. } => unreachable!("request never sends a plan_batch op"),
    })
}

/// The server-side timeline as an indented stage table: one line per
/// stage with its offset and duration, then the stage-sum coverage of
/// the server-measured wall time.
fn render_timeline(timeline: &rsj_obs::TimelineRecord) -> String {
    let mut out = String::new();
    let wall_ms = timeline.total_us as f64 / 1e3;
    out.push_str(&format!("server timeline:  {wall_ms:.3} ms wall\n"));
    for stage in &timeline.stages {
        out.push_str(&format!(
            "  {:<18} @{:>9.3} ms  {:>9.3} ms\n",
            stage.name,
            stage.start_us as f64 / 1e3,
            stage.duration_us() as f64 / 1e3,
        ));
    }
    let sum_ms = timeline.stage_sum_us() as f64 / 1e3;
    let pct = if timeline.total_us > 0 {
        100.0 * sum_ms / wall_ms
    } else {
        0.0
    };
    out.push_str(&format!(
        "  stage sum:       {sum_ms:.3} ms ({pct:.0}% of wall)\n"
    ));
    out
}

/// Options for `rsj trace export`.
#[derive(Debug, Clone, Default)]
pub struct TraceExportOptions {
    /// Output path (`--out`); the file is Chrome-trace JSON, loadable in
    /// Perfetto / `chrome://tracing`.
    pub out: String,
    /// Fetch at most this many timelines (`--last`; server default 32).
    pub last: Option<usize>,
    /// Keep only timelines at least this long (`--min-ms`).
    pub min_ms: Option<f64>,
}

/// `rsj trace export`: fetch recent request timelines from a running
/// server's trace ring and write them as a Chrome-trace JSON file.
pub fn run_trace_export(addr: &str, opts: &TraceExportOptions) -> Result<String, String> {
    if opts.out.is_empty() {
        return Err("missing --out <trace.json>".to_string());
    }
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let timelines = client
        .trace(opts.last, opts.min_ms, None)
        .map_err(|e| format!("trace fetch failed: {e}"))?;
    let mut json = rsj_obs::chrome_trace_json(&timelines);
    json.push('\n');
    std::fs::write(&opts.out, json).map_err(|e| format!("cannot write {}: {e}", opts.out))?;
    Ok(format!(
        "wrote {} timeline(s) to {}\n",
        timelines.len(),
        opts.out
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CostSpec;
    use rsj_core::SolverSpec;
    use rsj_dist::DistSpec;

    fn spawn_test_server() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
        let server = Server::bind(ServerConfig::default()).expect("bind");
        let addr = server.local_addr().to_string();
        let join = std::thread::spawn(move || server.run());
        (addr, join)
    }

    #[test]
    fn request_round_trip_against_live_server() {
        let (addr, join) = spawn_test_server();
        assert_eq!(
            run_request(
                &addr,
                &RequestAction::Ping,
                false,
                RequestOptions::default()
            )
            .unwrap(),
            "pong\n"
        );

        let cfg = PlanConfig {
            distribution: DistSpec::LogNormal {
                mu: 3.0,
                sigma: 0.5,
            },
            cost: CostSpec {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
            },
            heuristic: SolverSpec::MeanByMean,
            show: 5,
        };
        let action = RequestAction::Plan(Box::new(cfg.clone()));
        let text = run_request(&addr, &action, false, RequestOptions::default()).unwrap();
        assert!(text.contains("plan digest"), "{text}");

        // The served digest equals the offline `rsj plan --json` digest.
        let offline = crate::commands::run_plan(&cfg, true, false).unwrap();
        let offline: serde_json::Value = serde_json::from_str(&offline).unwrap();
        let served = run_request(&addr, &action, true, RequestOptions::default()).unwrap();
        let served: serde_json::Value = serde_json::from_str(&served).unwrap();
        assert_eq!(served["plan"]["digest"], offline["digest"]);
        assert_eq!(served["plan"]["sequence"], offline["sequence"]);

        let metrics = run_request(
            &addr,
            &RequestAction::Metrics,
            false,
            RequestOptions::default(),
        )
        .unwrap();
        assert!(metrics.contains("rsj_serve_requests_total"), "{metrics}");

        assert!(run_request(
            &addr,
            &RequestAction::Shutdown,
            false,
            RequestOptions::default()
        )
        .unwrap()
        .contains("shutting down"));
        join.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn health_and_ready_round_trip_against_live_server() {
        let (addr, join) = spawn_test_server();
        assert_eq!(
            run_request(
                &addr,
                &RequestAction::Ready,
                false,
                RequestOptions::default()
            )
            .unwrap(),
            "ready\n"
        );
        let health = run_request(
            &addr,
            &RequestAction::Health,
            false,
            RequestOptions::default(),
        )
        .unwrap();
        assert!(health.contains("ready:            true"), "{health}");
        assert!(health.contains("recovered:        true"), "{health}");
        run_request(
            &addr,
            &RequestAction::Shutdown,
            false,
            RequestOptions::default(),
        )
        .unwrap();
        join.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn server_errors_exit_nonzero() {
        let (addr, join) = spawn_test_server();
        let cfg = PlanConfig {
            distribution: DistSpec::Exponential { lambda: -1.0 },
            cost: CostSpec {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
            },
            heuristic: SolverSpec::MeanByMean,
            show: 5,
        };
        let err = run_request(
            &addr,
            &RequestAction::Plan(Box::new(cfg)),
            false,
            RequestOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("invalid_distribution"), "{err}");
        run_request(
            &addr,
            &RequestAction::Shutdown,
            false,
            RequestOptions::default(),
        )
        .unwrap();
        join.join().expect("server thread").expect("clean exit");
    }
}
