//! Regenerates the paper's table4 (see rsj-bench docs).

use rsj_bench::scenarios::Fidelity;

fn main() -> std::io::Result<()> {
    let fidelity = Fidelity::from_env();
    eprintln!("running table4 at {fidelity:?} fidelity (RSJ_FIDELITY=quick for a fast pass)");
    rsj_bench::experiments::table4::emit(fidelity, rsj_bench::DEFAULT_SEED)?;
    Ok(())
}
