//! # reservation-strategies
//!
//! A production-quality Rust implementation of *Reservation Strategies for
//! Stochastic Jobs* (Aupy, Gainaru, Honoré, Raghavan, Robert, Sun — IPDPS
//! 2019): scheduling jobs with stochastic execution times on
//! reservation-based platforms (clouds with Reserved Instances, HPC batch
//! queues) by computing cost-minimizing sequences of increasing
//! reservations.
//!
//! This facade crate re-exports the four library crates of the workspace:
//!
//! * [`dist`] (`rsj-dist`) — probability distributions, special functions,
//!   discretization and fitting;
//! * [`core`] (`rsj-core`) — cost models, the optimal-sequence theory and
//!   the heuristic suite;
//! * [`sim`] (`rsj-sim`) — the discrete-event batch-queue simulator and
//!   cloud pricing models;
//! * [`traces`] (`rsj-traces`) — neuroscience runtime archives and the
//!   NeuroHPC scenario.
//!
//! ## Quickstart
//!
//! ```
//! use reservation_strategies::prelude::*;
//!
//! // Job runtimes follow LogNormal(3, 0.5); the platform bills exactly
//! // what is requested (RESERVATIONONLY, e.g. AWS Reserved Instances).
//! let dist = LogNormal::new(3.0, 0.5).unwrap();
//! let cost = CostModel::reservation_only();
//!
//! // Compute a near-optimal reservation sequence.
//! let strategy = BruteForce::new(500, 1000, EvalMethod::Analytic, 42).unwrap();
//! let sequence = strategy.sequence(&dist, &cost).unwrap();
//!
//! // How much worse than clairvoyance? (Table 2 reports ≈1.85.)
//! let ratio = normalized_cost_analytic(&sequence, &dist, &cost);
//! assert!(ratio < 2.0);
//! ```

pub use rsj_core as core;
pub use rsj_dist as dist;
pub use rsj_sim as sim;
pub use rsj_traces as traces;

/// One-stop imports for applications.
pub mod prelude {
    pub use rsj_core::prelude::*;
    pub use rsj_dist::prelude::*;
    pub use rsj_sim::prelude::*;
    pub use rsj_traces::prelude::*;
}
