//! The metrics registry: named counters, gauges and histograms behind
//! cheap cloneable handles, plus the process-global registry used by the
//! instrumented crates.
//!
//! ## Zero cost when disabled
//!
//! Recording into the *global* registry is opt-in: call [`set_enabled`]
//! (the CLI's `--metrics-out`, the bench harness, and `RSJ_METRICS=1` do).
//! Instrumented hot paths guard on [`enabled`] — a single relaxed atomic
//! load — so a build without metrics consumers pays nothing beyond that
//! load per *operation* (solve / batch), never per inner-loop iteration.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (stored as `f64` bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram handle; see [`Histogram`] for the bucketing scheme.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one sample.
    #[inline]
    pub fn observe(&self, value: f64) {
        self.0
            .lock()
            .expect("histogram lock poisoned")
            .record(value);
    }

    /// Records one sample and retains it as its bucket's exemplar, so
    /// the exported aggregate points back at this request's trace id
    /// (see [`Histogram::record_with_exemplar`]).
    #[inline]
    pub fn observe_with_exemplar(&self, value: f64, trace_id: &str) {
        self.0
            .lock()
            .expect("histogram lock poisoned")
            .record_with_exemplar(value, trace_id);
    }

    /// Records a whole slice under one lock acquisition.
    pub fn observe_all(&self, values: &[f64]) {
        self.0
            .lock()
            .expect("histogram lock poisoned")
            .record_all(values);
    }

    /// Merges a locally accumulated histogram (the per-shard pattern:
    /// record lock-free into a local [`Histogram`], merge once per batch).
    pub fn merge_from(&self, other: &Histogram) {
        self.0.lock().expect("histogram lock poisoned").merge(other);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().expect("histogram lock poisoned").clone()
    }
}

/// One named metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A set of named metrics. Handles returned by [`Registry::counter`] /
/// [`Registry::gauge`] / [`Registry::histogram`] stay valid (and cheap to
/// record into) for the registry's lifetime; names are created on first
/// use.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind — that is
    /// a programming error in the instrumented code, not a runtime
    /// condition.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || {
            Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, created on first use (same contract as
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0))))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, created on first use (same contract as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        match self.get_or_insert(name, || {
            Metric::Histogram(HistogramHandle(Arc::new(Mutex::new(Histogram::new()))))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(&self, name: &str, create: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("registry lock poisoned");
        metrics.get(name).cloned().unwrap_or_else(|| {
            let metric = create();
            metrics.insert(name.to_string(), metric.clone());
            metric
        })
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics
            .lock()
            .expect("registry lock poisoned")
            .is_empty()
    }

    /// Registered metric names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .lock()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Removes every metric (tests; the global registry is per-process).
    pub fn clear(&self) {
        self.metrics.lock().expect("registry lock poisoned").clear();
    }

    /// A consistent point-in-time snapshot for the exporters.
    pub fn snapshot(&self) -> crate::export::MetricsSnapshot {
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        let mut snap = crate::export::MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push(crate::export::CounterSample {
                    name: name.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(crate::export::GaugeSample {
                    name: name.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => snap
                    .histograms
                    .push(crate::export::HistogramSample::of(name, &h.snapshot())),
            }
        }
        snap
    }
}

/// `true` once a metrics consumer opted in (exporter, bench harness).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether global-registry recording is on — the hot-path guard
/// (one relaxed atomic load).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns global-registry recording on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global registry. Always usable; instrumented code gates on
/// [`enabled`] before touching it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("jobs_total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("jobs_total").get(), 5);

        let g = reg.gauge("queue_depth");
        g.set(3.25);
        assert_eq!(reg.gauge("queue_depth").get(), 3.25);

        let h = reg.histogram("latency");
        h.observe(1.0);
        h.observe_all(&[2.0, 3.0]);
        assert_eq!(reg.histogram("latency").snapshot().count(), 3);
    }

    #[test]
    fn names_are_sorted_and_clear_works() {
        let reg = Registry::new();
        reg.counter("b");
        reg.counter("a");
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        reg.clear();
        assert!(reg.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics_with_names() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn merge_from_matches_direct_observation() {
        let reg = Registry::new();
        let h = reg.histogram("shards");
        let mut local = crate::Histogram::new();
        for i in 1..100 {
            local.record(i as f64);
        }
        h.merge_from(&local);
        let direct = reg.histogram("shards").snapshot();
        assert_eq!(direct.count(), 99);
        assert_eq!(direct.p50(), local.p50());
    }
}
