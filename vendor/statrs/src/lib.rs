//! Offline, API-compatible subset of `statrs`.
//!
//! Provides `function::erf::{erf, erfc}` and
//! `distribution::{Normal, ContinuousCDF}`, which the workspace uses as
//! an *independent numeric oracle* in tests (tolerances 1e-7..1e-8).
//! The implementation routes through the regularized incomplete gamma
//! function (series + Lentz continued fraction, ~1e-14 accurate) rather
//! than the polynomial fits used by the crates under test, so agreement
//! between the two is meaningful evidence of correctness.

#![warn(missing_docs)]
// Vendored stand-in for the crates.io crate; keep clippy out of it, as
// it would be for a registry dependency.
#![allow(clippy::all)]

/// Special functions.
pub mod function {
    /// Error function and complement.
    pub mod erf {
        use super::gamma::{gamma_lower_reg, gamma_upper_reg};

        /// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
        pub fn erf(x: f64) -> f64 {
            if x.is_nan() {
                return f64::NAN;
            }
            if x == 0.0 {
                return 0.0;
            }
            let magnitude = gamma_lower_reg(0.5, x * x);
            if x > 0.0 {
                magnitude
            } else {
                -magnitude
            }
        }

        /// The complementary error function `erfc(x) = 1 − erf(x)`,
        /// computed without cancellation for large positive `x`.
        pub fn erfc(x: f64) -> f64 {
            if x.is_nan() {
                return f64::NAN;
            }
            if x >= 0.0 {
                gamma_upper_reg(0.5, x * x)
            } else {
                2.0 - gamma_upper_reg(0.5, x * x)
            }
        }
    }

    /// Beta function and regularized incomplete beta.
    pub mod beta {
        use super::gamma::ln_gamma;

        /// `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a + b)`.
        pub fn ln_beta(a: f64, b: f64) -> f64 {
            ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
        }

        /// Regularized incomplete beta `I_x(a, b)` via the Lentz
        /// continued fraction, using the symmetry relation to stay in
        /// the fast-converging region.
        pub fn beta_reg(a: f64, b: f64, x: f64) -> f64 {
            assert!((0.0..=1.0).contains(&x), "beta_reg requires x in [0, 1]");
            if x == 0.0 {
                return 0.0;
            }
            if x == 1.0 {
                return 1.0;
            }
            let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
            if x < (a + 1.0) / (a + b + 2.0) {
                front * beta_cont_frac(a, b, x) / a
            } else {
                1.0 - (front * beta_cont_frac(b, a, 1.0 - x) / b)
            }
        }

        fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
            const TINY: f64 = 1e-300;
            let qab = a + b;
            let qap = a + 1.0;
            let qam = a - 1.0;
            let mut c = 1.0;
            let mut d = 1.0 - qab * x / qap;
            if d.abs() < TINY {
                d = TINY;
            }
            d = 1.0 / d;
            let mut h = d;
            for m in 1..300 {
                let m = m as f64;
                let m2 = 2.0 * m;
                let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
                d = 1.0 + aa * d;
                if d.abs() < TINY {
                    d = TINY;
                }
                c = 1.0 + aa / c;
                if c.abs() < TINY {
                    c = TINY;
                }
                d = 1.0 / d;
                h *= d * c;
                let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
                d = 1.0 + aa * d;
                if d.abs() < TINY {
                    d = TINY;
                }
                c = 1.0 + aa / c;
                if c.abs() < TINY {
                    c = TINY;
                }
                d = 1.0 / d;
                let delta = d * c;
                h *= delta;
                if (delta - 1.0).abs() < 1e-16 {
                    break;
                }
            }
            h
        }
    }

    /// Incomplete gamma functions (support for `erf`).
    pub mod gamma {
        /// `ln Γ(x)` via the Lanczos approximation (g = 7, n = 9).
        pub fn ln_gamma(x: f64) -> f64 {
            const COEF: [f64; 9] = [
                0.999_999_999_999_809_93,
                676.520_368_121_885_1,
                -1_259.139_216_722_402_8,
                771.323_428_777_653_13,
                -176.615_029_162_140_6,
                12.507_343_278_686_905,
                -0.138_571_095_265_720_12,
                9.984_369_578_019_572e-6,
                1.505_632_735_149_311_6e-7,
            ];
            if x < 0.5 {
                // Reflection formula.
                return std::f64::consts::PI.ln()
                    - (std::f64::consts::PI * x).sin().abs().ln()
                    - ln_gamma(1.0 - x);
            }
            let x = x - 1.0;
            let mut acc = COEF[0];
            for (i, &c) in COEF.iter().enumerate().skip(1) {
                acc += c / (x + i as f64);
            }
            let t = x + 7.5;
            0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
        }

        /// statrs' name for the regularized lower incomplete gamma.
        pub fn gamma_lr(a: f64, x: f64) -> f64 {
            gamma_lower_reg(a, x)
        }

        /// statrs' name for the regularized upper incomplete gamma.
        pub fn gamma_ur(a: f64, x: f64) -> f64 {
            gamma_upper_reg(a, x)
        }

        /// Regularized lower incomplete gamma `P(a, x)`.
        pub fn gamma_lower_reg(a: f64, x: f64) -> f64 {
            if x <= 0.0 {
                return 0.0;
            }
            if x < a + 1.0 {
                lower_series(a, x)
            } else {
                1.0 - upper_cont_frac(a, x)
            }
        }

        /// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
        pub fn gamma_upper_reg(a: f64, x: f64) -> f64 {
            if x <= 0.0 {
                return 1.0;
            }
            if x < a + 1.0 {
                1.0 - lower_series(a, x)
            } else {
                upper_cont_frac(a, x)
            }
        }

        /// Series expansion of `P(a, x)`, best for `x < a + 1`.
        fn lower_series(a: f64, x: f64) -> f64 {
            let mut term = 1.0 / a;
            let mut sum = term;
            let mut n = a;
            for _ in 0..500 {
                n += 1.0;
                term *= x / n;
                sum += term;
                if term.abs() < sum.abs() * 1e-17 {
                    break;
                }
            }
            sum * (a * x.ln() - x - ln_gamma(a)).exp()
        }

        /// Modified Lentz continued fraction for `Q(a, x)`, best for
        /// `x ≥ a + 1`.
        fn upper_cont_frac(a: f64, x: f64) -> f64 {
            const TINY: f64 = 1e-300;
            let mut b = x + 1.0 - a;
            let mut c = 1.0 / TINY;
            let mut d = 1.0 / b;
            let mut h = d;
            for i in 1..500 {
                let an = -(i as f64) * (i as f64 - a);
                b += 2.0;
                d = an * d + b;
                if d.abs() < TINY {
                    d = TINY;
                }
                c = b + an / c;
                if c.abs() < TINY {
                    c = TINY;
                }
                d = 1.0 / d;
                let delta = d * c;
                h *= delta;
                if (delta - 1.0).abs() < 1e-16 {
                    break;
                }
            }
            h * (a * x.ln() - x - ln_gamma(a)).exp()
        }
    }
}

/// Probability distributions.
pub mod distribution {
    use crate::function::erf::erfc;

    /// Error constructing a distribution.
    #[derive(Debug, Clone, PartialEq)]
    pub struct StatsError(String);

    impl std::fmt::Display for StatsError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for StatsError {}

    /// Continuous distributions with a density.
    pub trait Continuous {
        /// The density at `x`.
        fn pdf(&self, x: f64) -> f64;
        /// The log-density at `x`.
        fn ln_pdf(&self, x: f64) -> f64 {
            self.pdf(x).ln()
        }
    }

    /// Continuous distributions with a CDF and quantile function.
    pub trait ContinuousCDF {
        /// `P(X ≤ x)`.
        fn cdf(&self, x: f64) -> f64;
        /// The quantile function (inverse CDF).
        fn inverse_cdf(&self, p: f64) -> f64;
        /// The survival function `P(X > x)`.
        fn sf(&self, x: f64) -> f64 {
            1.0 - self.cdf(x)
        }
    }

    /// The normal distribution `N(mean, std_dev²)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Normal {
        mean: f64,
        std_dev: f64,
    }

    impl Normal {
        /// Creates a normal distribution; `std_dev` must be finite and
        /// positive.
        pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
            if !mean.is_finite() || !std_dev.is_finite() || std_dev <= 0.0 {
                return Err(StatsError(format!(
                    "invalid normal parameters: mean {mean}, std_dev {std_dev}"
                )));
            }
            Ok(Self { mean, std_dev })
        }

        /// The density at `x`.
        pub fn pdf(&self, x: f64) -> f64 {
            let z = (x - self.mean) / self.std_dev;
            (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
        }
    }

    impl ContinuousCDF for Normal {
        fn cdf(&self, x: f64) -> f64 {
            let z = (x - self.mean) / self.std_dev;
            0.5 * erfc(-z / std::f64::consts::SQRT_2)
        }

        fn inverse_cdf(&self, p: f64) -> f64 {
            assert!(
                (0.0..=1.0).contains(&p),
                "inverse_cdf requires p in [0, 1], got {p}"
            );
            if p == 0.0 {
                return f64::NEG_INFINITY;
            }
            if p == 1.0 {
                return f64::INFINITY;
            }
            let mut x = self.mean + self.std_dev * standard_quantile_acklam(p);
            // Two Halley refinements against our own CDF push the
            // polynomial seed (~1e-9) to full double precision.
            for _ in 0..2 {
                let e = self.cdf(x) - p;
                let d = self.pdf(x);
                if d <= 0.0 {
                    break;
                }
                let u = e / d;
                let z = (x - self.mean) / self.std_dev;
                x -= u / (1.0 + 0.5 * u * z / self.std_dev);
            }
            x
        }
    }

    impl Continuous for Normal {
        fn pdf(&self, x: f64) -> f64 {
            Normal::pdf(self, x)
        }
    }

    /// Bisection fallback quantile for distributions where tests only
    /// exercise `cdf`/`pdf` (monotone CDF, bracket expanded from 0).
    fn bisect_quantile(cdf: impl Fn(f64) -> f64, p: f64, mut hi: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile requires p in [0, 1]");
        let mut lo = 0.0;
        while cdf(hi) < p && hi < 1e300 {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// The beta distribution on `[0, 1]` with shape parameters `(a, b)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Beta {
        a: f64,
        b: f64,
    }

    impl Beta {
        /// Creates a beta distribution; both shapes must be finite and
        /// positive.
        pub fn new(a: f64, b: f64) -> Result<Self, StatsError> {
            if !(a.is_finite() && b.is_finite() && a > 0.0 && b > 0.0) {
                return Err(StatsError(format!("invalid beta parameters: a {a}, b {b}")));
            }
            Ok(Self { a, b })
        }
    }

    impl Continuous for Beta {
        fn pdf(&self, x: f64) -> f64 {
            if !(0.0..=1.0).contains(&x) {
                return 0.0;
            }
            ((self.a - 1.0) * x.ln() + (self.b - 1.0) * (1.0 - x).ln()
                - crate::function::beta::ln_beta(self.a, self.b))
            .exp()
        }
    }

    impl ContinuousCDF for Beta {
        fn cdf(&self, x: f64) -> f64 {
            crate::function::beta::beta_reg(self.a, self.b, x.clamp(0.0, 1.0))
        }

        fn inverse_cdf(&self, p: f64) -> f64 {
            bisect_quantile(|x| self.cdf(x), p, 1.0).min(1.0)
        }
    }

    /// The gamma distribution with parameters `(shape, rate)` — statrs'
    /// convention, so the scale is `1 / rate`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Gamma {
        shape: f64,
        rate: f64,
    }

    impl Gamma {
        /// Creates a gamma distribution; shape and rate must be finite
        /// and positive.
        pub fn new(shape: f64, rate: f64) -> Result<Self, StatsError> {
            if !(shape.is_finite() && rate.is_finite() && shape > 0.0 && rate > 0.0) {
                return Err(StatsError(format!(
                    "invalid gamma parameters: shape {shape}, rate {rate}"
                )));
            }
            Ok(Self { shape, rate })
        }
    }

    impl Continuous for Gamma {
        fn pdf(&self, x: f64) -> f64 {
            if x <= 0.0 {
                return 0.0;
            }
            (self.shape * self.rate.ln() + (self.shape - 1.0) * x.ln()
                - self.rate * x
                - crate::function::gamma::ln_gamma(self.shape))
            .exp()
        }
    }

    impl ContinuousCDF for Gamma {
        fn cdf(&self, x: f64) -> f64 {
            if x <= 0.0 {
                return 0.0;
            }
            crate::function::gamma::gamma_lower_reg(self.shape, self.rate * x)
        }

        fn inverse_cdf(&self, p: f64) -> f64 {
            bisect_quantile(|x| self.cdf(x), p, self.shape / self.rate)
        }
    }

    /// The log-normal distribution: `ln X ~ N(mu, sigma²)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct LogNormal {
        mu: f64,
        sigma: f64,
    }

    impl LogNormal {
        /// Creates a log-normal distribution; `sigma` must be finite and
        /// positive.
        pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
            if !(mu.is_finite() && sigma.is_finite() && sigma > 0.0) {
                return Err(StatsError(format!(
                    "invalid log-normal parameters: mu {mu}, sigma {sigma}"
                )));
            }
            Ok(Self { mu, sigma })
        }
    }

    impl Continuous for LogNormal {
        fn pdf(&self, x: f64) -> f64 {
            if x <= 0.0 {
                return 0.0;
            }
            let z = (x.ln() - self.mu) / self.sigma;
            (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
        }
    }

    impl ContinuousCDF for LogNormal {
        fn cdf(&self, x: f64) -> f64 {
            if x <= 0.0 {
                return 0.0;
            }
            let z = (x.ln() - self.mu) / self.sigma;
            0.5 * erfc(-z / std::f64::consts::SQRT_2)
        }

        fn inverse_cdf(&self, p: f64) -> f64 {
            let n = Normal {
                mean: self.mu,
                std_dev: self.sigma,
            };
            n.inverse_cdf(p).exp()
        }
    }

    /// The Weibull distribution with parameters `(shape, scale)` —
    /// statrs' argument order, the reverse of this workspace's
    /// `(scale, shape)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Weibull {
        shape: f64,
        scale: f64,
    }

    impl Weibull {
        /// Creates a Weibull distribution; shape and scale must be
        /// finite and positive.
        pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
            if !(shape.is_finite() && scale.is_finite() && shape > 0.0 && scale > 0.0) {
                return Err(StatsError(format!(
                    "invalid Weibull parameters: shape {shape}, scale {scale}"
                )));
            }
            Ok(Self { shape, scale })
        }
    }

    impl Continuous for Weibull {
        fn pdf(&self, x: f64) -> f64 {
            if x < 0.0 {
                return 0.0;
            }
            if x == 0.0 {
                // Degenerate limits at the origin, matching statrs.
                return match self.shape {
                    k if k < 1.0 => f64::INFINITY,
                    k if k == 1.0 => 1.0 / self.scale,
                    _ => 0.0,
                };
            }
            let z = x / self.scale;
            (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
        }
    }

    impl ContinuousCDF for Weibull {
        fn cdf(&self, x: f64) -> f64 {
            if x <= 0.0 {
                return 0.0;
            }
            -(-((x / self.scale).powf(self.shape))).exp_m1()
        }

        fn inverse_cdf(&self, p: f64) -> f64 {
            assert!((0.0..=1.0).contains(&p), "quantile requires p in [0, 1]");
            self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape)
        }
    }

    /// Acklam's rational approximation to the standard normal quantile
    /// (absolute error ≈ 1.15e-9 before refinement).
    fn standard_quantile_acklam(p: f64) -> f64 {
        const A: [f64; 6] = [
            -3.969_683_028_665_376e1,
            2.209_460_984_245_205e2,
            -2.759_285_104_469_687e2,
            1.383_577_518_672_690e2,
            -3.066_479_806_614_716e1,
            2.506_628_277_459_239,
        ];
        const B: [f64; 5] = [
            -5.447_609_879_822_406e1,
            1.615_858_368_580_409e2,
            -1.556_989_798_598_866e2,
            6.680_131_188_771_972e1,
            -1.328_068_155_288_572e1,
        ];
        const C: [f64; 6] = [
            -7.784_894_002_430_293e-3,
            -3.223_964_580_411_365e-1,
            -2.400_758_277_161_838,
            -2.549_732_539_343_734,
            4.374_664_141_464_968,
            2.938_163_982_698_783,
        ];
        const D: [f64; 4] = [
            7.784_695_709_041_462e-3,
            3.224_671_290_700_398e-1,
            2.445_134_137_142_996,
            3.754_408_661_907_416,
        ];
        const P_LOW: f64 = 0.024_25;
        if p < P_LOW {
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - P_LOW {
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            -standard_quantile_acklam(1.0 - p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distribution::{ContinuousCDF, Normal};
    use super::function::erf::{erf, erfc};

    #[test]
    fn erf_reference_values() {
        // Mathematica / Abramowitz-Stegun references.
        let cases = [
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-13, "erf({x})");
            assert!((erf(-x) + want).abs() < 1e-13, "erf(-{x})");
        }
        assert_eq!(erf(0.0), 0.0);
    }

    #[test]
    fn erfc_large_argument_no_cancellation() {
        // erfc(5) ≈ 1.537e-12: a 1 − erf(x) formulation would lose most
        // digits here.
        let want = 1.537_459_794_428_035e-12;
        assert!((erfc(5.0) - want).abs() < 1e-24 * 1e10, "{}", erfc(5.0));
        assert!((erfc(-5.0) - (2.0 - want)).abs() < 1e-13);
        assert!((erf(1.3) + erfc(1.3) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normal_cdf_reference_values() {
        let n = Normal::new(0.0, 1.0).unwrap();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((n.cdf(1.96) - 0.975_002_104_851_780_2).abs() < 1e-12);
        assert!((n.cdf(-1.0) - 0.158_655_253_931_457_05).abs() < 1e-12);
        let shifted = Normal::new(2.0, 3.0).unwrap();
        assert!((shifted.cdf(2.0) - 0.5).abs() < 1e-15);
        assert!((shifted.cdf(5.0) - n.cdf(1.0)).abs() < 1e-14);
    }

    #[test]
    fn inverse_cdf_round_trips() {
        let n = Normal::new(0.0, 1.0).unwrap();
        for &p in &[1e-9, 1e-4, 0.025, 0.31, 0.5, 0.77, 0.975, 1.0 - 1e-6] {
            let x = n.inverse_cdf(p);
            assert!((n.cdf(x) - p).abs() < 1e-12, "p={p} x={x}");
        }
        assert!((n.inverse_cdf(0.975) - 1.959_963_984_540_054).abs() < 1e-9);
        assert_eq!(n.inverse_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(n.inverse_cdf(1.0), f64::INFINITY);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }
}
