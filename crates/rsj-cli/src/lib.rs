//! # rsj-cli — command-line reservation planner
//!
//! A small front-end over the `rsj-*` crates. Four commands, all driven by
//! JSON configurations (see [`PlanConfig`] etc.) or flags:
//!
//! * `rsj plan` — compute a request ladder for a distribution + cost model
//!   (through the `Planner` facade);
//! * `rsj evaluate` — score an explicit sequence;
//! * `rsj fit` — fit a LogNormal to a runtime-trace CSV;
//! * `rsj simulate` — run the batch-queue simulator and fit the
//!   wait-vs-request curve;
//! * `rsj serve` — run the `rsj-serve` planning daemon in the foreground;
//! * `rsj request` — one-shot client for a running daemon.
//!
//! The library half exposes every command as a pure function returning its
//! output text, so the whole CLI is unit-testable without spawning
//! processes.

#![warn(missing_docs)]

pub mod commands;
pub mod config;
pub mod serve_cmd;

pub use commands::{run_evaluate, run_fit, run_plan, run_risk, run_simulate};
pub use config::{EvaluateConfig, HeuristicSpec, PlanConfig, SimulateConfig};
pub use serve_cmd::{
    run_request, run_serve, run_trace_export, RequestAction, RequestOptions, ServeOptions,
    TraceExportOptions,
};

/// Top-level usage text.
pub const USAGE: &str = "\
rsj — reservation strategies for stochastic jobs (IPDPS 2019)

USAGE:
    rsj plan     --config <plan.json>     compute a request ladder
                 [--explain-solver]       also report which DP path solved it
                                          (monotone fast path vs exact O(n²))
                                          and whether the eval table was warm
    rsj risk     --config <plan.json>     cost quantiles / attempt counts of the plan
    rsj evaluate --config <eval.json>     score an explicit sequence
    rsj fit      --csv <traces.csv>       fit a LogNormal per application
    rsj simulate --config <sim.json>      simulate a batch queue (Figure 2)
    rsj serve    [--addr host:port]       run the planning server (default
                                          127.0.0.1:7077; port 0 = auto) with
                                          [--workers <n>] handler threads, an
                                          LRU plan cache of [--cache <n>] entries
                                          and an admission queue of [--queue <n>]
                                          connections (shedding between
                                          [--queue-high <n>] and [--queue-low <n>]).
                                          [--journal-dir <dir>] makes solved plans
                                          durable (journal + snapshots; a restart
                                          on the same dir warm-fills the cache),
                                          compacting every [--snapshot-every <n>]
                                          appends (default 64).
                                          [--trace-buffer <n>] retains the last n
                                          request timelines for the trace op;
                                          [--slow-ms <n>] warns (with a stage
                                          breakdown) on requests slower than n ms;
                                          [--batch <n>] lets each worker drain up
                                          to n queued requests and share one warm
                                          eval table per group (default 8)
    rsj request  --addr host:port         one-shot client for a running server:
                 (--config <plan.json> | --ping | --metrics | --health |
                  --ready | --shutdown)
                 [--deadline-ms <n>]      shed server-side once the deadline lapses
                 [--retries <n>]          retry transient failures with backoff
                 [--trace]                print the server-side stage timeline
    rsj trace export --addr host:port     export recent server timelines as
                 --out <trace.json>       Chrome-trace JSON (Perfetto-loadable)
                 [--last <n>]             at most n timelines (default 32)
                 [--min-ms <x>]           only timelines at least x ms long

Every command also accepts:
    --json                  machine-readable output
    --log-level <level>     stderr verbosity: error|warn|info|debug|trace|off
                            (default warn; `RSJ_LOG` is honoured too)
    --metrics-out <path>    export solver/simulator metrics after the run
                            (Prometheus text, or JSON when <path> ends in .json)
    --threads <n>           worker threads for solvers and batch simulation
                            (default: the `RSJ_THREADS` env var, else all
                            hardware threads; must be >= 1). Results are
                            bit-for-bit identical at any thread count.

Configuration schemas are documented in the rsj-cli crate docs; a minimal
plan.json:

    {
      \"distribution\": { \"family\": \"log_normal\", \"mu\": 3.0, \"sigma\": 0.5 },
      \"cost\": { \"alpha\": 1.0, \"beta\": 0.0, \"gamma\": 0.0 },
      \"heuristic\": { \"kind\": \"brute_force\", \"grid\": 2000, \"samples\": 1000 }
    }
";
