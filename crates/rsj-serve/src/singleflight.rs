//! Single-flight coalescing: at most one in-flight computation per key.
//!
//! When N connections miss the plan cache on the same
//! [`cache_key`](reservation_strategies::Planner::cache_key)
//! simultaneously, running N identical solver invocations multiplies a
//! thundering herd by the cost of a DP or brute-force sweep. A
//! [`SingleFlight`] group elects the first caller as the **leader** — it
//! runs the computation — and parks the rest as **followers** on a
//! condvar; everyone receives a clone of the leader's result. Because
//! solves are deterministic (a repo-wide invariant), the shared result is
//! bit-identical to what each follower would have computed itself.
//!
//! Followers wait with their own deadline: a follower whose deadline
//! expires before the leader finishes gives up with
//! [`Flighted::TimedOut`] without disturbing the flight. A leader whose
//! closure panics does not wedge its followers — a drop guard publishes
//! the caller-supplied `abandoned` value instead.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

#[derive(Debug)]
struct Flight<V> {
    result: Mutex<Option<V>>,
    done: Condvar,
}

/// How a value came out of [`SingleFlight::run`].
#[derive(Debug, PartialEq, Eq)]
pub enum Flighted<V> {
    /// This caller was the leader and computed the value itself.
    Led(V),
    /// This caller coalesced onto another caller's in-flight computation.
    Joined(V),
    /// This caller's deadline expired before the leader finished.
    TimedOut,
}

impl<V> Flighted<V> {
    /// The carried value, if the call did not time out.
    pub fn into_value(self) -> Option<V> {
        match self {
            Flighted::Led(v) | Flighted::Joined(v) => Some(v),
            Flighted::TimedOut => None,
        }
    }
}

/// A group of keyed in-flight computations (see module docs).
#[derive(Debug, Default)]
pub struct SingleFlight<V> {
    flights: Mutex<HashMap<String, Arc<Flight<V>>>>,
    /// Per-table serialization locks for [`run_grouped`]: leaders of
    /// *distinct* keys that share a group token take the same lock, so
    /// the second leader starts only after the first has warmed the
    /// shared eval-table memo.
    ///
    /// [`run_grouped`]: SingleFlight::run_grouped
    tables: Mutex<HashMap<String, Arc<Mutex<()>>>>,
}

impl<V: Clone> SingleFlight<V> {
    /// An empty group.
    pub fn new() -> Self {
        Self {
            flights: Mutex::new(HashMap::new()),
            tables: Mutex::new(HashMap::new()),
        }
    }

    /// [`run`](Self::run) extended from "identical key" to "identical
    /// table": callers whose keys differ but whose `group` token matches
    /// (same distribution + cost bits, different solver) still coalesce
    /// *partially* — followers of the same key share the leader's result
    /// as usual, while leaders of distinct keys in one group serialize on
    /// a per-group lock so the first leader's solve warms the process-wide
    /// eval-table memo for the rest. `group: None` behaves exactly like
    /// [`run`](Self::run).
    pub fn run_grouped<F>(
        &self,
        key: &str,
        group: Option<&str>,
        deadline: Option<Instant>,
        abandoned: V,
        compute: F,
    ) -> Flighted<V>
    where
        F: FnOnce() -> V,
    {
        let Some(group) = group else {
            return self.run(key, deadline, abandoned, compute);
        };
        let table = {
            let mut tables = self.tables.lock().expect("singleflight tables lock");
            Arc::clone(
                tables
                    .entry(group.to_owned())
                    .or_insert_with(|| Arc::new(Mutex::new(()))),
            )
        };
        // Serialize only the *computation*; key-level join/lead election
        // stays inside run(), so followers of this key never touch the
        // table lock and can still time out on their own deadline.
        let result = self.run(key, deadline, abandoned, || {
            let _table = table.lock().expect("table lock");
            compute()
        });
        let mut tables = self.tables.lock().expect("singleflight tables lock");
        // Two strong refs = the map plus ours: nobody else is waiting on
        // this table, so drop the entry to keep the map bounded by the
        // number of *concurrently* active groups.
        if Arc::strong_count(&table) <= 2 {
            tables.remove(group);
        }
        result
    }

    /// Runs `compute` for `key`, coalescing with any identical in-flight
    /// call. The leader executes `compute`; followers block (up to
    /// `deadline`, if any) and receive a clone of its result. If the
    /// leader panics, followers receive `abandoned` and the panic
    /// propagates to the leader's caller.
    pub fn run<F>(
        &self,
        key: &str,
        deadline: Option<Instant>,
        abandoned: V,
        compute: F,
    ) -> Flighted<V>
    where
        F: FnOnce() -> V,
    {
        let (flight, is_leader) = {
            let mut flights = self.flights.lock().expect("singleflight lock");
            match flights.get(key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    flights.insert(key.to_owned(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };

        if is_leader {
            // The guard publishes a result and retires the flight even if
            // `compute` panics, so followers never hang on a dead leader.
            let mut guard = LeaderGuard {
                group: self,
                key,
                flight: &flight,
                result: Some(abandoned),
            };
            let value = compute();
            guard.result = Some(value.clone());
            drop(guard);
            Flighted::Led(value)
        } else {
            let mut result = flight.result.lock().expect("flight lock");
            loop {
                if let Some(value) = result.as_ref() {
                    return Flighted::Joined(value.clone());
                }
                match deadline {
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Flighted::TimedOut;
                        }
                        let (next, _) = flight
                            .done
                            .wait_timeout(result, deadline - now)
                            .expect("flight lock");
                        result = next;
                    }
                    None => {
                        result = flight.done.wait(result).expect("flight lock");
                    }
                }
            }
        }
    }

    /// Number of keys currently in flight (test/diagnostic hook).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("singleflight lock").len()
    }
}

/// Publishes the leader's result (or the `abandoned` fallback on panic)
/// and removes the key from the group.
struct LeaderGuard<'a, V: Clone> {
    group: &'a SingleFlight<V>,
    key: &'a str,
    flight: &'a Arc<Flight<V>>,
    result: Option<V>,
}

impl<V: Clone> Drop for LeaderGuard<'_, V> {
    fn drop(&mut self) {
        {
            let mut slot = self.flight.result.lock().expect("flight lock");
            *slot = self.result.take();
        }
        self.flight.done.notify_all();
        self.group
            .flights
            .lock()
            .expect("singleflight lock")
            .remove(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn solo_caller_leads_and_flight_retires() {
        let sf = SingleFlight::new();
        assert_eq!(sf.run("k", None, 0, || 42), Flighted::Led(42));
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn concurrent_identical_keys_run_compute_exactly_once() {
        let sf = Arc::new(SingleFlight::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (sf, computed, start) =
                    (Arc::clone(&sf), Arc::clone(&computed), Arc::clone(&start));
                std::thread::spawn(move || {
                    start.wait();
                    sf.run("key", None, 0usize, || {
                        // Hold the flight open long enough for the other
                        // callers to join it.
                        std::thread::sleep(Duration::from_millis(50));
                        computed.fetch_add(1, Ordering::SeqCst) + 1
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let leaders = results
            .iter()
            .filter(|r| matches!(r, Flighted::Led(_)))
            .count();
        // With a barrier start and a 50 ms flight, every caller lands in
        // the same flight: one leader, one compute, identical values.
        assert_eq!(computed.load(Ordering::SeqCst), leaders);
        assert_eq!(leaders, 1, "all callers coalesced onto one flight");
        assert!(results
            .iter()
            .all(|r| matches!(r, Flighted::Led(1) | Flighted::Joined(1))));
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sf = SingleFlight::new();
        assert_eq!(sf.run("a", None, 0, || 1), Flighted::Led(1));
        assert_eq!(sf.run("b", None, 0, || 2), Flighted::Led(2));
    }

    #[test]
    fn grouped_leaders_of_distinct_keys_serialize() {
        let sf = Arc::new(SingleFlight::<usize>::new());
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let (sf, concurrent, peak, start) = (
                    Arc::clone(&sf),
                    Arc::clone(&concurrent),
                    Arc::clone(&peak),
                    Arc::clone(&start),
                );
                std::thread::spawn(move || {
                    start.wait();
                    // Four distinct keys, one shared table group.
                    sf.run_grouped(&format!("key-{i}"), Some("table"), None, 0, || {
                        let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(20));
                        concurrent.fetch_sub(1, Ordering::SeqCst);
                        i
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "same-table computations must not overlap"
        );
        // Distinct keys never share results.
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r, &Flighted::Led(i));
        }
        // The table map does not leak retired groups.
        assert_eq!(sf.tables.lock().unwrap().len(), 0);
    }

    #[test]
    fn run_grouped_without_a_group_is_plain_run() {
        let sf = SingleFlight::new();
        assert_eq!(sf.run_grouped("k", None, None, 0, || 5), Flighted::Led(5));
        assert_eq!(sf.in_flight(), 0);
        assert_eq!(sf.tables.lock().unwrap().len(), 0);
    }

    #[test]
    fn follower_times_out_without_disturbing_the_flight() {
        let sf = Arc::new(SingleFlight::new());
        let entered = Arc::new(Barrier::new(2));
        let leader = {
            let (sf, entered) = (Arc::clone(&sf), Arc::clone(&entered));
            std::thread::spawn(move || {
                sf.run("k", None, 0, || {
                    entered.wait();
                    std::thread::sleep(Duration::from_millis(120));
                    7
                })
            })
        };
        entered.wait();
        let impatient = sf.run(
            "k",
            Some(Instant::now() + Duration::from_millis(5)),
            0,
            || unreachable!("follower never computes"),
        );
        assert_eq!(impatient, Flighted::TimedOut);
        assert_eq!(leader.join().unwrap(), Flighted::Led(7));
    }

    #[test]
    fn leader_panic_releases_followers_with_the_abandoned_value() {
        let sf = Arc::new(SingleFlight::<i32>::new());
        let entered = Arc::new(Barrier::new(2));
        let leader = {
            let (sf, entered) = (Arc::clone(&sf), Arc::clone(&entered));
            std::thread::spawn(move || {
                sf.run("k", None, -1, || {
                    entered.wait();
                    std::thread::sleep(Duration::from_millis(30));
                    panic!("chaos strikes the leader");
                })
            })
        };
        entered.wait();
        let follower = sf.run("k", None, -1, || unreachable!());
        assert_eq!(follower, Flighted::Joined(-1));
        assert!(leader.join().is_err(), "panic propagates to the leader");
        assert_eq!(sf.in_flight(), 0);
    }
}
