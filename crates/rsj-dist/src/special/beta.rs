//! Beta function family: `B(a, b)`, the regularized incomplete beta
//! `I_x(a, b)`, its non-regularized variant `B(x; a, b)` and the inverse of
//! `I_·(a, b)`.
//!
//! Continued-fraction evaluation follows the classic Numerical-Recipes
//! `betacf` scheme (modified Lentz); the inverse uses a Newton iteration
//! seeded by the Abramowitz & Stegun 26.5.22 approximation.

use super::gamma::ln_gamma;

/// Natural log of the complete beta function `ln B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "ln_beta: parameters must be positive");
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// The complete beta function `B(a, b) = Γ(a)Γ(b)/Γ(a+b)`.
pub fn beta(a: f64, b: f64) -> f64 {
    ln_beta(a, b).exp()
}

const MAX_ITER: usize = 300;
const EPS: f64 = 1e-16;
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Continued fraction for the incomplete beta function (Lentz's method).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() <= EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)` for `x ∈ [0, 1]`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc: parameters must be positive");
    assert!(
        (0.0..=1.0).contains(&x),
        "beta_inc: x must be in [0, 1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let bt = (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        bt * betacf(a, b, x) / a
    } else {
        1.0 - bt * betacf(b, a, 1.0 - x) / b
    }
}

/// Non-regularized incomplete beta `B(x; a, b) = I_x(a, b) · B(a, b)`,
/// the paper's Appendix A notation.
pub fn beta_inc_unreg(a: f64, b: f64, x: f64) -> f64 {
    beta_inc(a, b, x) * beta(a, b)
}

/// Inverse of the regularized incomplete beta: returns `x` with
/// `I_x(a, b) = p`.
pub fn inverse_beta_inc(a: f64, b: f64, p: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "inverse_beta_inc: parameters must be positive"
    );
    assert!(
        (0.0..=1.0).contains(&p),
        "inverse_beta_inc: p must be in [0, 1], got {p}"
    );
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }

    // A&S 26.5.22 initial guess.
    let mut x;
    if a >= 1.0 && b >= 1.0 {
        let pp = if p < 0.5 { p } else { 1.0 - p };
        let t = (-2.0 * pp.ln()).sqrt();
        let mut w = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
        if p < 0.5 {
            w = -w;
        }
        let al = (w * w - 3.0) / 6.0;
        let h = 2.0 / (1.0 / (2.0 * a - 1.0) + 1.0 / (2.0 * b - 1.0));
        let ww = w * (al + h).sqrt() / h
            - (1.0 / (2.0 * b - 1.0) - 1.0 / (2.0 * a - 1.0)) * (al + 5.0 / 6.0 - 2.0 / (3.0 * h));
        x = a / (a + b * (2.0 * ww).exp());
    } else {
        let lna = (a / (a + b)).ln();
        let lnb = (b / (a + b)).ln();
        let t = (a * lna).exp() / a;
        let u = (b * lnb).exp() / b;
        let w = t + u;
        x = if p < t / w {
            (a * w * p).powf(1.0 / a)
        } else {
            1.0 - (b * w * (1.0 - p)).powf(1.0 / b)
        };
    }

    // Bracketed Newton on (0, 1): bisection whenever the Newton step leaves
    // the bracket or the density degenerates.
    let afac = -ln_beta(a, b);
    let a1 = a - 1.0;
    let b1 = b - 1.0;
    let mut lo = 0.0;
    let mut hi = 1.0;
    if !x.is_finite() || x <= 0.0 || x >= 1.0 {
        x = 0.5;
    }
    for _ in 0..200 {
        let err = beta_inc(a, b, x) - p;
        if err > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let pdf = (a1 * x.ln() + b1 * (1.0 - x).ln() + afac).exp();
        let mut xn = if pdf > 0.0 && pdf.is_finite() {
            x - err / pdf
        } else {
            f64::NAN
        };
        if !xn.is_finite() || xn <= lo || xn >= hi {
            xn = 0.5 * (lo + hi);
        }
        let dx = (xn - x).abs();
        x = xn;
        if dx <= 1e-16 * x.max(1e-300) || hi - lo <= f64::EPSILON * hi {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64, msg: &str) {
        assert!(
            (a - b).abs() < tol * b.abs().max(1.0),
            "{msg}: got {a}, expected {b}"
        );
    }

    #[test]
    fn complete_beta_known() {
        // B(1,1) = 1, B(2,2) = 1/6, B(0.5,0.5) = π
        assert_close(beta(1.0, 1.0), 1.0, 1e-13, "B(1,1)");
        assert_close(beta(2.0, 2.0), 1.0 / 6.0, 1e-13, "B(2,2)");
        assert_close(beta(0.5, 0.5), std::f64::consts::PI, 1e-13, "B(.5,.5)");
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1, 1) = x (uniform CDF)
        for &x in &[0.0, 0.2, 0.5, 0.77, 1.0] {
            assert_close(beta_inc(1.0, 1.0, x), x, 1e-13, &format!("I_x(1,1), x={x}"));
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a, b) = 1 - I_{1-x}(b, a)
        for &(a, b) in &[(2.0, 3.0), (0.5, 1.5), (4.0, 4.0)] {
            for &x in &[0.1, 0.35, 0.6, 0.9] {
                assert_close(
                    beta_inc(a, b, x),
                    1.0 - beta_inc(b, a, 1.0 - x),
                    1e-12,
                    &format!("symmetry a={a} b={b} x={x}"),
                );
            }
        }
    }

    #[test]
    fn beta22_closed_form() {
        // For Beta(2,2): I_x(2,2) = 3x² - 2x³.
        for &x in &[0.1, 0.3, 0.5, 0.8] {
            assert_close(
                beta_inc(2.0, 2.0, x),
                3.0 * x * x - 2.0 * x * x * x,
                1e-13,
                &format!("I_x(2,2), x={x}"),
            );
        }
    }

    #[test]
    fn inverse_round_trip() {
        for &(a, b) in &[(2.0, 2.0), (0.7, 1.3), (5.0, 2.0), (0.4, 0.4)] {
            for &p in &[0.05, 0.3, 0.5, 0.8, 0.99] {
                let x = inverse_beta_inc(a, b, p);
                assert_close(
                    beta_inc(a, b, x),
                    p,
                    1e-9,
                    &format!("roundtrip a={a} b={b} p={p}"),
                );
            }
        }
    }

    #[test]
    fn inverse_round_trip_extreme_tails() {
        // When a shape parameter is < 1, quantiles at p within ~1e-7 of an
        // endpoint can fall within one ulp of that endpoint; the round-trip
        // is then only achievable to the representable resolution of I_x.
        for &(a, b) in &[(2.0, 2.0), (0.7, 1.3), (5.0, 2.0), (0.4, 0.4)] {
            for &p in &[1e-6, 1.0 - 1e-7] {
                let x = inverse_beta_inc(a, b, p);
                assert!((0.0..=1.0).contains(&x));
                let next = if x < 0.5 {
                    // resolution of I at x, measured one ulp away
                    beta_inc(a, b, (x + f64::EPSILON * x.max(1e-300)).min(1.0))
                } else {
                    beta_inc(a, b, (x - f64::EPSILON * x).max(0.0))
                };
                let resolution = (beta_inc(a, b, x) - next).abs().max(1e-12);
                assert!(
                    (beta_inc(a, b, x) - p).abs() <= 4.0 * resolution,
                    "a={a} b={b} p={p}: I(x)={}, resolution {resolution}",
                    beta_inc(a, b, x)
                );
            }
        }
    }

    #[test]
    fn cross_validate_against_statrs() {
        use statrs::function::beta as sb;
        for &(a, b) in &[(2.0, 2.0), (1.5, 0.5), (3.0, 7.0)] {
            assert_close(ln_beta(a, b), sb::ln_beta(a, b), 1e-12, "ln_beta vs statrs");
            for &x in &[0.1, 0.5, 0.9] {
                assert_close(
                    beta_inc(a, b, x),
                    sb::beta_reg(a, b, x),
                    1e-11,
                    &format!("I_x({a},{b}) vs statrs"),
                );
            }
        }
    }
}
