//! Precomputed distribution evaluations over a discretization grid
//! (system S22) plus a process-wide memo for
//! discretization-and-table pairs.
//!
//! The discretized DP and the brute-force sweep call `F(tᵢ)` / survival /
//! `E[X | X > tᵢ]` at the *same* grid points for every solve over a given
//! `(distribution, scheme, n, ε)` tuple — previously re-evaluating the
//! special functions (`ln Γ`, incomplete gamma/beta inverses, …) on every
//! visit. An [`EvalTable`] evaluates each grid point once; the
//! [`discretize_eval`] cache shares the table (and the discretization
//! itself) across solver instances, experiment steps and worker threads.
//!
//! ## Exactness
//!
//! `cdf`/`survival` entries are the distribution's own values at the grid
//! points — bit-for-bit what a direct call returns. The conditional-mean
//! column is exact (one adaptive quadrature) at the **last** grid point —
//! the only one the DP's unbounded-tail extension consumes — and a
//! trapezoid-of-survival approximation at interior points, clearly
//! documented for callers that can tolerate it.

use crate::discrete::{discretize, DiscreteDistribution, DiscretizationScheme};
use crate::error::{DistError, Result};
use crate::traits::ContinuousDistribution;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Distribution evaluations precomputed over a fixed grid of points.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalTable {
    points: Vec<f64>,
    cdf: Vec<f64>,
    survival: Vec<f64>,
    cond_mean: Vec<f64>,
}

impl EvalTable {
    /// Evaluates `dist` at each of the strictly increasing `points`.
    ///
    /// Cost: one `cdf_batch` + one `survival_batch` sweep over the grid
    /// (values bit-identical to per-point `cdf`/`survival` calls) plus a
    /// single adaptive quadrature for the tail beyond the last point.
    pub fn build(dist: &dyn ContinuousDistribution, points: Vec<f64>) -> Result<Self> {
        if points.is_empty() {
            return Err(DistError::DegenerateSample {
                reason: "empty evaluation grid",
            });
        }
        let mut prev = f64::NEG_INFINITY;
        for &p in &points {
            if !p.is_finite() || p <= prev {
                return Err(DistError::InvalidParameter {
                    name: "points",
                    value: p,
                    requirement: "must be finite and strictly increasing",
                });
            }
            prev = p;
        }
        let n = points.len();
        // Batch evaluation: one virtual dispatch per column instead of one
        // per grid point, with values bit-identical to per-point calls
        // (the `cdf_batch`/`survival_batch` contract, enforced by
        // `table_matches_direct_calls_bit_for_bit` below).
        let mut cdf = vec![0.0; n];
        dist.cdf_batch(&points, &mut cdf);
        let mut survival = vec![0.0; n];
        dist.survival_batch(&points, &mut survival);

        // Conditional means, back to front. The last entry is the exact
        // `E[X | X > v_n]` (one quadrature inside the default trait
        // implementation); interior entries reuse that tail and integrate
        // the survival function between grid points with the trapezoid
        // rule, so they carry O(Δt²) discretization error.
        let mut cond_mean = vec![0.0; n];
        let last = n - 1;
        let (exact_last, mut tail_integral) = if survival[last] > 0.0 {
            let cm = dist.conditional_mean_above(points[last]);
            (cm, (cm - points[last]) * survival[last])
        } else {
            (points[last], 0.0)
        };
        cond_mean[last] = exact_last;
        for i in (0..last).rev() {
            tail_integral += 0.5 * (survival[i] + survival[i + 1]) * (points[i + 1] - points[i]);
            cond_mean[i] = if survival[i] > 0.0 {
                points[i] + tail_integral / survival[i]
            } else {
                points[i]
            };
        }
        Ok(EvalTable {
            points,
            cdf,
            survival,
            cond_mean,
        })
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The grid points, strictly increasing.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// `F(pᵢ)` for each grid point — exact distribution values.
    pub fn cdf(&self) -> &[f64] {
        &self.cdf
    }

    /// `P(X ≥ pᵢ)` for each grid point — exact distribution values.
    pub fn survival(&self) -> &[f64] {
        &self.survival
    }

    /// `E[X | X > pᵢ]` for each grid point: exact at the last point,
    /// trapezoid-approximate at interior points (see type docs).
    pub fn cond_mean(&self) -> &[f64] {
        &self.cond_mean
    }
}

/// A discretization paired with the evaluation table over its support
/// points — the unit the process-wide cache shares between solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscretizedEval {
    /// The §4.2.1 discrete law (identical to what [`discretize`] returns).
    pub discrete: DiscreteDistribution,
    /// Distribution evaluations at `discrete.values()`.
    pub table: EvalTable,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    dist: String,
    scheme: DiscretizationScheme,
    n: usize,
    epsilon_bits: u64,
}

/// Bound on cached entries. Each entry holds ~4 `n`-length vectors
/// (n ≤ a few thousand in practice); 128 entries is a generous working
/// set for a full experiment suite. On overflow the map is cleared — a
/// crude but branch-free eviction that can only cost recomputation.
const CACHE_CAPACITY: usize = 128;

static CACHE: OnceLock<Mutex<HashMap<CacheKey, Arc<DiscretizedEval>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// How the most recent [`discretize_eval`] call on this thread obtained
/// its table. A per-thread side channel (like `rsj-core`'s DP-path
/// attribution) so solve explanations can say "warm" or "cold" without
/// racing other threads' cache traffic the way global hit/miss deltas
/// would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalTableSource {
    /// Served from the process-wide cache (warm).
    CacheHit,
    /// Discretized and evaluated fresh (cold); the entry was then cached
    /// if the distribution has a faithful cache key.
    Built,
}

impl EvalTableSource {
    /// Short stable label for trace args and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            EvalTableSource::CacheHit => "warm",
            EvalTableSource::Built => "cold",
        }
    }
}

thread_local! {
    static LAST_EVAL_SOURCE: std::cell::Cell<Option<EvalTableSource>> =
        const { std::cell::Cell::new(None) };
}

/// Discards any previously recorded source so a following
/// [`last_eval_source`] cannot read attribution left over from an
/// earlier, unrelated solve on this thread.
pub fn clear_last_eval_source() {
    LAST_EVAL_SOURCE.with(|c| c.set(None));
}

/// The source recorded by the most recent [`discretize_eval`] call on
/// this thread, without clearing it; `None` when none has run since
/// [`clear_last_eval_source`] (e.g. a closed-form heuristic that never
/// discretizes).
pub fn last_eval_source() -> Option<EvalTableSource> {
    LAST_EVAL_SOURCE.with(|c| c.get())
}

fn record_eval_source(source: EvalTableSource) {
    LAST_EVAL_SOURCE.with(|c| c.set(Some(source)));
}

fn cache() -> &'static Mutex<HashMap<CacheKey, Arc<DiscretizedEval>>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Discretizes `dist` (same semantics as [`discretize`]) and builds the
/// evaluation table over the resulting support, memoized process-wide by
/// `(dist.cache_key(), scheme, n, epsilon)`.
///
/// Distributions without a faithful [`ContinuousDistribution::cache_key`]
/// are computed fresh on every call (correctness first). Concurrent
/// misses on the same key may compute the entry twice; both arrive at
/// identical values, and one wins the insert.
pub fn discretize_eval(
    dist: &dyn ContinuousDistribution,
    scheme: DiscretizationScheme,
    n: usize,
    epsilon: f64,
) -> Result<Arc<DiscretizedEval>> {
    let key = dist.cache_key().map(|dist| CacheKey {
        dist,
        scheme,
        n,
        epsilon_bits: epsilon.to_bits(),
    });
    if let Some(key) = &key {
        if let Some(hit) = cache().lock().expect("eval cache lock").get(key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            record_eval_source(EvalTableSource::CacheHit);
            return Ok(Arc::clone(hit));
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
    }
    record_eval_source(EvalTableSource::Built);

    let discrete = discretize(dist, scheme, n, epsilon)?;
    let table = EvalTable::build(dist, discrete.values().to_vec())?;
    let entry = Arc::new(DiscretizedEval { discrete, table });

    if let Some(key) = key {
        let mut map = cache().lock().expect("eval cache lock");
        if map.len() >= CACHE_CAPACITY {
            map.clear();
        }
        map.entry(key).or_insert_with(|| Arc::clone(&entry));
    }
    Ok(entry)
}

/// `(hits, misses)` of the process-wide discretization cache since start
/// (or the last reset). Exported by the benchmark binaries next to their
/// timings.
pub fn eval_cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Empties the cache and zeroes the hit/miss counters. Benchmarks call
/// this between timed solves so warm-cache and cold-cache timings stay
/// distinguishable.
pub fn clear_eval_cache() {
    cache().lock().expect("eval cache lock").clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::{Exponential, LogNormal, Uniform};

    #[test]
    fn table_matches_direct_calls_bit_for_bit() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let points: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let t = EvalTable::build(&d, points.clone()).unwrap();
        for (i, &p) in points.iter().enumerate() {
            assert_eq!(t.cdf()[i].to_bits(), d.cdf(p).to_bits());
            assert_eq!(t.survival()[i].to_bits(), d.survival(p).to_bits());
        }
        // The last conditional mean is the exact quadrature value.
        assert_eq!(
            t.cond_mean()[49].to_bits(),
            d.conditional_mean_above(50.0).to_bits()
        );
    }

    #[test]
    fn interior_cond_means_approximate_the_exact_values() {
        let d = Exponential::new(0.5).unwrap();
        let points: Vec<f64> = (1..=2000).map(|i| i as f64 * 0.01).collect();
        let t = EvalTable::build(&d, points.clone()).unwrap();
        for i in (0..2000).step_by(137) {
            let exact = d.conditional_mean_above(points[i]);
            let approx = t.cond_mean()[i];
            assert!(
                (approx - exact).abs() / exact < 1e-4,
                "point {}: approx {approx} vs exact {exact}",
                points[i]
            );
        }
    }

    #[test]
    fn bounded_support_endpoint_is_handled() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        let t = EvalTable::build(&d, vec![10.0, 15.0, 20.0]).unwrap();
        assert_eq!(t.survival()[2], 0.0);
        assert_eq!(t.cond_mean()[2], 20.0);
        // E[X | X > 15] = 17.5 for the uniform.
        assert!((t.cond_mean()[1] - 17.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_grids() {
        let d = Exponential::new(1.0).unwrap();
        assert!(EvalTable::build(&d, vec![]).is_err());
        assert!(EvalTable::build(&d, vec![1.0, 1.0]).is_err());
        assert!(EvalTable::build(&d, vec![2.0, 1.0]).is_err());
        assert!(EvalTable::build(&d, vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn cache_shares_entries_and_counts_hits() {
        clear_eval_cache();
        let d = LogNormal::new(1.25, 0.4).unwrap();
        let a = discretize_eval(&d, DiscretizationScheme::EqualProbability, 64, 1e-7).unwrap();
        let b = discretize_eval(&d, DiscretizationScheme::EqualProbability, 64, 1e-7).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let (hits, misses) = eval_cache_stats();
        assert_eq!((hits, misses), (1, 1));

        // Different scheme / n / epsilon are distinct entries.
        let c = discretize_eval(&d, DiscretizationScheme::EqualTime, 64, 1e-7).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        let reference = discretize(&d, DiscretizationScheme::EqualProbability, 64, 1e-7).unwrap();
        assert_eq!(a.discrete, reference, "cached law must equal discretize()");
        clear_eval_cache();
    }

    #[test]
    fn uncacheable_distributions_are_computed_fresh() {
        clear_eval_cache();
        let samples: Vec<f64> = (1..=200).map(|i| i as f64 * 0.1).collect();
        let d = crate::interpolated::InterpolatedEmpirical::from_samples(&samples).unwrap();
        assert!(d.cache_key().is_none());
        let a = discretize_eval(&d, DiscretizationScheme::EqualProbability, 32, 1e-7).unwrap();
        let b = discretize_eval(&d, DiscretizationScheme::EqualProbability, 32, 1e-7).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "no faithful key → no sharing");
        assert_eq!(a.discrete, b.discrete);
        let (hits, _) = eval_cache_stats();
        assert_eq!(hits, 0);
        clear_eval_cache();
    }
}
