//! The zero-cost guarantee, asserted: with no subscriber installed and
//! metrics disabled, instrumented code paths allocate nothing, print
//! nothing, and record nothing.

use rsj_obs::{Level, MemorySink, NoopRecorder, Recorder, ScopedTimer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Subscriber/metrics state is process-global; the tests in this file
/// serialize on this lock so they cannot observe each other's setup.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

/// Counts allocations so tests can assert a region performed none.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A stand-in for an instrumented hot path: spans, leveled events with
/// formatting arguments, a scoped timer, recorder calls, and a
/// per-request timeline (disabled unless request tracing is on).
fn instrumented_work(recorder: &impl Recorder, iterations: u64) -> f64 {
    let _timer = ScopedTimer::global("noop_test_wall_seconds");
    let _span = rsj_obs::span!("noop_test");
    let epoch = std::time::Instant::now();
    let mut timeline = rsj_obs::Timeline::begin_if_enabled(epoch);
    let mut acc = 0.0;
    for i in 0..iterations {
        // Formatting here would allocate; the macros must skip it.
        rsj_obs::debug!("iteration {} acc {}", i, acc);
        rsj_obs::trace!("fine-grained {}", i);
        acc += timeline.time("noop_stage", || (i as f64).sqrt());
        recorder.observe("noop_test_values", acc);
    }
    timeline.record_span("noop_span", epoch, epoch);
    recorder.add("noop_test_iterations", iterations);
    // A disabled timeline yields no record (and allocated nothing on the
    // way here).
    assert!(timeline.finish("noop").is_some() == rsj_obs::request_tracing_enabled());
    acc
}

#[test]
fn disabled_observability_does_not_allocate_or_record() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    // Process-global state: make the disabled state explicit rather than
    // assuming test ordering.
    rsj_obs::init(None);
    rsj_obs::set_metrics_enabled(false);
    rsj_obs::set_request_tracing(false);

    // Warm up once so lazily initialized runtime structures (thread-local
    // registration, etc.) don't count against the measured region.
    std::hint::black_box(instrumented_work(&NoopRecorder, 10));

    let before = allocations();
    let result = std::hint::black_box(instrumented_work(&NoopRecorder, 10_000));
    let after = allocations();

    assert!(result > 0.0);
    assert_eq!(
        after - before,
        0,
        "disabled instrumentation must not allocate"
    );
    assert!(
        !rsj_obs::global_registry()
            .names()
            .iter()
            .any(|n| n.starts_with("noop_test")),
        "disabled instrumentation must not create metrics"
    );
}

#[test]
fn disabled_tracing_emits_nothing_to_a_sink_installed_later() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    // Events emitted while disabled are gone: installing a sink afterwards
    // must observe an empty world, proving nothing was buffered.
    rsj_obs::init(None);
    std::hint::black_box(instrumented_work(&NoopRecorder, 100));

    let sink = Arc::new(MemorySink::new(Level::Trace));
    rsj_obs::set_subscriber(sink.clone());
    assert!(sink.events().is_empty());
    assert!(sink.span_exits().is_empty());

    // And with the sink live, the same code does report.
    std::hint::black_box(instrumented_work(&NoopRecorder, 3));
    assert!(!sink.events().is_empty(), "live sink must receive events");
    assert!(
        !sink.span_exits().is_empty(),
        "live sink must receive span exits"
    );
    rsj_obs::clear_subscriber();
}

#[test]
fn request_tracing_toggle_gates_timeline_capture() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    rsj_obs::set_request_tracing(false);
    let off = rsj_obs::Timeline::begin_if_enabled(std::time::Instant::now());
    assert!(!off.is_enabled());
    assert!(off.finish("noop").is_none());

    rsj_obs::set_request_tracing(true);
    let mut on = rsj_obs::Timeline::begin_if_enabled(std::time::Instant::now());
    assert!(on.is_enabled());
    on.time("stage_a", || ());
    let record = on.finish("noop").expect("enabled timeline yields a record");
    assert_eq!(record.op, "noop");
    assert!(record.stage_us("stage_a").is_some());
    rsj_obs::set_request_tracing(false);
}
