//! Offline, API-compatible subset of the `rand` crate.
//!
//! Implements the surface this workspace uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic and
//! statistically strong, but **not** stream-compatible with upstream
//! rand's ChaCha12-based `StdRng`.

#![warn(missing_docs)]
// Vendored stand-in for the crates.io crate; keep clippy out of it, as
// it would be for a registry dependency.
#![allow(clippy::all)]

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (raw entropy bytes).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it with SplitMix64
    /// (the same convention upstream rand documents for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that `Rng::gen` can produce from uniform random bits.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, irrelevant at simulation scale.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
impl_sample_range_int!(u32, u64, usize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value (`f64` in `[0, 1)`, full range
    /// for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility; same generator as [`StdRng`].
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&y));
        }
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynref: &mut dyn RngCore = &mut rng;
        let u: f64 = Rng::gen(dynref);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
