//! §3.5 verification: the optimal first reservation `s₁ ≈ 0.74219` for
//! `Exp(1)` under RESERVATIONONLY, and the scale-free structure of the
//! optimal sequence.

use crate::report::Table;
use rsj_core::exact::{exp_e1, exp_optimal_cost, exp_optimal_s1, exp_optimal_sequence};

/// The computed §3.5 quantities.
#[derive(Debug, Clone)]
pub struct S1Report {
    /// Our optimal `s₁`.
    pub s1: f64,
    /// The paper's published value.
    pub published_s1: f64,
    /// Our `E₁` at the optimum.
    pub e1: f64,
    /// The first terms of the optimal `Exp(1)` sequence.
    pub sequence: Vec<f64>,
}

/// Computes the report.
pub fn compute() -> S1Report {
    S1Report {
        s1: exp_optimal_s1(),
        published_s1: 0.74219,
        e1: exp_optimal_cost(1.0),
        sequence: exp_optimal_sequence(1.0, 8),
    }
}

/// Runs the verification and writes `results/exp_s1.{md,csv}`.
pub fn emit() -> std::io::Result<S1Report> {
    let r = compute();
    let mut table = Table::new(vec!["quantity", "ours", "paper"]);
    table.push_row(vec![
        "s1 (optimal first reservation, Exp(1))".to_string(),
        format!("{:.5}", r.s1),
        format!("{:.5}", r.published_s1),
    ])?;
    table.push_row(vec![
        "E1 (optimal normalized cost)".to_string(),
        format!("{:.5}", r.e1),
        "≈2.36 analytic (2.13 via the paper's N=1000 MC)".to_string(),
    ])?;
    table.push_row(vec![
        "s1 / mean (≈ three quarters)".to_string(),
        format!("{:.3}", r.s1),
        "0.742".to_string(),
    ])?;
    for (i, s) in r.sequence.iter().enumerate() {
        table.push_row(vec![
            format!("s{}", i + 1),
            format!("{s:.5}"),
            if i == 0 {
                "0.74219".to_string()
            } else {
                "-".to_string()
            },
        ])?;
    }
    table.emit(
        "exp_s1",
        "§3.5 — optimal exponential sequence under RESERVATIONONLY",
    )?;

    // Also show the cost landscape around the optimum.
    let mut landscape = String::from("s1,E1\n");
    for k in 1..200 {
        let s1 = k as f64 * 0.01;
        landscape.push_str(&format!("{s1},{}\n", exp_e1(s1)));
    }
    crate::report::write_result_file("exp_s1_landscape.csv", &landscape)?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_s1() {
        let r = compute();
        assert!((r.s1 - r.published_s1).abs() < 0.02, "s1 {}", r.s1);
        assert!(r.e1 > 2.0 && r.e1 < 2.5, "E1 {}", r.e1);
        assert!(r.sequence.len() >= 5);
    }
}
