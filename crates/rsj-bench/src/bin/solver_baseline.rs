//! Seeds `results/BENCH_solvers.json`: wall-clock baselines for the three
//! solver families (Brute-Force, discretized DP, exact exponential) over
//! the Table 1 distributions, plus the instrumented metrics snapshot.
//!
//! Future performance PRs diff against this file instead of folklore.
//! Honours `RSJ_FIDELITY` (`quick` shrinks the grids) and `RSJ_LOG`.

use rsj_bench::perf::PERF_SCHEMA_VERSION;
use rsj_bench::scenarios::{paper_distributions, Fidelity, EPSILON};
use rsj_bench::{report, DEFAULT_SEED};
use rsj_core::heuristics::optimal_discrete;
use rsj_core::{BruteForce, CostModel, DiscretizedDp, EvalMethod, Strategy};
use rsj_dist::{discretize, DiscretizationScheme};
use rsj_obs::{MetricsSnapshot, Stopwatch};
use serde::{Deserialize, Serialize};

/// One timed solve: which solver, on which distribution, how long.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SolverTiming {
    solver: String,
    distribution: String,
    wall_seconds: f64,
}

/// The `results/BENCH_solvers.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SolverBaseline {
    schema_version: u32,
    fidelity: String,
    seed: u64,
    timings: Vec<SolverTiming>,
    /// Global registry after the run: solver wall-time histograms with
    /// p50/p95/p99 plus candidate/state counters.
    metrics: MetricsSnapshot,
}

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    rsj_obs::set_metrics_enabled(true);

    let fidelity = Fidelity::from_env();
    let cost = CostModel::reservation_only();
    let mut timings = Vec::new();
    let mut time = |solver: &str, distribution: &str, f: &mut dyn FnMut()| {
        let sw = Stopwatch::start();
        f();
        let wall_seconds = sw.elapsed_secs();
        rsj_obs::info!("{solver} on {distribution}: {wall_seconds:.4}s");
        timings.push(SolverTiming {
            solver: solver.into(),
            distribution: distribution.into(),
            wall_seconds,
        });
    };

    rsj_obs::info!("timing solver baselines at {fidelity:?} fidelity");
    let brute = BruteForce::new(
        fidelity.grid(),
        fidelity.samples(),
        EvalMethod::Analytic,
        DEFAULT_SEED,
    )
    .expect("valid brute-force parameters");
    for nd in paper_distributions() {
        time("brute_force_analytic", nd.name, &mut || {
            brute
                .sequence(nd.dist.as_ref(), &cost)
                .expect("brute force solves the paper distributions");
        });
        for (tag, scheme) in [
            ("dp_equal_time", DiscretizationScheme::EqualTime),
            (
                "dp_equal_probability",
                DiscretizationScheme::EqualProbability,
            ),
        ] {
            let dp = DiscretizedDp::new(scheme, fidelity.discretization(), EPSILON)
                .expect("valid DP parameters");
            time(tag, nd.name, &mut || {
                dp.sequence(nd.dist.as_ref(), &cost)
                    .expect("DP solves the paper distributions");
            });
        }
    }

    // The closed-form §3.5 optimum only exists for Exponential(1); its
    // direct DP counterpart at the same discretization gives the
    // exact-vs-discretized cost of that special case.
    time("exact_exponential", "Exponential", &mut || {
        let s1 = rsj_core::exact::exponential::exp_optimal_s1();
        let c = rsj_core::exact::exponential::exp_optimal_cost(1.0);
        assert!(s1.is_finite() && c.is_finite());
    });
    time("dp_discrete_direct", "Exponential", &mut || {
        let dist = paper_distributions()
            .into_iter()
            .find(|nd| nd.name == "Exponential")
            .expect("Table 1 has the exponential row");
        let discrete = discretize(
            dist.dist.as_ref(),
            DiscretizationScheme::EqualProbability,
            fidelity.discretization(),
            EPSILON,
        )
        .expect("discretization succeeds");
        optimal_discrete(&discrete, &cost).expect("DP solves the discretized exponential");
    });

    let baseline = SolverBaseline {
        schema_version: PERF_SCHEMA_VERSION,
        fidelity: format!("{fidelity:?}"),
        seed: DEFAULT_SEED,
        timings,
        metrics: rsj_obs::global_registry().snapshot(),
    };
    let mut body = serde_json::to_string_pretty(&baseline).expect("baseline is serializable");
    body.push('\n');
    let path = report::write_result_file("BENCH_solvers.json", &body)?;
    rsj_obs::info!("solver baseline written to {}", path.display());
    Ok(())
}
