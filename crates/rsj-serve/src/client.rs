//! A blocking line-protocol client for the planning server.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{encode, Request, Response};

/// What can go wrong on the client side of a call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's reply was not a valid protocol line.
    Protocol(String),
    /// The server closed the connection without replying.
    ConnectionClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::ConnectionClosed => f.write_str("server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A persistent connection to an `rsj-serve` instance; requests pipeline
/// over one TCP stream, one JSON line each way per call.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Bounds how long [`call`](Self::call) waits for a reply.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one request and reads its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let line = encode(request).map_err(|e| ClientError::Protocol(e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::ConnectionClosed);
        }
        serde_json::from_str(reply.trim()).map_err(|e| {
            ClientError::Protocol(format!("unparsable response: {e} (line: {reply:?})"))
        })
    }

    /// Liveness probe; `Ok(())` when the server answered `pong`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::ping())? {
            Response::Pong { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's Prometheus metrics exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::metrics())? {
            Response::Metrics { prometheus, .. } => Ok(prometheus),
            other => Err(ClientError::Protocol(format!(
                "expected metrics, got {other:?}"
            ))),
        }
    }

    /// Requests a graceful shutdown; `Ok(())` once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::shutdown())? {
            Response::ShuttingDown { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected shutting_down, got {other:?}"
            ))),
        }
    }
}
