//! Runs every experiment of the reproduction in sequence — the one-shot
//! "regenerate the paper" entry point. Honours `RSJ_FIDELITY` and
//! `RSJ_RESULTS_DIR` like the individual binaries, and `RSJ_LOG` for
//! progress verbosity (`warn` silences the step markers, `debug` shows
//! solver internals).
//!
//! Metrics are always collected: each run writes
//! `results/perf_manifest.json` with per-step wall times and the full
//! solver/simulator metrics snapshot. `--metrics-out <path>` additionally
//! exports the raw registry (Prometheus text, or JSON when the path ends
//! in `.json`).

use rsj_bench::perf::PerfManifest;
use rsj_bench::scenarios::Fidelity;
use rsj_bench::{experiments, DEFAULT_SEED};
use rsj_obs::Stopwatch;
use rsj_par::Parallelism;

struct Args {
    metrics_out: Option<String>,
    threads: Option<Parallelism>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        metrics_out: None,
        threads: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => match args.next() {
                Some(path) => parsed.metrics_out = Some(path),
                None => return Err("--metrics-out requires a path".into()),
            },
            "--threads" => match args.next() {
                Some(v) => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--threads: `{v}` is not a positive integer"))?;
                    parsed.threads = Some(Parallelism::new(n).map_err(|e| e.to_string())?);
                }
                None => return Err("--threads requires a count".into()),
            },
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(parsed)
}

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    rsj_obs::set_metrics_enabled(true);
    let args = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            rsj_obs::error!("{msg}");
            eprintln!("usage: run_all [--metrics-out <path>] [--threads <n>]");
            std::process::exit(2);
        }
    };
    if let Some(par) = args.threads {
        par.install_global();
    }
    let metrics_out = args.metrics_out;

    let fidelity = Fidelity::from_env();
    rsj_obs::info!("running the full experiment suite at {fidelity:?} fidelity");

    let total = Stopwatch::start();
    let mut manifest = PerfManifest::new(format!("{fidelity:?}"), DEFAULT_SEED);
    let mut run = |name: &str, step: &mut dyn FnMut() -> std::io::Result<()>| {
        rsj_obs::info!("── {name} ({:.1}s elapsed) ──", total.elapsed_secs());
        let sw = Stopwatch::start();
        step()?;
        manifest.push_step(name, sw.elapsed_secs(), Parallelism::current().threads());
        Ok::<(), std::io::Error>(())
    };

    run("Table 2", &mut || {
        experiments::table2::emit(fidelity, DEFAULT_SEED).map(drop)
    })?;
    run("Table 3", &mut || {
        experiments::table3::emit(fidelity, DEFAULT_SEED).map(drop)
    })?;
    run("Table 4", &mut || {
        experiments::table4::emit(fidelity, DEFAULT_SEED).map(drop)
    })?;
    run("Figure 1", &mut || {
        experiments::fig1::emit(fidelity, DEFAULT_SEED).map(drop)
    })?;
    run("Figure 2", &mut || {
        experiments::fig2::emit(fidelity, DEFAULT_SEED).map(drop)
    })?;
    run("Figure 3", &mut || {
        experiments::fig3::emit(fidelity, DEFAULT_SEED).map(drop)
    })?;
    run("Figure 4", &mut || {
        experiments::fig4::emit(fidelity, DEFAULT_SEED).map(drop)
    })?;
    run("§3.5 exponential optimum", &mut || {
        experiments::exp_s1::emit().map(drop)
    })?;
    run("Figure 4 (simulated-queue cost model)", &mut || {
        experiments::fig4_simqueue::emit(fidelity, DEFAULT_SEED).map(drop)
    })?;
    run("Ablation: checkpointing", &mut || {
        experiments::ablation_checkpoint::emit(fidelity).map(drop)
    })?;
    run("Ablation: fit-then-plan fragility", &mut || {
        experiments::ablation_misfit::emit(fidelity, DEFAULT_SEED).map(drop)
    })?;
    run("Ablation: fault injection", &mut || {
        experiments::ablation_faults::emit(fidelity, DEFAULT_SEED).map(drop)
    })?;
    run("Ablation: online adaptive replanning", &mut || {
        experiments::ablation_adaptive::emit(fidelity, DEFAULT_SEED).map(drop)
    })?;

    manifest.total_wall_seconds = total.elapsed_secs();
    manifest.metrics = rsj_obs::global_registry().snapshot();
    let manifest_path = manifest.write()?;

    if let Some(path) = metrics_out {
        rsj_obs::write_metrics_file(rsj_obs::global_registry(), &path)?;
        rsj_obs::info!("metrics exported to {path}");
    }

    rsj_obs::info!(
        "all experiments done in {:.1}s; outputs in {}, perf manifest at {}",
        total.elapsed_secs(),
        rsj_bench::report::results_dir().display(),
        manifest_path.display()
    );
    Ok(())
}
