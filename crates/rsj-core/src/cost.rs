//! The reservation cost model of §2.2 (Eq. 1) and its convex extension
//! (Appendix C).
//!
//! A single reservation of length `R` for a job with actual duration `t`
//! costs `α·R + β·min(R, t) + γ`. The affine reservation-dependent part
//! `α·R + γ` generalizes to any convex `G(R)` in Appendix C; both are
//! supported here.

use crate::error::{CoreError, Result};
use rsj_dist::ContinuousDistribution;
use serde::{Deserialize, Serialize};

/// Affine cost model `C(R, t) = α·R + β·min(R, t) + γ` with `α > 0`,
/// `β ≥ 0`, `γ ≥ 0` (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Price per reserved time unit (`α > 0`).
    pub alpha: f64,
    /// Price per actually-used time unit (`β ≥ 0`).
    pub beta: f64,
    /// Fixed start-up cost per reservation (`γ ≥ 0`).
    pub gamma: f64,
}

impl CostModel {
    /// Creates a cost model, validating the §2.2 constraints.
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> Result<Self> {
        if !(alpha > 0.0) || !alpha.is_finite() {
            return Err(CoreError::InvalidCostParameter {
                name: "alpha",
                value: alpha,
                requirement: "must be > 0 and finite",
            });
        }
        if !(beta >= 0.0) || !beta.is_finite() {
            return Err(CoreError::InvalidCostParameter {
                name: "beta",
                value: beta,
                requirement: "must be >= 0 and finite",
            });
        }
        if !(gamma >= 0.0) || !gamma.is_finite() {
            return Err(CoreError::InvalidCostParameter {
                name: "gamma",
                value: gamma,
                requirement: "must be >= 0 and finite",
            });
        }
        Ok(Self { alpha, beta, gamma })
    }

    /// The RESERVATIONONLY instance: `α = 1`, `β = γ = 0` (§2.3), modelling
    /// pay-what-you-request cloud reservations (AWS Reserved Instances).
    pub fn reservation_only() -> Self {
        Self {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
        }
    }

    /// The NeuroHPC instance of §5.3: wait time `α·R + γ` plus execution
    /// time (`β = 1`). The paper's Intrepid fit gives `α = 0.95`,
    /// `γ = 1.05` hours.
    pub fn neuro_hpc(alpha: f64, gamma: f64) -> Result<Self> {
        Self::new(alpha, 1.0, gamma)
    }

    /// Cost of a single reservation of length `reservation` for a job of
    /// actual duration `t` (Eq. 1).
    pub fn single(&self, reservation: f64, t: f64) -> f64 {
        self.alpha * reservation + self.beta * reservation.min(t) + self.gamma
    }

    /// Cost of a *failed* reservation (the job did not fit): the full
    /// reservation is paid and the platform was used for its whole length.
    pub fn failed(&self, reservation: f64) -> f64 {
        (self.alpha + self.beta) * reservation + self.gamma
    }

    /// Expected cost of the omniscient scheduler, which reserves exactly the
    /// job's duration: `E° = (α + β)·E[X] + γ` (§5.1).
    pub fn omniscient(&self, dist: &dyn ContinuousDistribution) -> f64 {
        (self.alpha + self.beta) * dist.mean() + self.gamma
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::reservation_only()
    }
}

/// A convex reservation cost `G(R)` (Appendix C): the price of reserving
/// `R` time units, excluding the usage term `β·min(R, t)`.
///
/// `G` must be convex, strictly increasing and invertible on the relevant
/// range; `g_prime` and `g_inverse` feed the generalized recurrence of
/// Eq. 37.
pub trait ConvexCost: Send + Sync + std::fmt::Debug {
    /// The reservation cost `G(x)`.
    fn g(&self, x: f64) -> f64;
    /// The derivative `G'(x)`.
    fn g_prime(&self, x: f64) -> f64;
    /// The inverse `G⁻¹(y)` on the increasing branch.
    fn g_inverse(&self, y: f64) -> f64;
    /// The usage-proportional coefficient `β ≥ 0`.
    fn beta(&self) -> f64;

    /// Cost of a single reservation for a job of duration `t`.
    fn single(&self, reservation: f64, t: f64) -> f64 {
        self.g(reservation) + self.beta() * reservation.min(t)
    }
}

/// The affine `G(x) = α·x + γ` viewed as a [`ConvexCost`]; Appendix C
/// results must reduce to the §3.3 ones with this instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineConvexCost(pub CostModel);

impl ConvexCost for AffineConvexCost {
    fn g(&self, x: f64) -> f64 {
        self.0.alpha * x + self.0.gamma
    }

    fn g_prime(&self, _x: f64) -> f64 {
        self.0.alpha
    }

    fn g_inverse(&self, y: f64) -> f64 {
        (y - self.0.gamma) / self.0.alpha
    }

    fn beta(&self) -> f64 {
        self.0.beta
    }
}

/// Quadratic reservation cost `G(x) = a·x² + b·x + c` with `a > 0`,
/// `b ≥ 0`: a platform that penalizes long reservations superlinearly
/// (e.g. queue-priority pricing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticCost {
    /// Quadratic coefficient (`> 0`).
    pub a: f64,
    /// Linear coefficient (`≥ 0`).
    pub b: f64,
    /// Fixed cost (`≥ 0`).
    pub c: f64,
    /// Usage-proportional coefficient `β ≥ 0`.
    pub beta: f64,
}

impl QuadraticCost {
    /// Creates a quadratic cost model.
    pub fn new(a: f64, b: f64, c: f64, beta: f64) -> Result<Self> {
        if !(a > 0.0) {
            return Err(CoreError::InvalidCostParameter {
                name: "a",
                value: a,
                requirement: "must be > 0",
            });
        }
        if !(b >= 0.0) || !(c >= 0.0) || !(beta >= 0.0) {
            return Err(CoreError::InvalidCostParameter {
                name: "b/c/beta",
                value: b.min(c).min(beta),
                requirement: "must be >= 0",
            });
        }
        Ok(Self { a, b, c, beta })
    }
}

impl ConvexCost for QuadraticCost {
    fn g(&self, x: f64) -> f64 {
        self.a * x * x + self.b * x + self.c
    }

    fn g_prime(&self, x: f64) -> f64 {
        2.0 * self.a * x + self.b
    }

    fn g_inverse(&self, y: f64) -> f64 {
        // Increasing branch of a·x² + b·x + (c - y) = 0 for x ≥ 0.
        let disc = self.b * self.b - 4.0 * self.a * (self.c - y);
        if disc <= 0.0 {
            return 0.0;
        }
        (-self.b + disc.sqrt()) / (2.0 * self.a)
    }

    fn beta(&self) -> f64 {
        self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_dist::Exponential;

    #[test]
    fn validates_parameters() {
        assert!(CostModel::new(0.0, 0.0, 0.0).is_err());
        assert!(CostModel::new(1.0, -0.1, 0.0).is_err());
        assert!(CostModel::new(1.0, 0.0, -1.0).is_err());
        assert!(CostModel::new(1.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn reservation_only_single_cost() {
        let c = CostModel::reservation_only();
        assert_eq!(c.single(10.0, 5.0), 10.0);
        assert_eq!(c.single(10.0, 50.0), 10.0);
        assert_eq!(c.failed(10.0), 10.0);
    }

    #[test]
    fn full_model_single_cost() {
        let c = CostModel::new(0.95, 1.0, 1.05).unwrap();
        // Successful run: pays reservation + actual time + startup.
        assert!((c.single(2.0, 1.5) - (0.95 * 2.0 + 1.5 + 1.05)).abs() < 1e-12);
        // Failed run: pays reservation twice-weighted + startup.
        assert!((c.failed(2.0) - (1.95 * 2.0 + 1.05)).abs() < 1e-12);
    }

    #[test]
    fn omniscient_cost() {
        let c = CostModel::new(2.0, 1.0, 0.5).unwrap();
        let d = Exponential::new(1.0).unwrap();
        assert!((c.omniscient(&d) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn affine_convex_round_trip() {
        let c = AffineConvexCost(CostModel::new(0.95, 1.0, 1.05).unwrap());
        for &x in &[0.0, 1.0, 7.3] {
            assert!((c.g_inverse(c.g(x)) - x).abs() < 1e-12);
        }
        assert_eq!(c.g_prime(3.0), 0.95);
        assert_eq!(c.beta(), 1.0);
    }

    #[test]
    fn quadratic_convex_round_trip() {
        let q = QuadraticCost::new(0.5, 1.0, 2.0, 0.0).unwrap();
        for &x in &[0.0, 0.5, 3.0, 10.0] {
            assert!((q.g_inverse(q.g(x)) - x).abs() < 1e-10, "x={x}");
        }
        // Convexity: G' increasing.
        assert!(q.g_prime(2.0) > q.g_prime(1.0));
    }

    #[test]
    fn quadratic_rejects_bad_params() {
        assert!(QuadraticCost::new(0.0, 1.0, 1.0, 0.0).is_err());
        assert!(QuadraticCost::new(1.0, -1.0, 1.0, 0.0).is_err());
    }
}
