//! Adaptive Simpson quadrature (system S5 of DESIGN.md).
//!
//! Used as the default implementation of conditional expectations and as a
//! cross-validation tool for the closed forms of Appendix B. Not on the hot
//! path of any heuristic — every distribution overrides the defaults with
//! closed forms.

/// Result of the adaptive integration, carrying an error estimate.
#[derive(Debug, Clone, Copy)]
pub struct Quadrature {
    /// Approximate integral value.
    pub value: f64,
    /// Crude estimate of the absolute error.
    pub error_estimate: f64,
}

const MAX_DEPTH: u32 = 50;

fn simpson(fa: f64, fm: f64, fb: f64, h: f64) -> f64 {
    h / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> (f64, f64) {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(fa, flm, fm, m - a);
    let right = simpson(fm, frm, fb, b - m);
    let delta = left + right - whole;
    if depth >= MAX_DEPTH || delta.abs() <= 15.0 * tol {
        (left + right + delta / 15.0, delta.abs() / 15.0)
    } else {
        let (lv, le) = adaptive(f, a, m, fa, flm, fm, left, tol / 2.0, depth + 1);
        let (rv, re) = adaptive(f, m, b, fm, frm, fb, right, tol / 2.0, depth + 1);
        (lv + rv, le + re)
    }
}

/// Integrates `f` over the finite interval `[a, b]` with adaptive Simpson.
///
/// `tol` is an absolute tolerance; the achieved error is usually far below.
pub fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Quadrature {
    assert!(
        a.is_finite() && b.is_finite(),
        "integrate: bounds must be finite"
    );
    if a == b {
        return Quadrature {
            value: 0.0,
            error_estimate: 0.0,
        };
    }
    let (a, b, sign) = if a < b { (a, b, 1.0) } else { (b, a, -1.0) };
    let m = 0.5 * (a + b);
    let fa = f(a);
    let fm = f(m);
    let fb = f(b);
    let whole = simpson(fa, fm, fb, b - a);
    let (value, err) = adaptive(&f, a, b, fa, fm, fb, whole, tol, 0);
    Quadrature {
        value: sign * value,
        error_estimate: err,
    }
}

/// Integrates `f` over `[a, ∞)` via the substitution `t = a + u/(1-u)`,
/// mapping the half-line onto `[0, 1)`.
///
/// Requires `f` to decay fast enough for the transformed integrand to remain
/// bounded (true of all survival functions with finite second moment, the
/// standing assumption of Theorem 2).
pub fn integrate_to_inf<F: Fn(f64) -> f64>(f: F, a: f64, tol: f64) -> Quadrature {
    let g = |u: f64| {
        if u >= 1.0 {
            return 0.0;
        }
        let one_minus = 1.0 - u;
        let t = a + u / one_minus;
        let v = f(t) / (one_minus * one_minus);
        if v.is_finite() {
            v
        } else {
            0.0
        }
    };
    integrate(g, 0.0, 1.0 - 1e-12, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_exact() {
        // Simpson is exact for cubics.
        let q = integrate(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 1e-12);
        // ∫₀² (x³ - 2x + 1) dx = 4 - 4 + 2 = 2
        assert!((q.value - 2.0).abs() < 1e-12, "got {}", q.value);
    }

    #[test]
    fn transcendental() {
        let q = integrate(f64::sin, 0.0, std::f64::consts::PI, 1e-12);
        assert!((q.value - 2.0).abs() < 1e-10, "got {}", q.value);
    }

    #[test]
    fn reversed_bounds_negate() {
        let fwd = integrate(|x| x, 0.0, 1.0, 1e-12).value;
        let bwd = integrate(|x| x, 1.0, 0.0, 1e-12).value;
        assert!((fwd + bwd).abs() < 1e-14);
    }

    #[test]
    fn half_line_exponential() {
        // ∫₀^∞ e^{-t} dt = 1
        let q = integrate_to_inf(|t| (-t).exp(), 0.0, 1e-12);
        assert!((q.value - 1.0).abs() < 1e-8, "got {}", q.value);
    }

    #[test]
    fn half_line_shifted() {
        // ∫_2^∞ e^{-t} dt = e^{-2}
        let q = integrate_to_inf(|t| (-t).exp(), 2.0, 1e-12);
        assert!((q.value - (-2.0f64).exp()).abs() < 1e-9, "got {}", q.value);
    }

    #[test]
    fn half_line_heavy_tail() {
        // ∫_1^∞ 3 t^{-4} dt = 1 (Pareto(1,3) survival mass of pdf)
        let q = integrate_to_inf(|t| 3.0 * t.powi(-4), 1.0, 1e-12);
        assert!((q.value - 1.0).abs() < 1e-7, "got {}", q.value);
    }

    #[test]
    fn zero_length_interval() {
        let q = integrate(|x| x, 3.0, 3.0, 1e-12);
        assert_eq!(q.value, 0.0);
    }
}
