//! Queue-simulator invariants, checked by reconstructing the machine
//! timeline from the produced records — independently of the scheduler's
//! own bookkeeping.

use proptest::prelude::*;
use rand::SeedableRng;
use rsj_dist::LogNormal;
use rsj_sim::{
    generate_workload, simulate, summarize, ClusterConfig, JobRecord, SchedulerPolicy,
    WorkloadConfig,
};

fn run(policy: SchedulerPolicy, count: usize, seed: u64, processors: usize) -> Vec<JobRecord> {
    let runtime = LogNormal::from_moments(2.0, 2.0).unwrap();
    let workload = WorkloadConfig {
        arrival_rate: 6.0,
        processor_choices: vec![(8, 0.3), (32, 0.3), (64, 0.2), (128, 0.2)],
        overestimate: (1.1, 2.5),
        count,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let jobs = generate_workload(&workload, &runtime, &mut rng);
    simulate(&ClusterConfig { processors, policy }, &jobs)
}

/// Sweep the records' start/end events and assert the machine is never
/// oversubscribed.
fn assert_never_oversubscribed(records: &[JobRecord], processors: usize) {
    let mut events: Vec<(f64, i64)> = Vec::with_capacity(records.len() * 2);
    for r in records {
        events.push((r.start, r.job.processors as i64));
        events.push((r.end, -(r.job.processors as i64)));
    }
    // Ends before starts at equal times (a freed slot is reusable).
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then_with(|| a.1.cmp(&b.1)));
    let mut used: i64 = 0;
    for (t, delta) in events {
        used += delta;
        assert!(
            used <= processors as i64,
            "machine oversubscribed at t={t}: {used} > {processors}"
        );
        assert!(used >= 0, "negative allocation at t={t}");
    }
}

#[test]
fn fcfs_never_oversubscribes() {
    let records = run(SchedulerPolicy::Fcfs, 2000, 1, 256);
    assert_eq!(records.len(), 2000);
    assert_never_oversubscribed(&records, 256);
}

#[test]
fn easy_never_oversubscribes() {
    let records = run(SchedulerPolicy::EasyBackfill, 2000, 1, 256);
    assert_eq!(records.len(), 2000);
    assert_never_oversubscribed(&records, 256);
}

#[test]
fn busy_hours_conserved_across_policies() {
    // Every job occupies min(actual, requested) regardless of policy:
    // total busy processor-hours must be identical.
    let busy = |records: &[JobRecord]| -> f64 {
        records
            .iter()
            .map(|r| (r.end - r.start) * r.job.processors as f64)
            .sum()
    };
    let fcfs = run(SchedulerPolicy::Fcfs, 1500, 2, 256);
    let easy = run(SchedulerPolicy::EasyBackfill, 1500, 2, 256);
    assert!((busy(&fcfs) - busy(&easy)).abs() < 1e-6);
}

#[test]
fn fcfs_starts_in_arrival_order() {
    // Strict FCFS: start times follow arrival order (jobs are ids in
    // arrival order by construction).
    let records = run(SchedulerPolicy::Fcfs, 1000, 3, 256);
    for w in records.windows(2) {
        assert!(
            w[1].start >= w[0].start - 1e-12,
            "FCFS must start jobs in order: job {:?} at {} before job {:?} at {}",
            w[1].job.id,
            w[1].start,
            w[0].job.id,
            w[0].start
        );
    }
}

#[test]
fn easy_improves_or_matches_mean_wait() {
    for seed in [5u64, 6, 7] {
        let fcfs = summarize(&run(SchedulerPolicy::Fcfs, 2000, seed, 256), 256);
        let easy = summarize(&run(SchedulerPolicy::EasyBackfill, 2000, seed, 256), 256);
        assert!(
            easy.mean_wait <= fcfs.mean_wait * 1.02,
            "seed {seed}: EASY mean wait {} should not exceed FCFS {}",
            easy.mean_wait,
            fcfs.mean_wait
        );
    }
}

#[test]
fn kill_fraction_matches_overestimation_model() {
    // requested = actual × U[1.1, 2.5] ≥ actual, so nothing is killed.
    let records = run(SchedulerPolicy::EasyBackfill, 1000, 8, 256);
    assert!(records.iter().all(|r| !r.killed));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random workloads and machine sizes: completion, causality and
    /// capacity all hold under both policies.
    #[test]
    fn simulation_invariants_hold(
        seed in 0u64..1000,
        // At least as wide as the widest workload job (128): narrower
        // machines reject the job at submission (see `simulate`).
        processors in 128usize..512,
        count in 100usize..600,
    ) {
        use rsj_sim::PriorityConfig;
        for policy in [
            SchedulerPolicy::Fcfs,
            SchedulerPolicy::EasyBackfill,
            SchedulerPolicy::Conservative,
            SchedulerPolicy::SlurmLike(PriorityConfig {
                high_priority_proc_hours: 100.0,
                upgrade_after: 12.0,
            }),
        ] {
            let records = run(policy, count, seed, processors);
            prop_assert_eq!(records.len(), count, "every job completes");
            for r in &records {
                prop_assert!(r.start >= r.job.arrival, "no time travel");
                prop_assert!(r.end > r.start, "positive occupancy");
                prop_assert!((r.wait - (r.start - r.job.arrival)).abs() < 1e-9);
                prop_assert!(
                    (r.end - r.start) - r.job.occupancy() < 1e-9,
                    "occupancy accounting"
                );
            }
            assert_never_oversubscribed(&records, processors);
        }
    }
}
