//! Fault injection (system S18): deterministic, seed-reproducible failure
//! processes layered over both execution substrates — the discrete-event
//! cluster ([`crate::cluster::simulate_with_faults`]) and the reservation
//! executor ([`crate::resilient`]).
//!
//! Three processes, freely combinable:
//!
//! * **node crashes** — a Poisson process with exponential mean time
//!   between failures (`mtbf`), the classic HPC component-failure model;
//! * **spot preemptions** — a second, independent Poisson process with a
//!   configurable interruption `rate` (events per hour), modelling cloud
//!   spot/preemptible instances being reclaimed;
//! * **walltime jitter** — the platform kills a reservation up to a
//!   fraction `walltime_jitter` *before* its nominal end (real batch
//!   systems enforce limits with non-zero slop, usually early under load).
//!
//! All randomness comes from a dedicated RNG seeded by
//! [`FaultConfig::seed`], never from the workload RNG — so enabling or
//! disabling faults cannot perturb the sampled job durations, and a fixed
//! `(FaultConfig, seed)` pair reproduces the exact same fault trace.

use crate::error::{check_param, SimError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What interrupted a reservation or running job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A node crash (exponential-MTBF Poisson process).
    Crash,
    /// A spot-style preemption (rate-based Poisson process).
    Preemption,
    /// The platform killed the reservation before its nominal walltime
    /// (jitter mode).
    WalltimeKill,
}

/// One fault in a resilient run's trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// 0-based index of the interrupted attempt.
    pub attempt: usize,
    /// Sequence slot the attempt was drawn from.
    pub slot: usize,
    /// Elapsed time into the attempt when the fault struck.
    pub at: f64,
    /// What struck.
    pub kind: FaultKind,
}

/// Configuration of the fault processes. The default (all processes off)
/// is fault-free: no RNG draws occur and every simulation reproduces its
/// fault-free counterpart bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the dedicated fault RNG (independent of the workload RNG).
    #[serde(default)]
    pub seed: u64,
    /// Mean time between node crashes (hours); `None` disables crashes.
    #[serde(default)]
    pub mtbf: Option<f64>,
    /// Spot-preemption rate (interruptions per hour); `None` disables
    /// preemptions.
    #[serde(default)]
    pub preemption_rate: Option<f64>,
    /// Maximum early-kill fraction of a reservation's nominal length, in
    /// `[0, 1)`; `None` disables jitter.
    #[serde(default)]
    pub walltime_jitter: Option<f64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultConfig {
    /// The fault-free configuration.
    pub fn none() -> Self {
        Self {
            seed: 0,
            mtbf: None,
            preemption_rate: None,
            walltime_jitter: None,
        }
    }

    /// Crashes only, with the given mean time between failures.
    pub fn crashes(mtbf: f64, seed: u64) -> Self {
        Self {
            seed,
            mtbf: Some(mtbf),
            ..Self::none()
        }
    }

    /// Spot preemptions only, with the given interruption rate per hour.
    pub fn preemptions(rate: f64, seed: u64) -> Self {
        Self {
            seed,
            preemption_rate: Some(rate),
            ..Self::none()
        }
    }

    /// Walltime jitter only: kills arrive up to `jitter`-fraction early.
    pub fn walltime_jitter(jitter: f64, seed: u64) -> Self {
        Self {
            seed,
            walltime_jitter: Some(jitter),
            ..Self::none()
        }
    }

    /// Whether every process is disabled.
    pub fn is_fault_free(&self) -> bool {
        self.mtbf.is_none() && self.preemption_rate.is_none() && self.walltime_jitter.is_none()
    }

    /// Validates all parameters, naming the offending field on failure.
    pub fn validate(&self) -> Result<(), SimError> {
        if let Some(m) = self.mtbf {
            check_param("mtbf", m, "must be > 0", m > 0.0)?;
        }
        if let Some(r) = self.preemption_rate {
            check_param("preemption_rate", r, "must be >= 0", r >= 0.0)?;
        }
        if let Some(j) = self.walltime_jitter {
            check_param(
                "walltime_jitter",
                j,
                "must be in [0, 1)",
                (0.0..1.0).contains(&j),
            )?;
        }
        Ok(())
    }
}

/// Deterministic fault-time sampler: owns the dedicated fault RNG and
/// draws in a fixed order, so identical configurations replay identical
/// fault traces regardless of what the simulation does between queries.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    mtbf: Option<f64>,
    preemption_rate: Option<f64>,
    jitter: Option<f64>,
}

impl FaultInjector {
    /// Builds an injector after validating the configuration.
    pub fn new(config: &FaultConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Self {
            rng: StdRng::seed_from_u64(config.seed),
            mtbf: config.mtbf,
            preemption_rate: config.preemption_rate,
            jitter: config.walltime_jitter,
        })
    }

    /// Builds the injector for job `job_index` of a batch, seeding its RNG
    /// from a per-job substream of [`FaultConfig::seed`]
    /// ([`rsj_par::substream_seed`]). Per-job streams make the fault trace
    /// a function of `(config.seed, job_index)` alone — independent of
    /// execution order — so batches can run their jobs in parallel and
    /// still reproduce bit-for-bit at any thread count. Fault-free
    /// configurations never draw, so they are unaffected by the seeding.
    pub fn for_job(config: &FaultConfig, job_index: u64) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Self::for_job_unvalidated(config, job_index))
    }

    /// [`Self::for_job`] without re-validating `config`; for batch hot
    /// loops that validated once up front.
    pub(crate) fn for_job_unvalidated(config: &FaultConfig, job_index: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(rsj_par::substream_seed(config.seed, job_index)),
            mtbf: config.mtbf,
            preemption_rate: config.preemption_rate,
            jitter: config.walltime_jitter,
        }
    }

    /// Whether every process is disabled (no query ever draws).
    pub fn is_fault_free(&self) -> bool {
        self.mtbf.is_none() && self.preemption_rate.is_none() && self.jitter.is_none()
    }

    /// One exponential variate with the given mean (inverse-CDF method).
    fn exp_draw(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        -mean * (1.0 - u).ln()
    }

    /// First crash/preemption within a busy window of length `window`
    /// (hours from the window's start), or `None` if the window completes
    /// undisturbed.
    ///
    /// When a process is enabled its arrival is drawn unconditionally, so
    /// the number of RNG draws per query is independent of `window` — a
    /// prerequisite for trace-stable determinism.
    pub fn interruption(&mut self, window: f64) -> Option<(f64, FaultKind)> {
        let crash = self.mtbf.map(|m| self.exp_draw(m));
        let preempt = self
            .preemption_rate
            .filter(|&r| r > 0.0)
            .map(|r| self.exp_draw(1.0 / r));
        let mut first: Option<(f64, FaultKind)> = None;
        if let Some(c) = crash {
            first = Some((c, FaultKind::Crash));
        }
        if let Some(p) = preempt {
            if first.is_none_or(|(c, _)| p < c) {
                first = Some((p, FaultKind::Preemption));
            }
        }
        first.filter(|&(t, _)| t < window)
    }

    /// Effective kill time of a reservation of nominal length `nominal`:
    /// uniformly in `[(1 - jitter)·nominal, nominal]`, or exactly
    /// `nominal` when jitter is disabled (no draw).
    pub fn effective_walltime(&mut self, nominal: f64) -> f64 {
        match self.jitter {
            None => nominal,
            Some(j) => {
                let u: f64 = self.rng.gen_range(0.0..1.0);
                nominal * (1.0 - j * u)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_never_draws() {
        let mut inj = FaultInjector::new(&FaultConfig::none()).unwrap();
        assert!(inj.is_fault_free());
        assert_eq!(inj.interruption(1e12), None);
        assert_eq!(inj.effective_walltime(5.0), 5.0);
    }

    #[test]
    fn validation_names_offending_field() {
        let err = FaultConfig::crashes(-1.0, 0).validate().unwrap_err();
        assert!(err.to_string().contains("mtbf"), "{err}");
        let err = FaultConfig::walltime_jitter(1.5, 0).validate().unwrap_err();
        assert!(err.to_string().contains("walltime_jitter"), "{err}");
        let err = FaultConfig::crashes(f64::NAN, 0).validate().unwrap_err();
        assert!(err.to_string().contains("mtbf"), "{err}");
        assert!(FaultConfig::preemptions(0.0, 0).validate().is_ok());
    }

    #[test]
    fn identical_seeds_replay_identical_traces() {
        let cfg = FaultConfig {
            seed: 42,
            mtbf: Some(3.0),
            preemption_rate: Some(0.5),
            walltime_jitter: Some(0.1),
        };
        let mut a = FaultInjector::new(&cfg).unwrap();
        let mut b = FaultInjector::new(&cfg).unwrap();
        for i in 0..200 {
            let w = 0.5 + (i % 7) as f64;
            assert_eq!(a.interruption(w), b.interruption(w));
            assert_eq!(a.effective_walltime(w), b.effective_walltime(w));
        }
    }

    #[test]
    fn per_job_injectors_replay_and_decorrelate() {
        let cfg = FaultConfig {
            seed: 42,
            mtbf: Some(3.0),
            preemption_rate: Some(0.5),
            walltime_jitter: Some(0.1),
        };
        // Same (seed, job) → identical trace.
        let mut a = FaultInjector::for_job(&cfg, 7).unwrap();
        let mut b = FaultInjector::for_job(&cfg, 7).unwrap();
        let trace_a: Vec<_> = (0..50).map(|_| a.interruption(2.0)).collect();
        let trace_b: Vec<_> = (0..50).map(|_| b.interruption(2.0)).collect();
        assert_eq!(trace_a, trace_b);
        // Different job index → different trace.
        let mut c = FaultInjector::for_job(&cfg, 8).unwrap();
        let trace_c: Vec<_> = (0..50).map(|_| c.interruption(2.0)).collect();
        assert_ne!(trace_a, trace_c);
        // Invalid configs still rejected.
        assert!(FaultInjector::for_job(&FaultConfig::crashes(-1.0, 0), 0).is_err());
    }

    #[test]
    fn tiny_mtbf_interrupts_large_windows() {
        let mut inj = FaultInjector::new(&FaultConfig::crashes(0.01, 7)).unwrap();
        let hits = (0..100)
            .filter(|_| inj.interruption(10.0).is_some())
            .count();
        assert!(
            hits > 90,
            "mtbf 0.01 should interrupt ~all 10h windows, hit {hits}"
        );
    }

    #[test]
    fn huge_mtbf_rarely_interrupts() {
        let mut inj = FaultInjector::new(&FaultConfig::crashes(1e6, 7)).unwrap();
        let hits = (0..100).filter(|_| inj.interruption(1.0).is_some()).count();
        assert!(
            hits < 5,
            "mtbf 1e6 should almost never interrupt 1h windows, hit {hits}"
        );
    }

    #[test]
    fn preemption_beats_crash_when_earlier() {
        // With a huge MTBF and a huge preemption rate, essentially every
        // interruption should be a preemption.
        let cfg = FaultConfig {
            seed: 3,
            mtbf: Some(1e9),
            preemption_rate: Some(1e3),
            walltime_jitter: None,
        };
        let mut inj = FaultInjector::new(&cfg).unwrap();
        for _ in 0..50 {
            let (_, kind) = inj
                .interruption(1.0)
                .expect("rate 1e3 interrupts 1h windows");
            assert_eq!(kind, FaultKind::Preemption);
        }
    }

    #[test]
    fn jitter_bounds_hold() {
        let mut inj = FaultInjector::new(&FaultConfig::walltime_jitter(0.25, 11)).unwrap();
        for _ in 0..500 {
            let w = inj.effective_walltime(8.0);
            assert!(
                (8.0 * 0.75..=8.0).contains(&w),
                "jittered walltime {w} out of bounds"
            );
        }
    }

    #[test]
    fn config_json_round_trip() {
        let cfg = FaultConfig {
            seed: 9,
            mtbf: Some(24.0),
            preemption_rate: None,
            walltime_jitter: Some(0.05),
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        // Omitted fields default to "off".
        let minimal: FaultConfig = serde_json::from_str(r#"{ "seed": 1 }"#).unwrap();
        assert!(minimal.is_fault_free());
    }
}
