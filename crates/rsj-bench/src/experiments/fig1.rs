//! Figure 1: synthesize the two neuroscience runtime archives and rerun
//! the paper's LogNormal fitting, reporting fitted parameters and
//! goodness-of-fit.

use crate::report::Table;
use crate::scenarios::Fidelity;
use rand::SeedableRng;
use rsj_traces::{figure1_archive, fit_archive, FitReport};

/// Number of runs per application (the paper: "over 5000").
pub fn runs(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Paper => 5000,
        Fidelity::Quick => 1500,
    }
}

/// Generates the archive and fits both applications.
pub fn compute(fidelity: Fidelity, seed: u64) -> Vec<FitReport> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let archive = figure1_archive(runs(fidelity), &mut rng);
    fit_archive(&archive).expect("synthetic archives are clean")
}

/// Renders the fit table.
pub fn render(reports: &[FitReport]) -> Result<Table, crate::report::ReportError> {
    let mut table = Table::new(vec![
        "Application",
        "runs",
        "mu",
        "sigma",
        "mean (s)",
        "std (s)",
        "KS",
        "KS 1% threshold",
        "fit OK",
    ]);
    for r in reports {
        table.push_row(vec![
            r.app.clone(),
            r.runs.to_string(),
            format!("{:.4}", r.mu),
            format!("{:.4}", r.sigma),
            format!("{:.2}", r.natural_mean),
            format!("{:.2}", r.natural_std),
            format!("{:.4}", r.ks_statistic),
            format!("{:.4}", r.ks_threshold_1pct),
            r.acceptable().to_string(),
        ])?;
    }
    Ok(table)
}

/// Runs the experiment and writes `results/fig1.{md,csv}`.
pub fn emit(fidelity: Fidelity, seed: u64) -> std::io::Result<Vec<FitReport>> {
    let reports = compute(fidelity, seed);
    render(&reports)?.emit(
        "fig1",
        "Figure 1 — LogNormal fits of the synthetic neuroscience archives (VBMQA target: mu=7.1128, sigma=0.2039, mean=1253.37s)",
    )?;
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vbmqa_fit_recovers_published_parameters() {
        let reports = compute(Fidelity::Quick, 23);
        let vbmqa = reports.iter().find(|r| r.app == "VBMQA").unwrap();
        assert!((vbmqa.mu - 7.1128).abs() < 0.03, "mu {}", vbmqa.mu);
        assert!((vbmqa.sigma - 0.2039).abs() < 0.02, "sigma {}", vbmqa.sigma);
        assert!(vbmqa.acceptable());
    }

    #[test]
    fn both_apps_reported() {
        let reports = compute(Fidelity::Quick, 23);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().any(|r| r.app == "fMRIQA"));
    }
}
