//! The NeuroHPC scenario of §5.3: the VBMQA runtime law (in hours) under
//! the Intrepid-derived waiting-time cost model.
//!
//! Cost of a reservation of `R` hours for a job of `t` hours is
//! `wait(R) + min(R, t)` with `wait(R) = α·R + γ` fitted from Figure 2(b):
//! `α = 0.95`, `γ = 3771.84 s ≈ 1.05 h`, i.e. `CostModel(0.95, 1.0, 1.05)`.

use crate::format::TraceArchive;
use crate::pipeline::fit_archive;
use rsj_core::CostModel;
use rsj_dist::LogNormal;

/// Seconds per hour, for converting the trace fits.
pub const SECS_PER_HOUR: f64 = 3600.0;

/// The paper's base NeuroHPC moments in hours: mean ≈ 0.348 h,
/// std ≈ 0.072 h.
pub const BASE_MEAN_HOURS: f64 = 1253.37 / SECS_PER_HOUR;
/// Base standard deviation in hours.
pub const BASE_STD_HOURS: f64 = 258.261 / SECS_PER_HOUR;

/// A fully-instantiated NeuroHPC experiment: job law (hours) + cost model.
#[derive(Debug, Clone)]
pub struct NeuroHpcScenario {
    /// Job runtime law in hours.
    pub dist: LogNormal,
    /// Waiting-time cost model (`β = 1`).
    pub cost: CostModel,
}

impl NeuroHpcScenario {
    /// The paper's §5.3 instantiation: `LogNormal(7.1128, 0.2039)` seconds
    /// converted to hours, `α = 0.95`, `γ = 1.05`.
    pub fn paper() -> Self {
        // ln(X/3600) = ln X - ln 3600 shifts only the location parameter.
        let mu_hours = crate::synth::VBMQA_MU - SECS_PER_HOUR.ln();
        Self {
            dist: LogNormal::new(mu_hours, crate::synth::VBMQA_SIGMA)
                .expect("published parameters are valid"),
            cost: CostModel::new(0.95, 1.0, 1.05).expect("published cost model is valid"),
        }
    }

    /// The Figure 4 robustness sweep: the base moments scaled by
    /// `mean_factor` and `std_factor` (each up to ×10 in the paper),
    /// re-instantiated by the footnote-4 method of moments.
    pub fn with_scaled_moments(mean_factor: f64, std_factor: f64) -> Result<Self, String> {
        if !(mean_factor > 0.0 && std_factor > 0.0) {
            return Err("scale factors must be positive".into());
        }
        let dist =
            LogNormal::from_moments(BASE_MEAN_HOURS * mean_factor, BASE_STD_HOURS * std_factor)
                .map_err(|e| e.to_string())?;
        Ok(Self {
            dist,
            cost: CostModel::new(0.95, 1.0, 1.05).expect("published cost model is valid"),
        })
    }

    /// Builds the scenario from a runtime archive: fit the named
    /// application's runtimes (Figure 1's pipeline), convert to hours, and
    /// pair with the supplied cost model (e.g. from
    /// `rsj_sim::cost_model_from_queue`).
    pub fn from_archive(
        archive: &TraceArchive,
        app: &str,
        cost: CostModel,
    ) -> Result<Self, String> {
        let report = fit_archive(archive)?
            .into_iter()
            .find(|r| r.app == app)
            .ok_or_else(|| format!("application {app} not found in archive"))?;
        let mu_hours = report.mu - SECS_PER_HOUR.ln();
        let dist = LogNormal::new(mu_hours, report.sigma).map_err(|e| e.to_string())?;
        Ok(Self { dist, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rsj_dist::ContinuousDistribution;

    #[test]
    fn paper_scenario_moments_in_hours() {
        let s = NeuroHpcScenario::paper();
        assert!(
            (s.dist.mean() - BASE_MEAN_HOURS).abs() < 1e-4,
            "mean {} vs {}",
            s.dist.mean(),
            BASE_MEAN_HOURS
        );
        assert!((s.dist.std_dev() - BASE_STD_HOURS).abs() < 1e-4);
        assert_eq!(s.cost.alpha, 0.95);
        assert_eq!(s.cost.beta, 1.0);
        assert_eq!(s.cost.gamma, 1.05);
    }

    #[test]
    fn scaled_moments_hit_targets() {
        for &(mf, sf) in &[(1.0, 1.0), (2.0, 5.0), (10.0, 10.0)] {
            let s = NeuroHpcScenario::with_scaled_moments(mf, sf).unwrap();
            assert!(
                (s.dist.mean() - BASE_MEAN_HOURS * mf).abs() < 1e-9,
                "mf={mf}"
            );
            assert!(
                (s.dist.std_dev() - BASE_STD_HOURS * sf).abs() < 1e-9,
                "sf={sf}"
            );
        }
        assert!(NeuroHpcScenario::with_scaled_moments(0.0, 1.0).is_err());
    }

    #[test]
    fn from_archive_round_trips_the_paper_scenario() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let archive = crate::synth::synthesize(&crate::synth::SynthConfig::vbmqa(5000), &mut rng);
        let cost = CostModel::new(0.95, 1.0, 1.05).unwrap();
        let s = NeuroHpcScenario::from_archive(&archive, "VBMQA", cost).unwrap();
        let reference = NeuroHpcScenario::paper();
        assert!(
            (s.dist.mean() - reference.dist.mean()).abs() / reference.dist.mean() < 0.05,
            "fitted mean {} vs paper {}",
            s.dist.mean(),
            reference.dist.mean()
        );
    }

    #[test]
    fn from_archive_missing_app_errors() {
        let archive = TraceArchive { records: vec![] };
        let cost = CostModel::new(0.95, 1.0, 1.05).unwrap();
        assert!(NeuroHpcScenario::from_archive(&archive, "VBMQA", cost).is_err());
    }
}
