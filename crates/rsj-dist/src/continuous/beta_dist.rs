//! Beta distribution `Beta(α, β)` on `[0, 1]` (Table 1 / Table 5 /
//! Theorem 12).

use crate::error::{check_param, Result};
use crate::special::beta::{beta_inc, beta_inc_unreg, inverse_beta_inc, ln_beta};
use crate::traits::{ContinuousDistribution, Support};

/// Beta distribution with shape parameters `α, β > 0`, support `[0, 1]`.
///
/// Paper instantiation: `α = 2.0`, `β = 2.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaDist {
    alpha: f64,
    beta: f64,
    /// Cached `ln B(α, β)`.
    ln_b: f64,
}

impl BetaDist {
    /// Creates a `Beta(α, β)` distribution.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        check_param("alpha", alpha, "must be > 0", alpha > 0.0)?;
        check_param("beta", beta, "must be > 0", beta > 0.0)?;
        Ok(Self {
            alpha,
            beta,
            ln_b: ln_beta(alpha, beta),
        })
    }

    /// First shape parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Second shape parameter `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl ContinuousDistribution for BetaDist {
    fn name(&self) -> String {
        format!("Beta(α={}, β={})", self.alpha, self.beta)
    }

    fn cache_key(&self) -> Option<String> {
        Some(self.name())
    }

    fn support(&self) -> Support {
        Support::Bounded {
            lower: 0.0,
            upper: 1.0,
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        if !(0.0..=1.0).contains(&t) {
            return 0.0;
        }
        if t == 0.0 || t == 1.0 {
            // Endpoint singularities for shape parameters below 1.
            let exponent = if t == 0.0 { self.alpha } else { self.beta };
            return match exponent.partial_cmp(&1.0).unwrap() {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => (-self.ln_b).exp(),
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        ((self.alpha - 1.0) * t.ln() + (self.beta - 1.0) * (1.0 - t).ln() - self.ln_b).exp()
    }

    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else if t >= 1.0 {
            1.0
        } else {
            beta_inc(self.alpha, self.beta, t)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p out of [0,1]: {p}");
        inverse_beta_inc(self.alpha, self.beta, p)
    }

    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    fn conditional_mean_above(&self, tau: f64) -> f64 {
        // Theorem 12:
        // E[X | X > τ] = [B(α+1, β) − B(τ; α+1, β)] / [B(α, β) − B(τ; α, β)].
        if tau <= 0.0 {
            return self.mean();
        }
        if tau >= 1.0 {
            return 1.0;
        }
        let num = beta_inc_unreg(self.alpha + 1.0, self.beta, 1.0)
            - beta_inc_unreg(self.alpha + 1.0, self.beta, tau);
        let den = self.ln_b.exp() - beta_inc_unreg(self.alpha, self.beta, tau);
        if den <= 0.0 {
            return 1.0;
        }
        (num / den).clamp(tau, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_instance() -> BetaDist {
        BetaDist::new(2.0, 2.0).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(BetaDist::new(0.0, 1.0).is_err());
        assert!(BetaDist::new(1.0, -2.0).is_err());
    }

    #[test]
    fn beta11_is_uniform() {
        let d = BetaDist::new(1.0, 1.0).unwrap();
        for &t in &[0.1, 0.5, 0.9] {
            assert!((d.cdf(t) - t).abs() < 1e-13, "t={t}");
            assert!((d.pdf(t) - 1.0).abs() < 1e-13, "t={t}");
        }
    }

    #[test]
    fn paper_instantiation_moments() {
        let d = paper_instance();
        assert_eq!(d.mean(), 0.5);
        assert!((d.variance() - 0.05).abs() < 1e-14);
    }

    #[test]
    fn cdf_quantile_inverse() {
        let d = paper_instance();
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let t = d.quantile(p);
            assert!((d.cdf(t) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn conditional_mean_matches_quadrature() {
        let d = paper_instance();
        for &tau in &[0.2, 0.5, 0.8] {
            let closed = d.conditional_mean_above(tau);
            let s = d.survival(tau);
            let numeric =
                tau + crate::quadrature::integrate(|t| d.survival(t), tau, 1.0, 1e-13).value / s;
            assert!(
                (closed - numeric).abs() < 1e-8,
                "tau={tau}: closed {closed}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn conditional_mean_edges() {
        let d = paper_instance();
        assert_eq!(d.conditional_mean_above(0.0), 0.5);
        assert_eq!(d.conditional_mean_above(1.0), 1.0);
        // Near the upper edge, it must stay within (τ, 1].
        let cm = d.conditional_mean_above(0.999);
        assert!(cm > 0.999 && cm <= 1.0, "cm {cm}");
    }

    #[test]
    fn cross_validate_against_statrs() {
        use statrs::distribution::{Continuous, ContinuousCDF};
        let ours = paper_instance();
        let theirs = statrs::distribution::Beta::new(2.0, 2.0).unwrap();
        for &t in &[0.1, 0.4, 0.7, 0.95] {
            assert!((ours.pdf(t) - theirs.pdf(t)).abs() < 1e-12, "pdf t={t}");
            assert!((ours.cdf(t) - theirs.cdf(t)).abs() < 1e-12, "cdf t={t}");
        }
    }
}
