//! End-to-end tracing tests: trace-id round trips on every response
//! path (success, typed errors, not-ready, overload sheds), per-request
//! timelines, the `trace` op and its filters, per-op request histograms,
//! and exemplar-to-timeline resolution.
//!
//! The process-global metrics registry is shared by every test in this
//! binary, so all tests serialize on [`registry_lock`].

use std::io::Write;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use reservation_strategies::Planner;
use rsj_core::SolverSpec;
use rsj_dist::{DiscretizationScheme, DistSpec};
use rsj_serve::{
    encode, AdmissionConfig, ChaosPolicy, Client, DurabilityConfig, ErrorKind, Request, Response,
    Server, ServerConfig,
};

/// A valid 128-bit trace id in the canonical 32-hex form.
const TRACE_ID: &str = "00000000000000000000000000c0ffee";

fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn spawn_server(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    rsj_serve::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// Signals shutdown and unblocks the accept loop with a throwaway
/// connection so `run()` returns.
fn stop_server(
    handle: rsj_serve::ShutdownHandle,
    addr: std::net::SocketAddr,
    join: std::thread::JoinHandle<std::io::Result<()>>,
) {
    handle.signal();
    let _ = std::net::TcpStream::connect(addr);
    join.join().expect("server thread").expect("clean exit");
}

/// A server that retains request timelines in a ring of `buffer`.
fn traced_config(buffer: usize) -> ServerConfig {
    ServerConfig {
        trace_buffer: buffer,
        ..ServerConfig::default()
    }
}

/// A cheap DP solver spec.
fn fast_dp() -> SolverSpec {
    SolverSpec::Dp {
        scheme: DiscretizationScheme::EqualProbability,
        n: 150,
        epsilon: 1e-6,
        monotone: true,
    }
}

/// A solver heavy enough that the `solve` stage dominates the request —
/// what the stage-coverage assertion needs.
fn heavy_dp() -> SolverSpec {
    SolverSpec::Dp {
        scheme: DiscretizationScheme::EqualProbability,
        n: 2000,
        epsilon: 1e-6,
        monotone: true,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rsj_tracing_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `{name}_count` sample from a Prometheus exposition, 0 if absent.
fn histogram_count(prometheus: &str, name: &str) -> u64 {
    prometheus
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name}_count ")))
        .map(|v| v.trim().parse().expect("count value"))
        .unwrap_or(0)
}

#[test]
fn plan_responses_echo_the_client_trace_id_or_mint_one() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(traced_config(8));
    let mut client = Client::connect(addr).expect("connect");

    // A client-supplied id comes back verbatim on success.
    let request = Request::plan_with(DistSpec::Exponential { lambda: 1.0 }, fast_dp())
        .with_trace_id(TRACE_ID);
    match client.call(&request).expect("plan") {
        Response::Plan { trace_id, .. } => assert_eq!(trace_id.as_deref(), Some(TRACE_ID)),
        other => panic!("expected a plan, got {other:?}"),
    }

    // Without one, a tracing server mints a 32-hex id and reports it so
    // the response can still be joined to the server-side timeline.
    let request = Request::plan_with(DistSpec::Exponential { lambda: 2.0 }, fast_dp());
    match client.call(&request).expect("plan") {
        Response::Plan { trace_id, .. } => {
            let id = trace_id.expect("server-minted trace id");
            assert_eq!(id.len(), 32, "{id}");
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "{id}");
        }
        other => panic!("expected a plan, got {other:?}"),
    }

    stop_server(handle, addr, join);
}

#[test]
fn error_responses_echo_the_client_trace_id_even_untraced() {
    let _guard = registry_lock();
    // Default config: no trace buffer, no slow threshold — the echo must
    // not depend on server-side tracing being on.
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    let request = Request::plan(DistSpec::Exponential { lambda: -1.0 }).with_trace_id(TRACE_ID);
    match client.call(&request).expect("error response") {
        Response::Error { kind, trace_id, .. } => {
            assert_eq!(kind, ErrorKind::InvalidDistribution);
            assert_eq!(trace_id.as_deref(), Some(TRACE_ID));
        }
        other => panic!("expected invalid_distribution, got {other:?}"),
    }

    stop_server(handle, addr, join);
}

#[test]
fn not_ready_sheds_echo_the_client_trace_id() {
    let _guard = registry_lock();
    let dir = temp_dir("notready");
    let (addr, handle, join) = spawn_server(ServerConfig {
        durability: Some(DurabilityConfig {
            recovery_delay: Some(Duration::from_millis(800)),
            ..DurabilityConfig::new(&dir)
        }),
        ..ServerConfig::default()
    });

    // Inside the recovery window a plan is typed-shed — with the id.
    let mut client = Client::connect(addr).expect("connect during recovery");
    let request = Request::plan(DistSpec::Exponential { lambda: 1.0 }).with_trace_id(TRACE_ID);
    match client.call(&request).expect("shed response") {
        Response::Error { kind, trace_id, .. } => {
            assert_eq!(kind, ErrorKind::NotReady);
            assert_eq!(trace_id.as_deref(), Some(TRACE_ID));
        }
        other => panic!("expected not_ready during recovery, got {other:?}"),
    }

    stop_server(handle, addr, join);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_echo_the_client_trace_id() {
    let _guard = registry_lock();
    // One worker held busy by a chaos-delayed request, a one-slot
    // admission queue filled by a second request: the third request is
    // shed on the reactor, and the shed reply must still carry its id.
    let (addr, handle, join) = spawn_server(ServerConfig {
        workers: 1,
        admission: AdmissionConfig {
            capacity: 1,
            high_watermark: 1,
            low_watermark: 0,
        },
        chaos: Some(ChaosPolicy {
            delay_every: 1,
            delay_ms: 2_000,
            ..ChaosPolicy::quiet(11)
        }),
        ..ServerConfig::default()
    });

    // Occupy the single worker: its dispatch sleeps in the chaos delay.
    let mut busy = std::net::TcpStream::connect(addr).expect("busy conn");
    let mut line = encode(&Request::ping()).expect("encode");
    line.push('\n');
    busy.write_all(line.as_bytes()).expect("write ping");
    busy.flush().expect("flush ping");
    std::thread::sleep(Duration::from_millis(400));

    // Fill the one queue slot with a real request (admission is
    // per-request now), then give the reactor time to park it.
    let mut filler = std::net::TcpStream::connect(addr).expect("filler conn");
    filler.write_all(line.as_bytes()).expect("write filler ping");
    filler.flush().expect("flush filler ping");
    std::thread::sleep(Duration::from_millis(200));

    let mut client = Client::connect(addr).expect("shed conn");
    let request = Request::plan(DistSpec::Exponential { lambda: 1.0 }).with_trace_id(TRACE_ID);
    match client.call(&request).expect("shed response") {
        Response::Error { kind, trace_id, .. } => {
            assert_eq!(kind, ErrorKind::Overloaded);
            assert_eq!(trace_id.as_deref(), Some(TRACE_ID));
        }
        other => panic!("expected overloaded, got {other:?}"),
    }

    drop(filler);
    drop(busy);
    stop_server(handle, addr, join);
}

#[test]
fn traced_plans_carry_a_timeline_that_explains_the_request() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(traced_config(8));
    let mut client = Client::connect(addr).expect("connect");

    let spec = DistSpec::LogNormal {
        mu: 3.0,
        sigma: 0.5,
    };
    let request = Request::plan_with(spec.clone(), heavy_dp())
        .with_trace_id(TRACE_ID)
        .with_trace();
    let started = Instant::now();
    let response = client.call(&request).expect("plan");
    let wall = started.elapsed();

    let Response::Plan {
        plan,
        trace_id,
        timeline,
        ..
    } = response
    else {
        panic!("expected a plan");
    };
    assert_eq!(trace_id.as_deref(), Some(TRACE_ID));
    let timeline = timeline.expect("trace: true returns the server-side timeline");
    assert_eq!(timeline.trace_id, TRACE_ID);
    assert_eq!(timeline.op, "plan");
    for stage in ["queue_wait", "decode", "build", "cache_lookup", "solve"] {
        assert!(
            timeline.stage_us(stage).is_some(),
            "missing stage {stage}: {timeline:?}"
        );
    }
    for stage in &timeline.stages {
        assert!(stage.start_us <= stage.end_us, "{stage:?}");
        assert!(
            stage.end_us <= timeline.total_us,
            "{stage:?} escapes the request"
        );
    }

    // The acceptance bar: stage durations explain the server-side wall
    // time (the stages are sequential, so their sum can only fall short
    // of the total by unattributed gaps).
    let sum = timeline.stage_sum_us();
    assert!(sum <= timeline.total_us, "{sum} > {}", timeline.total_us);
    assert!(
        sum * 10 >= timeline.total_us * 8,
        "stages explain under 80% of the request: {sum} of {} us",
        timeline.total_us
    );
    // And the server-side wall is bounded by the client-observed wall.
    assert!(timeline.total_us <= wall.as_micros() as u64);

    // Tracing must not perturb the solve: the served digest is
    // bit-identical to the offline facade's.
    let offline = Planner::builder()
        .distribution(spec)
        .solver(heavy_dp())
        .build()
        .expect("planner")
        .plan()
        .expect("offline plan");
    assert_eq!(plan.digest, offline.digest);

    stop_server(handle, addr, join);
}

#[test]
fn the_trace_op_serves_ring_timelines_with_filters() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(traced_config(16));
    let mut client = Client::connect(addr).expect("connect");

    let ids: Vec<String> = (0..3).map(|i| format!("{i:032x}")).collect();
    for (i, id) in ids.iter().enumerate() {
        let request = Request::plan_with(
            DistSpec::LogNormal {
                mu: 1.5 + 0.1 * i as f64,
                sigma: 0.6,
            },
            fast_dp(),
        )
        .with_trace_id(id.clone());
        client.call(&request).expect("plan");
    }

    // Requests on one connection are sequential past the ring push, so
    // all three timelines are already retained.
    let all = client.trace(None, None, None).expect("trace op");
    for id in &ids {
        assert!(
            all.iter().any(|r| &r.trace_id == id),
            "missing {id} in {all:?}"
        );
    }

    // Exact-id filter: one record, and the ring's copy (unlike the
    // response-embedded snapshot) includes the write span.
    let one = client.trace(None, None, Some(&ids[1])).expect("trace op");
    assert_eq!(one.len(), 1, "{one:?}");
    assert_eq!(one[0].trace_id, ids[1]);
    assert_eq!(one[0].op, "plan");
    assert!(
        one[0].stage_us("write").is_some(),
        "ring copy lacks the write span: {:?}",
        one[0]
    );

    // A threshold far above any request filters everything out; `last`
    // bounds the answer.
    assert!(client
        .trace(None, Some(1e9), None)
        .expect("trace op")
        .is_empty());
    assert_eq!(
        client.trace(Some(1), None, None).expect("trace op").len(),
        1
    );

    stop_server(handle, addr, join);
}

#[test]
fn the_trace_op_without_a_buffer_is_a_typed_error() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    match client
        .call(&Request::trace_query(None, None, None))
        .expect("response")
    {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::TracingDisabled),
        other => panic!("expected tracing_disabled, got {other:?}"),
    }
    let err = client
        .trace(None, None, None)
        .expect_err("typed client error");
    assert!(err.to_string().contains("tracing_disabled"), "{err}");

    // But a request that asks for its own timeline still gets one — the
    // per-request path does not depend on the retention ring.
    let request = Request::plan_with(DistSpec::Exponential { lambda: 1.0 }, fast_dp()).with_trace();
    match client.call(&request).expect("plan") {
        Response::Plan {
            trace_id, timeline, ..
        } => {
            assert!(trace_id.is_some());
            let timeline = timeline.expect("per-request timeline");
            assert!(timeline.stage_us("solve").is_some(), "{timeline:?}");
        }
        other => panic!("expected a plan, got {other:?}"),
    }

    stop_server(handle, addr, join);
}

#[test]
fn request_histograms_split_by_op_and_keep_the_aggregate() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(traced_config(8));
    let mut client = Client::connect(addr).expect("connect");

    // A request observes itself after building its response, so this
    // exposition excludes the metrics request that produced it.
    let before = client.metrics().expect("metrics");
    let plan_before = histogram_count(&before, "rsj_serve_request_seconds_plan");
    let metrics_before = histogram_count(&before, "rsj_serve_request_seconds_metrics");
    let aggregate_before = histogram_count(&before, "rsj_serve_request_seconds");

    for lambda in [0.5, 0.9] {
        client
            .call(&Request::plan_with(
                DistSpec::Exponential { lambda },
                fast_dp(),
            ))
            .expect("plan");
    }

    let after = client.metrics().expect("metrics");
    assert!(after.contains("# TYPE rsj_serve_request_seconds_plan summary"));
    assert_eq!(
        histogram_count(&after, "rsj_serve_request_seconds_plan"),
        plan_before + 2,
        "the per-op split must count exactly the plan requests"
    );
    assert_eq!(
        histogram_count(&after, "rsj_serve_request_seconds_metrics"),
        metrics_before + 1,
        "the first metrics request lands in its own op bucket"
    );
    assert_eq!(
        histogram_count(&after, "rsj_serve_request_seconds"),
        aggregate_before + 3,
        "the aggregate histogram keeps counting every request"
    );

    stop_server(handle, addr, join);
}

#[test]
fn exemplars_resolve_to_fetchable_timelines() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(traced_config(8));
    let mut client = Client::connect(addr).expect("connect");

    let id = "feedfacecafebeef0123456789abcdef";
    client
        .call(
            &Request::plan_with(DistSpec::Exponential { lambda: 0.7 }, fast_dp()).with_trace_id(id),
        )
        .expect("plan");

    // The plan histogram's exemplar comment names our trace id (the most
    // recent traced sample in its bucket).
    let metrics = client.metrics().expect("metrics");
    let quoted = format!("trace_id=\"{id}\"");
    let line = metrics
        .lines()
        .find(|l| {
            l.starts_with("# exemplar rsj_serve_request_seconds_plan{") && l.contains(&quoted)
        })
        .unwrap_or_else(|| panic!("no exemplar for {id} in:\n{metrics}"));
    assert!(line.contains("le=\""), "{line}");

    // The id lifted from the exposition resolves to a full timeline via
    // the trace op — the metrics-to-trace join the exemplar exists for.
    let resolved = client.trace(None, None, Some(id)).expect("trace op");
    assert_eq!(resolved.len(), 1, "{resolved:?}");
    assert_eq!(resolved[0].trace_id, id);
    assert_eq!(resolved[0].op, "plan");
    assert!(resolved[0].stage_us("solve").is_some(), "{:?}", resolved[0]);

    stop_server(handle, addr, join);
}
