//! Gamma distribution `Gamma(α, β)` with shape `α` and *rate* `β`
//! (Table 1 / Table 5 / Theorem 7).

use crate::error::{check_param, Result};
use crate::special::gamma::{gamma_p, gamma_q, inverse_gamma_p, ln_gamma, upper_incomplete_gamma};
use crate::traits::{ContinuousDistribution, Support};

/// Gamma distribution with shape `α > 0` and rate `β > 0`, support `[0, ∞)`.
///
/// Paper instantiation: `α = 2.0`, `β = 2.0` (mean 1, variance 1/2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaDist {
    shape: f64,
    rate: f64,
}

impl GammaDist {
    /// Creates a `Gamma(α, β)` distribution (shape/rate convention, matching
    /// the paper's pdf `β^α/Γ(α) · t^{α-1} e^{-βt}`).
    pub fn new(shape: f64, rate: f64) -> Result<Self> {
        check_param("alpha", shape, "must be > 0", shape > 0.0)?;
        check_param("beta", rate, "must be > 0", rate > 0.0)?;
        Ok(Self { shape, rate })
    }

    /// Shape parameter `α`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Rate parameter `β`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDistribution for GammaDist {
    fn name(&self) -> String {
        format!("Gamma(α={}, β={})", self.shape, self.rate)
    }

    fn cache_key(&self) -> Option<String> {
        Some(self.name())
    }

    fn support(&self) -> Support {
        Support::Unbounded { lower: 0.0 }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        if t == 0.0 {
            return match self.shape.partial_cmp(&1.0).unwrap() {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => self.rate,
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        // exp(α ln β + (α-1) ln t - βt - ln Γ(α)) avoids overflow for large α.
        (self.shape * self.rate.ln() + (self.shape - 1.0) * t.ln()
            - self.rate * t
            - ln_gamma(self.shape))
        .exp()
    }

    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, self.rate * t)
        }
    }

    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            gamma_q(self.shape, self.rate * t)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p out of [0,1]: {p}");
        inverse_gamma_p(self.shape, p) / self.rate
    }

    fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }

    fn conditional_mean_above(&self, tau: f64) -> f64 {
        // Theorem 7 / Eq. 21: E[X | X > τ] = α/β + (τβ)^α e^{-τβ} / (Γ(α, τβ) β).
        if tau <= 0.0 {
            return self.mean();
        }
        let z = tau * self.rate;
        let upper = upper_incomplete_gamma(self.shape, z);
        if upper <= 0.0 {
            // Deep tail: conditioning mass underflowed; fall back to τ + 1/β
            // (the gamma hazard approaches the exponential rate β).
            return tau + 1.0 / self.rate;
        }
        self.shape / self.rate + (self.shape * z.ln() - z).exp() / (upper * self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(GammaDist::new(0.0, 1.0).is_err());
        assert!(GammaDist::new(2.0, 0.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let g = GammaDist::new(1.0, 3.0).unwrap();
        let e = crate::continuous::Exponential::new(3.0).unwrap();
        for &t in &[0.01, 0.3, 1.0, 5.0] {
            assert!((g.cdf(t) - e.cdf(t)).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn paper_instantiation_moments() {
        let g = GammaDist::new(2.0, 2.0).unwrap();
        assert!((g.mean() - 1.0).abs() < 1e-14);
        assert!((g.variance() - 0.5).abs() < 1e-14);
    }

    #[test]
    fn cdf_quantile_inverse() {
        let g = GammaDist::new(2.0, 2.0).unwrap();
        for &p in &[0.0, 0.05, 0.4, 0.8, 0.99, 1.0 - 1e-8] {
            let t = g.quantile(p);
            assert!((g.cdf(t) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn gamma22_closed_form_cdf() {
        // Gamma(2, 2): F(t) = 1 - (1 + 2t) e^{-2t}.
        let g = GammaDist::new(2.0, 2.0).unwrap();
        for &t in &[0.2f64, 0.5, 1.0, 3.0] {
            let expected = 1.0 - (1.0 + 2.0 * t) * (-2.0 * t).exp();
            assert!((g.cdf(t) - expected).abs() < 1e-13, "t={t}");
        }
    }

    #[test]
    fn conditional_mean_matches_quadrature() {
        let g = GammaDist::new(2.0, 2.0).unwrap();
        for &tau in &[0.3, 1.0, 2.5] {
            let closed = g.conditional_mean_above(tau);
            let s = g.survival(tau);
            let numeric =
                tau + crate::quadrature::integrate_to_inf(|t| g.survival(t), tau, 1e-13).value / s;
            assert!(
                (closed - numeric).abs() / numeric < 1e-8,
                "tau={tau}: closed {closed}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = GammaDist::new(2.0, 2.0).unwrap();
        let q = crate::quadrature::integrate_to_inf(|t| g.pdf(t), 0.0, 1e-12);
        assert!((q.value - 1.0).abs() < 1e-7, "mass {}", q.value);
    }

    #[test]
    fn cross_validate_against_statrs() {
        use statrs::distribution::{Continuous, ContinuousCDF};
        let ours = GammaDist::new(2.0, 2.0).unwrap();
        let theirs = statrs::distribution::Gamma::new(2.0, 2.0).unwrap();
        for &t in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!((ours.pdf(t) - theirs.pdf(t)).abs() < 1e-12, "pdf t={t}");
            assert!((ours.cdf(t) - theirs.cdf(t)).abs() < 1e-12, "cdf t={t}");
        }
    }
}
