//! From-scratch special-function library (system S1 of DESIGN.md).
//!
//! Everything the nine distributions of the paper need: the gamma-function
//! family (Lanczos `ln Γ`, regularized incomplete gamma and its inverse), the
//! beta-function family (regularized incomplete beta and its inverse), the
//! error-function family and the standard-normal CDF/quantile.
//!
//! No third-party math crate is used here; `statrs` appears only in unit
//! tests as a cross-validation oracle.

pub mod beta;
pub mod erf;
pub mod gamma;
pub mod normal;

pub use beta::{beta, beta_inc, beta_inc_unreg, inverse_beta_inc, ln_beta};
pub use erf::{erf, erf_inv, erf_slice, erfc, erfc_inv, erfc_slice};
pub use gamma::{
    gamma, gamma_p, gamma_q, inverse_gamma_p, inverse_gamma_q, ln_gamma, ln_gamma_slice,
    upper_incomplete_gamma,
};
pub use normal::{norm_cdf, norm_pdf, norm_quantile, norm_sf};
