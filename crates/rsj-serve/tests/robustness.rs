//! Overload-behavior tests: admission shedding, deadlines, single-flight
//! coalescing, idempotent shutdown, typed client errors, and the
//! resilient client.
//!
//! Like `serve_integration.rs`, tests asserting on the process-global
//! metrics registry serialize on [`registry_lock`].

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::{Arc, Barrier, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use reservation_strategies::plan_digest;
use rsj_core::{DiscretizedDp, SolverSpec, Strategy};
use rsj_dist::{DiscretizationScheme, DistSpec};
use rsj_serve::{
    encode, AdmissionConfig, BreakerConfig, ChaosPolicy, Client, ClientError, ErrorKind, Request,
    ResilientClient, Response, RetryPolicy, Server, ServerConfig,
};

fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn spawn_server(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    rsj_serve::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn counter_value(prometheus: &str, name: &str) -> u64 {
    prometheus
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .map(|v| v.trim().parse().expect("counter value"))
        .unwrap_or(0)
}

/// A brute-force Monte-Carlo request slow enough (~2s in debug builds) to
/// hold a worker while the test probes the server's behavior under load.
fn slow_plan() -> Request {
    Request::plan_with(
        DistSpec::LogNormal {
            mu: 3.0,
            sigma: 0.5,
        },
        SolverSpec::BruteForce {
            grid: 2000,
            samples: 20_000,
            analytic: false,
            seed: 11,
        },
    )
}

fn error_kind(response: &Response) -> Option<ErrorKind> {
    match response {
        Response::Error { kind, .. } => Some(*kind),
        _ => None,
    }
}

#[test]
fn overload_sheds_with_typed_errors_and_counters() {
    let _guard = registry_lock();
    // One worker, an admission queue that sheds as soon as one connection
    // is parked behind the in-flight one, and a chaos schedule that makes
    // every dispatched request sleep in the worker — a deterministic way
    // to hold the pool busy that doesn't depend on solver speed or the
    // build profile.
    let (addr, handle, join) = spawn_server(ServerConfig {
        workers: 1,
        admission: AdmissionConfig {
            capacity: 1,
            high_watermark: 1,
            low_watermark: 0,
        },
        chaos: Some(ChaosPolicy {
            delay_every: 1,
            delay_ms: 1200,
            ..ChaosPolicy::quiet(0)
        }),
        ..ServerConfig::default()
    });

    // Occupy the only worker.
    let busy = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.ping().expect("busy ping answered after the delay")
    });
    std::thread::sleep(Duration::from_millis(300));

    // This request fills the queue's single slot (admission is
    // per-request: only a complete decoded line occupies capacity, so
    // the filler must actually send one)...
    let parked = std::net::TcpStream::connect(addr).expect("connect parked");
    (&parked)
        .write_all(b"{\"op\":\"ping\"}\n")
        .expect("park request");
    std::thread::sleep(Duration::from_millis(100));

    // ...so further requests are fast-rejected with a typed line
    // straight from the reactor (no worker, hence no delay).
    let mut shed_seen = 0;
    for i in 0..3 {
        let mut client = Client::connect(addr).expect("connect shed");
        match client.call(&Request::ping()) {
            Ok(response) => {
                assert_eq!(
                    error_kind(&response),
                    Some(ErrorKind::Overloaded),
                    "burst connection {i}: {response:?}"
                );
                shed_seen += 1;
            }
            Err(e) => panic!("shed must be a typed response, not a transport error: {e}"),
        }
    }
    assert!(shed_seen >= 1, "at least one connection must be shed");

    // The busy client is answered once its delay elapses, and the parked
    // request is served once the worker frees.
    busy.join().expect("busy client");
    let mut line = String::new();
    BufReader::new(&parked)
        .read_line(&mut line)
        .expect("parked request served after drain");
    assert!(line.contains("\"pong\""), "parked request answered: {line}");

    let mut metrics_client = Client::connect(addr).expect("connect metrics");
    let metrics = metrics_client.metrics().expect("metrics");
    assert!(
        counter_value(&metrics, "rsj_serve_shed_total") >= shed_seen,
        "shed counter must record the fast-rejects:\n{metrics}"
    );

    handle.signal();
    drop(parked);
    join.join().expect("server thread").expect("clean exit");
}

#[test]
fn deadlines_shed_at_dequeue_and_cancel_mid_solve() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // An already-expired deadline is shed before the solver runs.
    let response = client.call(&slow_plan().with_deadline_ms(0)).expect("call");
    assert_eq!(error_kind(&response), Some(ErrorKind::DeadlineExceeded));

    // A deadline that fires mid-solve cancels the solver cooperatively:
    // the typed answer arrives in deadline time, not solve time.
    let started = Instant::now();
    let response = client
        .call(&slow_plan().with_deadline_ms(150))
        .expect("call");
    assert_eq!(
        error_kind(&response),
        Some(ErrorKind::DeadlineExceeded),
        "{response:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "cancellation must interrupt the solve, took {:?}",
        started.elapsed()
    );

    // A generous deadline changes nothing about the result: bit-identical
    // to the offline solver.
    let fast = Request::plan_with(
        DistSpec::LogNormal {
            mu: 3.0,
            sigma: 0.5,
        },
        SolverSpec::Dp {
            scheme: DiscretizationScheme::EqualProbability,
            n: 150,
            epsilon: 1e-6,
            monotone: true,
        },
    );
    let response = client
        .call(&fast.clone().with_deadline_ms(60_000))
        .expect("call");
    let plan = match response {
        Response::Plan { plan, .. } => plan,
        other => panic!("expected plan, got {other:?}"),
    };
    let offline = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 150, 1e-6)
        .unwrap()
        .sequence(
            DistSpec::LogNormal {
                mu: 3.0,
                sigma: 0.5,
            }
            .build()
            .unwrap()
            .as_ref(),
            &rsj_core::CostModel::reservation_only(),
        )
        .unwrap();
    assert_eq!(plan.digest, plan_digest(offline.times().iter().copied()));

    let metrics = client.metrics().expect("metrics");
    assert!(
        counter_value(&metrics, "rsj_serve_deadline_exceeded_total") >= 2,
        "{metrics}"
    );

    handle.signal();
    drop(client);
    join.join().expect("server thread").expect("clean exit");
}

#[test]
fn concurrent_identical_misses_coalesce_onto_one_solve() {
    let _guard = registry_lock();
    const CLIENTS: usize = 6;
    let (addr, handle, join) = spawn_server(ServerConfig {
        workers: CLIENTS,
        ..ServerConfig::default()
    });

    let mut probe = Client::connect(addr).expect("connect");
    let before = probe.metrics().expect("metrics");
    let solves_before = counter_value(&before, "rsj_serve_solver_invocations_total");
    let coalesced_before = counter_value(&before, "rsj_serve_singleflight_coalesced_total");
    let hits_before = counter_value(&before, "rsj_serve_cache_hits_total");

    // A parameterization unique to this test (so the cache starts cold),
    // slow enough that a barrier-released burst lands inside one flight.
    let request = Request::plan_with(
        DistSpec::LogNormal {
            mu: 2.53,
            sigma: 0.41,
        },
        SolverSpec::Dp {
            scheme: DiscretizationScheme::EqualProbability,
            n: 900,
            epsilon: 1e-7,
            monotone: true,
        },
    );
    let start = Arc::new(Barrier::new(CLIENTS));
    let burst: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let request = request.clone();
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                start.wait();
                match client
                    .call(&request)
                    .unwrap_or_else(|e| panic!("client {i}: {e}"))
                {
                    Response::Plan {
                        plan, provenance, ..
                    } => (plan.digest, provenance.cached, provenance.coalesced),
                    other => panic!("client {i}: expected plan, got {other:?}"),
                }
            })
        })
        .collect();
    let results: Vec<_> = burst.into_iter().map(|h| h.join().unwrap()).collect();

    // Everyone got the same bits, exactly one solver run happened, and
    // the other five were coalesced followers or late cache hits.
    let digest = &results[0].0;
    assert!(results.iter().all(|(d, _, _)| d == digest));
    let after = probe.metrics().expect("metrics");
    assert_eq!(
        counter_value(&after, "rsj_serve_solver_invocations_total"),
        solves_before + 1,
        "identical concurrent misses must share one solver invocation"
    );
    let coalesced =
        counter_value(&after, "rsj_serve_singleflight_coalesced_total") - coalesced_before;
    let hits = counter_value(&after, "rsj_serve_cache_hits_total") - hits_before;
    assert_eq!(
        coalesced + hits,
        (CLIENTS - 1) as u64,
        "every non-leader must be coalesced or cache-served:\n{after}"
    );
    assert_eq!(
        results
            .iter()
            .filter(|(_, cached, coalesced)| !cached && !coalesced)
            .count(),
        1,
        "exactly one response is the computed leader: {results:?}"
    );

    handle.signal();
    drop(probe);
    join.join().expect("server thread").expect("clean exit");
}

#[test]
fn shutdown_is_idempotent_and_safe_under_concurrency() {
    let _guard = registry_lock();
    const CLIENTS: usize = 4;
    let (addr, handle, join) = spawn_server(ServerConfig {
        workers: CLIENTS,
        ..ServerConfig::default()
    });

    // Connect everyone first and ping so each connection is owned by a
    // worker (a connect alone may still sit in the accept backlog, where
    // a racing shutdown would reset it), then race shutdown ops.
    let clients: Vec<Client> = (0..CLIENTS)
        .map(|_| {
            let mut client = Client::connect(addr).expect("connect");
            client.ping().expect("ping");
            client
        })
        .collect();
    let start = Arc::new(Barrier::new(CLIENTS));
    let racers: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                client.shutdown()
            })
        })
        .collect();
    // Every racer must resolve cleanly: a served `shutting_down`, or the
    // connection closing under it because another racer's shutdown won
    // the race and the drain reaped this connection first. Anything else
    // (protocol garbage, a hang, an unexpected error) is a bug.
    let mut served = 0;
    for (i, racer) in racers.into_iter().enumerate() {
        match racer.join().expect("racer thread") {
            Ok(()) => served += 1,
            Err(ClientError::ConnectionClosed) => {}
            Err(ClientError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ) => {}
            Err(e) => panic!("shutdown racer {i}: {e}"),
        }
    }
    assert!(served >= 1, "someone must have triggered the shutdown");

    // Racing handle signals are no-ops too.
    handle.signal();
    handle.signal();
    assert!(handle.is_signaled());

    join.join().expect("server thread").expect("clean exit");
}

#[test]
fn client_reports_torn_and_oversized_responses_as_typed_errors() {
    // A scripted "server" that misbehaves per connection: close without a
    // byte, tear a response line, then send an endless unterminated one.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().unwrap();
    let stub = std::thread::spawn(move || {
        // 1: read the request, then close without replying. (Reading
        // first matters: closing with unread data in the socket buffer
        // sends RST, and the client would see ConnectionReset instead of
        // a clean EOF.)
        let (stream, _) = listener.accept().expect("accept");
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .expect("read request");
        // 2: reply with half a line, then close.
        let (mut stream, _) = listener.accept().expect("accept");
        let mut line = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut line)
            .expect("read request");
        stream.write_all(b"{\"status\":\"po").expect("torn write");
        drop(stream);
        // 3: reply with a huge line that never fits the client's cap.
        let (mut stream, _) = listener.accept().expect("accept");
        let mut line = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut line)
            .expect("read request");
        let huge = vec![b'x'; 1 << 16];
        stream.write_all(&huge).expect("huge write");
        stream.write_all(b"\n").expect("newline");
        drop(stream);
    });

    let mut client = Client::connect(addr).expect("connect 1");
    match client.call(&Request::ping()) {
        Err(ClientError::ConnectionClosed) => {}
        other => panic!("expected ConnectionClosed, got {other:?}"),
    }

    let mut client = Client::connect(addr).expect("connect 2");
    match client.call(&Request::ping()) {
        Err(ClientError::UnexpectedEof { received }) => {
            assert!(received > 0, "the torn bytes must be reported")
        }
        other => panic!("expected UnexpectedEof, got {other:?}"),
    }

    let mut client = Client::connect(addr).expect("connect 3");
    client.set_max_response_bytes(1024);
    match client.call(&Request::ping()) {
        Err(ClientError::ResponseTooLarge { limit }) => assert_eq!(limit, 1024),
        other => panic!("expected ResponseTooLarge, got {other:?}"),
    }

    stub.join().expect("stub thread");
}

#[test]
fn resilient_client_retries_transient_failures_to_success() {
    // A scripted server: two connections answer a typed `overloaded`
    // line, the third answers the request properly.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().unwrap();
    let stub = std::thread::spawn(move || {
        for round in 0..3 {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut line = String::new();
            BufReader::new(stream.try_clone().unwrap())
                .read_line(&mut line)
                .expect("read request");
            let reply = if round < 2 {
                encode(&Response::error(ErrorKind::Overloaded, "try later")).unwrap()
            } else {
                encode(&Response::Pong {
                    v: rsj_serve::PROTOCOL_VERSION,
                })
                .unwrap()
            };
            stream.write_all(reply.as_bytes()).expect("write");
            stream.write_all(b"\n").expect("newline");
            drop(stream);
        }
    });

    let policy = RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        jitter_seed: 3,
        retry_budget: 16,
    };
    let mut client = ResilientClient::new(addr.to_string(), policy, BreakerConfig::default());
    let response = client.call(&Request::ping()).expect("retried to success");
    assert!(matches!(response, Response::Pong { .. }), "{response:?}");
    assert_eq!(client.retries_spent(), 2, "two overloaded rounds retried");
    stub.join().expect("stub thread");
}

#[test]
fn resilient_client_opens_the_breaker_on_persistent_failure() {
    // Bind then drop: the port refuses connections for the whole test.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().unwrap()
    };
    let policy = RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        jitter_seed: 0,
        retry_budget: 32,
    };
    let breaker = BreakerConfig {
        failure_threshold: 3,
        cooldown: Duration::from_secs(60),
        half_open_probes: 1,
    };
    let mut client = ResilientClient::new(addr.to_string(), policy, breaker);
    match client.call(&Request::ping()) {
        Err(ClientError::CircuitOpen) => {}
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    // Fail-fast while open: no further connection attempts are made.
    let started = Instant::now();
    match client.call(&Request::ping()) {
        Err(ClientError::CircuitOpen) => {}
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_millis(50));
}
