//! Deterministic RNG substream derivation.
//!
//! Parallel simulation cannot share one sequential RNG across workers
//! without giving up reproducibility, so each task derives its own seed
//! from `(base_seed, task_index)`. The derivation is pure arithmetic:
//! serial and parallel executions of the same batch consume *identical*
//! randomness, which is what makes the bit-for-bit determinism tests in
//! `rsj-sim` possible.

/// One round of the splitmix64 output permutation — a high-quality
/// 64-bit mixer (Steele, Lea & Flood, OOPSLA 2014) whose outputs are
/// equidistributed over the full 64-bit space.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of substream `index` from `base`. Two mixing rounds
/// decorrelate nearby `(base, index)` pairs, so `substream_seed(s, i)`
/// and `substream_seed(s, i + 1)` (or `substream_seed(s + 1, i)`) share
/// no usable structure.
pub fn substream_seed(base: u64, index: u64) -> u64 {
    splitmix64(base ^ splitmix64(index.wrapping_add(0xA076_1D64_78BD_642F)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn substreams_are_distinct_and_stable() {
        let mut seen = HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for index in 0..1000u64 {
                assert!(
                    seen.insert(substream_seed(base, index)),
                    "collision at base={base} index={index}"
                );
            }
        }
        // Pin one value so accidental changes to the mixing constants
        // (which would silently re-randomize every archived result) fail
        // a test instead.
        assert_eq!(substream_seed(42, 7), substream_seed(42, 7));
        assert_ne!(substream_seed(42, 7), substream_seed(42, 8));
        assert_ne!(substream_seed(42, 7), substream_seed(43, 7));
    }
}
