//! Runs every experiment of the reproduction in sequence — the one-shot
//! "regenerate the paper" entry point. Honours `RSJ_FIDELITY` and
//! `RSJ_RESULTS_DIR` like the individual binaries.

use rsj_bench::scenarios::Fidelity;
use rsj_bench::{experiments, DEFAULT_SEED};

fn main() -> std::io::Result<()> {
    let fidelity = Fidelity::from_env();
    eprintln!("running the full experiment suite at {fidelity:?} fidelity\n");

    let t0 = std::time::Instant::now();
    let step = |name: &str| {
        eprintln!("── {name} ({:.1?} elapsed) ──", t0.elapsed());
    };

    step("Table 2");
    experiments::table2::emit(fidelity, DEFAULT_SEED)?;
    step("Table 3");
    experiments::table3::emit(fidelity, DEFAULT_SEED)?;
    step("Table 4");
    experiments::table4::emit(fidelity, DEFAULT_SEED)?;
    step("Figure 1");
    experiments::fig1::emit(fidelity, DEFAULT_SEED)?;
    step("Figure 2");
    experiments::fig2::emit(fidelity, DEFAULT_SEED)?;
    step("Figure 3");
    experiments::fig3::emit(fidelity, DEFAULT_SEED)?;
    step("Figure 4");
    experiments::fig4::emit(fidelity, DEFAULT_SEED)?;
    step("§3.5 exponential optimum");
    experiments::exp_s1::emit()?;
    step("Figure 4 (simulated-queue cost model)");
    experiments::fig4_simqueue::emit(fidelity, DEFAULT_SEED)?;
    step("Ablation: checkpointing");
    experiments::ablation_checkpoint::emit(fidelity)?;
    step("Ablation: fit-then-plan fragility");
    experiments::ablation_misfit::emit(fidelity, DEFAULT_SEED)?;
    step("Ablation: fault injection");
    experiments::ablation_faults::emit(fidelity, DEFAULT_SEED)?;
    step("Ablation: online adaptive replanning");
    experiments::ablation_adaptive::emit(fidelity, DEFAULT_SEED)?;

    eprintln!(
        "\nall experiments done in {:.1?}; outputs in {}",
        t0.elapsed(),
        rsj_bench::report::results_dir().display()
    );
    Ok(())
}
