//! # rsj-serve
//!
//! A multi-client planning service for *Reservation Strategies for
//! Stochastic Jobs* (system S22 of DESIGN.md): a long-running TCP server
//! that computes reservation plans on demand, behind the stable
//! [`Planner`](reservation_strategies::Planner) facade.
//!
//! * **Protocol** ([`protocol`]) — versioned, line-delimited JSON: one
//!   request object per line (`op`: `plan` / `metrics` / `ping` /
//!   `shutdown`), one response object per line. Plan requests are exactly
//!   a `Planner` configuration on the wire (`DistSpec` + `CostModel` +
//!   `SolverSpec` + optional simulate), and plan responses embed the
//!   facade's [`Plan`](reservation_strategies::Plan) verbatim, FNV-1a
//!   sequence digest included — so served plans diff bit-for-bit against
//!   offline artifacts.
//! * **Server** ([`server`]) — a fixed accept loop feeding a bounded
//!   worker pool through an admission-controlled queue ([`admission`]:
//!   watermark-hysteresis load shedding with typed `overloaded`
//!   fast-rejects), per-request deadlines enforced at dequeue and
//!   propagated into the solvers as cooperative cancellation,
//!   single-flight coalescing of identical concurrent solves
//!   ([`singleflight`]), a sharded exact-LRU plan cache ([`cache`]) keyed
//!   on the planner's faithful cache key, per-connection request limits
//!   and read timeouts, panic-tolerant workers, graceful idempotent
//!   shutdown that drains in-flight requests, and full `rsj-obs`
//!   instrumentation (request/error/shed/coalesce counters, latency and
//!   queue-wait histograms, Prometheus exposition via the `metrics` op).
//! * **Client** ([`client`]) — a small blocking client used by
//!   `rsj request` and the integration tests, with typed errors for torn
//!   and oversized responses; [`retry`] wraps it into a
//!   [`ResilientClient`] with seeded-jitter backoff, retry budgets and a
//!   circuit breaker.
//! * **Chaos** ([`chaos`]) — a seed-reproducible fault-injection policy
//!   and TCP proxy for hardening tests and the `serve_load` bench, plus a
//!   seeded journal-[`CorruptionPolicy`] for recovery testing.
//! * **Durability** ([`journal`] / [`snapshot`] / [`recovery`]) — a
//!   CRC32-framed append-only plan journal with periodic atomically-renamed
//!   snapshot compactions, and a startup recovery path that warm-fills the
//!   cache, skipping torn or bit-flipped records with typed faults and
//!   re-verifying every recovered plan's FNV-1a digest. `health`/`ready`
//!   protocol ops expose the recovery posture; `plan` requests are shed
//!   with a typed `not_ready` until recovery completes.
//!
//! ```no_run
//! use rsj_serve::{Client, Request, Server, ServerConfig};
//! use rsj_dist::DistSpec;
//!
//! let server = Server::bind(ServerConfig::default())?;
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let response = client.call(&Request::plan(DistSpec::Exponential { lambda: 1.0 }))?;
//! # let _ = response;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod journal;
pub mod protocol;
pub mod recovery;
pub mod retry;
pub mod server;
pub mod singleflight;
pub mod snapshot;

pub use admission::{AdmissionConfig, AdmissionQueue};
pub use cache::PlanCache;
pub use chaos::{ChaosPolicy, ChaosProxy, Corruption, CorruptionPolicy, ProxyHandle};
pub use client::{Client, ClientError};
pub use journal::{JournalRecord, JournalWriter, RecordFault, RecordScanner};
pub use protocol::{
    classify, decode_request, encode, sanitize_trace_id, ErrorKind, HealthInfo, Provenance,
    Request, Response, Timings, PROTOCOL_VERSION,
};
pub use recovery::{recover, RecoveryStats};
pub use retry::{
    BreakerConfig, BreakerState, CircuitBreaker, ResilientClient, RetryClass, RetryPolicy,
};
pub use server::{DurabilityConfig, Server, ServerConfig, ShutdownHandle};
pub use singleflight::{Flighted, SingleFlight};
pub use snapshot::{SnapshotFile, SnapshotStore};
