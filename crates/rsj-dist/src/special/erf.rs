//! Error function family, built on the incomplete gamma functions:
//! `erf(x) = sgn(x) · P(1/2, x²)` and `erfc(x) = Q(1/2, x²)` for `x ≥ 0`.

use super::gamma::{gamma_p, gamma_q};
use super::normal::norm_quantile;

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^{-t²} dt`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`, computed without
/// cancellation in the upper tail.
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Evaluates [`erf`] over a grid, slice-in/slice-out. Bit-identical to the
/// per-point calls; exists so grid pipelines (discretization tables, batch
/// CDF evaluation) can sweep a whole grid in one tight loop.
///
/// # Panics
/// Panics if `xs` and `out` differ in length.
pub fn erf_slice(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "erf_slice: length mismatch");
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = erf(x);
    }
}

/// Evaluates [`erfc`] over a grid, slice-in/slice-out — the tail-safe
/// companion to [`erf_slice`].
///
/// # Panics
/// Panics if `xs` and `out` differ in length.
pub fn erfc_slice(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "erfc_slice: length mismatch");
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = erfc(x);
    }
}

/// Inverse error function: returns `x` with `erf(x) = z` for `z ∈ (-1, 1)`.
///
/// Uses the identity `erf⁻¹(z) = Φ⁻¹((z+1)/2) / √2`.
pub fn erf_inv(z: f64) -> f64 {
    assert!(
        (-1.0..=1.0).contains(&z),
        "erf_inv: argument must be in [-1, 1], got {z}"
    );
    if z == 1.0 {
        return f64::INFINITY;
    }
    if z == -1.0 {
        return f64::NEG_INFINITY;
    }
    norm_quantile((z + 1.0) / 2.0) / std::f64::consts::SQRT_2
}

/// Inverse complementary error function: `x` with `erfc(x) = q`.
pub fn erfc_inv(q: f64) -> f64 {
    assert!(
        (0.0..=2.0).contains(&q),
        "erfc_inv: argument must be in [0, 2], got {q}"
    );
    erf_inv(1.0 - q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64, msg: &str) {
        assert!(
            (a - b).abs() < tol * b.abs().max(1.0),
            "{msg}: got {a}, expected {b}"
        );
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-13, "erf(1)");
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-13, "erf(0.5)");
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-13, "erf(2)");
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-13, "erf(-1)");
    }

    #[test]
    fn erfc_upper_tail_precision() {
        // erfc(5) ≈ 1.5374597944280348e-12, impossible via 1 - erf(5).
        assert_close(erfc(5.0), 1.537_459_794_428_034_8e-12, 1e-9, "erfc(5)");
    }

    #[test]
    fn erf_erfc_complement() {
        for &x in &[-3.0, -1.0, -0.1, 0.0, 0.2, 1.5, 4.0] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-13, &format!("complement x={x}"));
        }
    }

    #[test]
    fn erf_inv_round_trip() {
        for i in -99..=99 {
            let z = i as f64 / 100.0;
            let x = erf_inv(z);
            assert_close(erf(x), z, 1e-11, &format!("roundtrip z={z}"));
        }
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.7, 1.3, 2.5] {
            assert_close(erf(-x), -erf(x), 1e-14, &format!("odd x={x}"));
        }
    }

    #[test]
    fn slice_kernels_match_scalar_bits() {
        let xs: Vec<f64> = (-40..=40).map(|i| i as f64 / 8.0).collect();
        let mut out = vec![f64::NAN; xs.len()];
        erf_slice(&xs, &mut out);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(out[i].to_bits(), erf(x).to_bits(), "erf_slice at {x}");
        }
        erfc_slice(&xs, &mut out);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(out[i].to_bits(), erfc(x).to_bits(), "erfc_slice at {x}");
        }
    }

    #[test]
    fn cross_validate_against_statrs() {
        use statrs::function::erf as se;
        // statrs' erf is itself only ~1e-10 accurate, so the oracle
        // tolerance is loose; our own known-value tests above are tighter.
        for &x in &[-2.0, -0.5, 0.3, 1.0, 2.7] {
            assert_close(erf(x), se::erf(x), 1e-8, &format!("erf({x}) vs statrs"));
            assert_close(erfc(x), se::erfc(x), 1e-8, &format!("erfc({x}) vs statrs"));
        }
    }
}
