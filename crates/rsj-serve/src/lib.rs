//! # rsj-serve
//!
//! A multi-client planning service for *Reservation Strategies for
//! Stochastic Jobs* (systems S22–S25 and S27 of DESIGN.md): a
//! long-running TCP server that computes reservation plans on demand,
//! behind the stable [`Planner`](reservation_strategies::Planner) facade.
//!
//! * **Protocol** ([`protocol`]) — negotiated, line-delimited JSON: one
//!   request object per line (`op`: `plan` / `plan_batch` / `trace` /
//!   `metrics` / `health` / `ready` / `ping` / `shutdown`), one response
//!   object per line. Requests carry an optional version `v` (absent
//!   means v1); the server answers at the version the request spoke and
//!   rejects unknown versions with a typed `unsupported_version` error at
//!   v1, so old clients keep their exact bytes. Plan requests are exactly
//!   a `Planner` configuration on the wire (`DistSpec` + `CostModel` +
//!   `SolverSpec` + optional simulate), and plan responses embed the
//!   facade's [`Plan`](reservation_strategies::Plan) verbatim, FNV-1a
//!   sequence digest included — so served plans diff bit-for-bit against
//!   offline artifacts. Protocol v2's `plan_batch` submits many items in
//!   one frame and returns per-item tagged [`BatchItem`] results in input
//!   order — one round trip, one trace id, one batch-level deadline —
//!   with a failing item confined to its slot.
//! * **Reactor** ([`poll`] / [`server`]) — a single-threaded nonblocking
//!   epoll front end (std-only, raw `libc`) that owns every connection's
//!   read buffering, incremental line assembly, partial-write resumption
//!   and idle deadline, so a slow or idle peer costs a buffer rather than
//!   a thread. Complete frames cross a bounded MPMC queue into a fixed
//!   worker pool; each worker drains up to a configurable batch of
//!   queued requests grouped by table-order key so same-table solves
//!   share a warm eval table.
//! * **Server** ([`server`]) — admission control ([`admission`]:
//!   watermark-hysteresis load shedding with typed `overloaded`
//!   fast-rejects), per-request deadlines enforced at dequeue and
//!   propagated into the solvers as cooperative cancellation,
//!   single-flight coalescing of identical concurrent solves
//!   ([`singleflight`]), a sharded exact-LRU plan cache ([`cache`]) keyed
//!   on the planner's faithful cache key, per-connection request limits
//!   and read timeouts, panic-tolerant workers, graceful idempotent
//!   shutdown that drains in-flight requests, and full `rsj-obs`
//!   instrumentation (request/error/shed/coalesce counters, latency and
//!   queue-wait histograms, Prometheus exposition via the `metrics` op).
//! * **Client** ([`client`]) — a small blocking client used by
//!   `rsj request` and the integration tests, with typed errors for torn
//!   and oversized responses and a [`Client::plan_batch`] wrapper for the
//!   v2 batch op; [`retry`] wraps it into a [`ResilientClient`] with
//!   seeded-jitter backoff, retry budgets, a circuit breaker, and
//!   batch-aware retries that re-submit only the retryable slots of a
//!   partially failed batch.
//! * **Chaos** ([`chaos`]) — a seed-reproducible fault-injection policy
//!   and TCP proxy for hardening tests and the `serve_load` bench, plus a
//!   seeded journal-[`CorruptionPolicy`] for recovery testing.
//! * **Durability** ([`journal`] / [`snapshot`] / [`recovery`]) — a
//!   CRC32-framed append-only plan journal with periodic atomically-renamed
//!   snapshot compactions, and a startup recovery path that warm-fills the
//!   cache, skipping torn or bit-flipped records with typed faults and
//!   re-verifying every recovered plan's FNV-1a digest. `health`/`ready`
//!   protocol ops expose the recovery posture; `plan` requests are shed
//!   with a typed `not_ready` until recovery completes.
//!
//! ```no_run
//! use rsj_serve::{Client, Request, Server, ServerConfig};
//! use rsj_dist::DistSpec;
//!
//! let server = Server::bind(ServerConfig::default())?;
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let response = client.call(&Request::plan(DistSpec::Exponential { lambda: 1.0 }))?;
//! # let _ = response;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod journal;
pub mod poll;
pub mod protocol;
pub mod recovery;
pub mod retry;
pub mod server;
pub mod singleflight;
pub mod snapshot;

pub use admission::{AdmissionConfig, AdmissionQueue};
pub use cache::PlanCache;
pub use chaos::{ChaosPolicy, ChaosProxy, Corruption, CorruptionPolicy, ProxyHandle};
pub use client::{Client, ClientError};
pub use journal::{JournalRecord, JournalWriter, RecordFault, RecordScanner};
pub use protocol::{
    classify, decode_request, encode, sanitize_trace_id, BatchItem, ErrorKind, HealthInfo,
    Provenance, Request, Response, Timings, PROTOCOL_VERSION, PROTOCOL_VERSION_MAX,
};
pub use reservation_strategies::PlanRequest;
pub use recovery::{recover, RecoveryStats};
pub use retry::{
    BreakerConfig, BreakerState, CircuitBreaker, ResilientClient, RetryClass, RetryPolicy,
};
pub use server::{DurabilityConfig, Server, ServerConfig, ShutdownHandle};
pub use singleflight::{Flighted, SingleFlight};
pub use snapshot::{SnapshotFile, SnapshotStore};
