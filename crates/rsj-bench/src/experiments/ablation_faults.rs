//! Ablation (beyond the paper's evaluation): how fragile are reservation
//! sequences under platform faults? For each Table 1 distribution, a batch
//! of jobs is executed through the resilient runner while exponential-MTBF
//! crashes kill reservations mid-flight. The MTBF is swept as a multiple
//! of the distribution's mean, with checkpoint/restart either disabled
//! (restart from scratch) or enabled at a small overhead. The metric is
//! the mean-cost inflation relative to the fault-free batch on the same
//! job sample.

use crate::report::Table;
use crate::scenarios::{paper_distributions, Fidelity};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsj_core::extensions::CheckpointConfig;
use rsj_core::{CostModel, MeanDoubling, Strategy};
use rsj_par::Parallelism;
use rsj_sim::{run_batch, run_batch_resilient, FaultConfig, ResilienceConfig, RetryPolicy};

/// MTBF values swept, expressed as multiples of the distribution's mean.
pub const MTBF_FRACTIONS: [f64; 4] = [0.5, 1.0, 2.0, 10.0];

/// Checkpoint/restart overhead as a fraction of the distribution's mean.
pub const CHECKPOINT_OVERHEAD_FRACTION: f64 = 0.05;

/// Retry budget per job before the runner returns a degraded outcome.
pub const MAX_FAILURES: usize = 50;

/// One MTBF cell of a distribution's sweep.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// MTBF as a multiple of the distribution's mean.
    pub mtbf_fraction: f64,
    /// Mean-cost inflation without checkpointing (faulted / fault-free).
    pub inflation_scratch: f64,
    /// Mean-cost inflation with checkpoint-restart.
    pub inflation_checkpointed: f64,
    /// Total faults injected across the batch (scratch variant).
    pub failures: usize,
    /// Jobs abandoned after exhausting the retry budget (scratch variant).
    pub gave_up: usize,
}

/// One distribution's fault-ablation row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Distribution label.
    pub distribution: String,
    /// Fault-free mean cost of the batch (the inflation denominator).
    pub baseline: f64,
    /// One cell per swept MTBF fraction, in `MTBF_FRACTIONS` order.
    pub cells: Vec<Cell>,
}

/// Computes the ablation: Mean-Doubling sequences executed resiliently
/// under crash faults, MTBF × checkpoint on/off, per Table 1 distribution.
pub fn compute(fidelity: Fidelity, seed: u64) -> Vec<Row> {
    let cost = CostModel::reservation_only();
    let n = fidelity.samples();
    let dists = paper_distributions();
    Parallelism::current().par_map(&dists, |d, nd| {
        let dist = nd.dist.as_ref();
        let seq = MeanDoubling::default()
            .sequence(dist, &cost)
            .expect("paper distributions admit sequences");
        let mean = dist.mean();

        // The same job sample everywhere: each run reseeds the
        // workload RNG, so inflation isolates the fault process.
        let job_seed = seed ^ (d as u64).wrapping_mul(0x9e37_79b9);
        let fresh = || StdRng::seed_from_u64(job_seed);

        let baseline = run_batch(&seq, dist, &cost, n, &mut fresh())
            .expect("baseline batch runs")
            .mean_cost;

        let cells = MTBF_FRACTIONS
            .iter()
            .enumerate()
            .map(|(m, &frac)| {
                let faults = FaultConfig::crashes(frac * mean, seed ^ (m as u64) << 8);
                let overhead = CHECKPOINT_OVERHEAD_FRACTION * mean;
                let scratch = run_batch_resilient(
                    &seq,
                    dist,
                    &cost,
                    n,
                    &mut fresh(),
                    &ResilienceConfig {
                        faults,
                        retry: RetryPolicy::RetrySameSlot,
                        max_failures: MAX_FAILURES,
                        checkpoint: None,
                    },
                )
                .expect("faulted batch runs");
                let checkpointed = run_batch_resilient(
                    &seq,
                    dist,
                    &cost,
                    n,
                    &mut fresh(),
                    &ResilienceConfig {
                        faults,
                        retry: RetryPolicy::RetrySameSlot,
                        max_failures: MAX_FAILURES,
                        checkpoint: Some(
                            CheckpointConfig::new(overhead, overhead)
                                .expect("nonnegative overheads"),
                        ),
                    },
                )
                .expect("checkpointed batch runs");
                Cell {
                    mtbf_fraction: frac,
                    inflation_scratch: scratch.mean_cost / baseline,
                    inflation_checkpointed: checkpointed.mean_cost / baseline,
                    failures: scratch.failures,
                    gave_up: scratch.gave_up,
                }
            })
            .collect();
        Row {
            distribution: nd.name.to_string(),
            baseline,
            cells,
        }
    })
}

/// Renders and writes `results/ablation_faults.{md,csv}`.
pub fn emit(fidelity: Fidelity, seed: u64) -> std::io::Result<Vec<Row>> {
    let rows = compute(fidelity, seed);
    let mut header = vec!["Distribution".to_string()];
    for frac in MTBF_FRACTIONS {
        header.push(format!("MTBF={frac}·mean scratch"));
        header.push(format!("MTBF={frac}·mean ckpt"));
    }
    let mut table = Table::new(header);
    for r in &rows {
        let mut cells = vec![r.distribution.clone()];
        for c in &r.cells {
            cells.push(format!("{:.2}", c.inflation_scratch));
            cells.push(format!("{:.2}", c.inflation_checkpointed));
        }
        table.push_row(cells)?;
    }
    table.emit(
        "ablation_faults",
        "Ablation — fault injection: mean-cost inflation vs fault-free under exponential-MTBF crashes (Mean-Doubling, RESERVATIONONLY)",
    )?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_nine_distributions() {
        let rows = compute(Fidelity::Quick, 1);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert_eq!(r.cells.len(), MTBF_FRACTIONS.len());
            assert!(r.baseline.is_finite() && r.baseline > 0.0);
        }
    }

    #[test]
    fn crashes_never_deflate_cost() {
        // Crash faults only add rework under RESERVATIONONLY pricing, so
        // every inflation ratio stays at or above one.
        let rows = compute(Fidelity::Quick, 1);
        for r in &rows {
            for c in &r.cells {
                assert!(
                    c.inflation_scratch >= 1.0 - 1e-9,
                    "{} at MTBF {}·mean: scratch inflation {}",
                    r.distribution,
                    c.mtbf_fraction,
                    c.inflation_scratch
                );
            }
        }
    }

    #[test]
    fn rare_faults_hurt_less_than_frequent_ones() {
        let rows = compute(Fidelity::Quick, 1);
        for r in &rows {
            let first = r.cells.first().unwrap();
            let last = r.cells.last().unwrap();
            assert!(
                last.inflation_scratch <= first.inflation_scratch + 1e-9,
                "{}: MTBF 10·mean ({}) should beat 0.5·mean ({})",
                r.distribution,
                last.inflation_scratch,
                first.inflation_scratch
            );
            assert!(last.failures <= first.failures);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = compute(Fidelity::Quick, 7);
        let b = compute(Fidelity::Quick, 7);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.baseline, rb.baseline);
            for (ca, cb) in ra.cells.iter().zip(&rb.cells) {
                assert_eq!(ca.inflation_scratch, cb.inflation_scratch);
                assert_eq!(ca.inflation_checkpointed, cb.inflation_checkpointed);
                assert_eq!(ca.failures, cb.failures);
            }
        }
    }
}
