//! Chrome-trace (Perfetto-loadable) export of request timelines.
//!
//! Emits the JSON object format — `{"traceEvents": [...]}` — using only
//! complete (`"ph": "X"`) events, which are well-nested by construction:
//! each timeline becomes one synthetic thread whose request-level event
//! spans `[0, total_us]` and whose stage events sit inside it, clamped to
//! the request's extent. Timestamps (`ts`) and durations (`dur`) are in
//! microseconds, as the format requires.

use crate::timeline::TimelineRecord;
use serde_json::{json, Value};

/// Renders `records` as a Chrome-trace JSON string. Each record gets its
/// own `tid` (1-based, in input order) under a single `pid`, so Perfetto
/// shows one lane per request. Stage events carry the record's trace id
/// in `args`.
pub fn chrome_trace_json(records: &[TimelineRecord]) -> String {
    let mut events = Vec::new();
    for (index, record) in records.iter().enumerate() {
        let tid = index as u64 + 1;
        events.push(event(
            &format!("request:{}", record.op),
            "request",
            0,
            record.total_us,
            tid,
            &record.trace_id,
            &[],
        ));
        let mut stages: Vec<_> = record.stages.iter().collect();
        // Sort by start, longest first on ties, so enclosing events
        // precede the events they contain (the format's nesting rule).
        stages.sort_by(|a, b| {
            a.start_us
                .cmp(&b.start_us)
                .then(b.end_us.cmp(&a.end_us))
                .then(a.name.cmp(&b.name))
        });
        for stage in stages {
            let ts = stage.start_us.min(record.total_us);
            let dur = stage.end_us.min(record.total_us).saturating_sub(ts);
            events.push(event(
                &stage.name,
                "stage",
                ts,
                dur,
                tid,
                &record.trace_id,
                &stage.args,
            ));
        }
    }
    let doc = json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    });
    serde_json::to_string_pretty(&doc).expect("chrome trace serializes")
}

/// One complete ("X") trace event. Stage annotations ride along in the
/// event's `args` next to the trace id, so Perfetto shows e.g. which DP
/// path a `solve` span took.
#[allow(clippy::too_many_arguments)]
fn event(
    name: &str,
    cat: &str,
    ts: u64,
    dur: u64,
    tid: u64,
    trace_id: &str,
    extra: &[(String, String)],
) -> Value {
    let mut args: Vec<(String, Value)> = vec![("trace_id".to_string(), json!(trace_id))];
    for (key, value) in extra {
        args.push((key.clone(), json!(value)));
    }
    json!({
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": 1u64,
        "tid": tid,
        "args": Value::Map(args),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::StageRecord;

    fn sample() -> TimelineRecord {
        TimelineRecord {
            trace_id: "00000000000000000000000000000abc".to_string(),
            op: "plan".to_string(),
            total_us: 1_000,
            stages: vec![
                StageRecord {
                    name: "queue_wait".to_string(),
                    start_us: 0,
                    end_us: 100,
                    args: Vec::new(),
                },
                StageRecord {
                    name: "solve".to_string(),
                    start_us: 120,
                    end_us: 900,
                    args: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn exports_parseable_x_events() {
        let text = chrome_trace_json(&[sample()]);
        let doc: Value = serde_json::from_str(&text).expect("valid JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(events.len(), 3);
        for e in events {
            assert_eq!(e["ph"].as_str(), Some("X"));
            assert!(e["ts"].as_u64().is_some());
            assert!(e["dur"].as_u64().is_some());
            assert_eq!(
                e["args"]["trace_id"].as_str(),
                Some("00000000000000000000000000000abc")
            );
        }
        assert_eq!(events[0]["name"].as_str(), Some("request:plan"));
        assert_eq!(events[0]["dur"].as_u64(), Some(1_000));
    }

    #[test]
    fn stages_beyond_total_are_clamped_inside_the_request() {
        let mut record = sample();
        record.stages.push(StageRecord {
            name: "late".to_string(),
            start_us: 950,
            end_us: 2_000,
            args: Vec::new(),
        });
        let text = chrome_trace_json(&[record]);
        let doc: Value = serde_json::from_str(&text).unwrap();
        for e in doc["traceEvents"].as_array().unwrap() {
            let ts = e["ts"].as_u64().unwrap();
            let dur = e["dur"].as_u64().unwrap();
            assert!(ts + dur <= 1_000, "{e:?} escapes the request extent");
        }
    }

    #[test]
    fn empty_input_is_still_valid() {
        let text = chrome_trace_json(&[]);
        let doc: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(doc["traceEvents"].as_array().unwrap().len(), 0);
    }
}
