//! Wall-clock measurement: a [`Stopwatch`], a scoped timer that records
//! into the global registry, and the [`Recorder`] abstraction with a
//! compile-out [`NoopRecorder`] for code that wants observability to cost
//! literally nothing when a no-op recorder is chosen.

use crate::metrics::{self, Registry};
use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Time since start (or the last [`Stopwatch::lap`]).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time since start, in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Returns the elapsed time and restarts the stopwatch.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let elapsed = now - self.start;
        self.start = now;
        elapsed
    }
}

/// Records the wall time of a scope into the global registry's histogram
/// `name` (in seconds) when dropped. Inert — no clock read — when global
/// metrics are disabled at construction time.
#[derive(Debug)]
#[must_use = "a scoped timer records when dropped; binding it to `_` drops it immediately"]
pub struct ScopedTimer {
    name: &'static str,
    start: Option<Instant>,
}

impl ScopedTimer {
    /// Starts timing `name` against the global registry.
    #[inline]
    pub fn global(name: &'static str) -> Self {
        let start = metrics::enabled().then(Instant::now);
        Self { name, start }
    }

    /// Stops early and records, consuming the timer.
    pub fn stop(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some(start) = self.start.take() {
            metrics::global()
                .histogram(self.name)
                .observe(start.elapsed().as_secs_f64());
        }
    }
}

impl Drop for ScopedTimer {
    #[inline]
    fn drop(&mut self) {
        self.record();
    }
}

/// A sink for instrumentation that code can be generic over, so the same
/// function body serves a live registry and a compiled-out no-op.
pub trait Recorder {
    /// Whether records reach a real sink (lets callers skip preparing
    /// expensive values).
    fn is_live(&self) -> bool;
    /// Adds `delta` to the counter `name`.
    fn add(&self, name: &'static str, delta: u64);
    /// Sets the gauge `name`.
    fn set(&self, name: &'static str, value: f64);
    /// Records `value` into the histogram `name`.
    fn observe(&self, name: &'static str, value: f64);
}

/// The compile-out recorder: every method is an empty `#[inline(always)]`
/// body, so instrumented code monomorphized against it contains no trace
/// of the instrumentation — no atomics, no branches, no allocations.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn is_live(&self) -> bool {
        false
    }
    #[inline(always)]
    fn add(&self, _name: &'static str, _delta: u64) {}
    #[inline(always)]
    fn set(&self, _name: &'static str, _value: f64) {}
    #[inline(always)]
    fn observe(&self, _name: &'static str, _value: f64) {}
}

impl Recorder for Registry {
    fn is_live(&self) -> bool {
        true
    }
    fn add(&self, name: &'static str, delta: u64) {
        self.counter(name).add(delta);
    }
    fn set(&self, name: &'static str, value: f64) {
        self.gauge(name).set(value);
    }
    fn observe(&self, name: &'static str, value: f64) {
        self.histogram(name).observe(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_and_laps() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(2));
        assert!(sw.elapsed() < first, "lap must restart the clock");
        assert!(sw.elapsed_secs() >= 0.0);
    }

    #[test]
    fn registry_recorder_routes_all_kinds() {
        let reg = Registry::new();
        let r: &dyn Recorder = &reg;
        assert!(r.is_live());
        r.add("c", 3);
        r.set("g", 1.5);
        r.observe("h", 0.25);
        assert_eq!(reg.counter("c").get(), 3);
        assert_eq!(reg.gauge("g").get(), 1.5);
        assert_eq!(reg.histogram("h").snapshot().count(), 1);
    }

    #[test]
    fn noop_recorder_is_inert() {
        let r = NoopRecorder;
        assert!(!r.is_live());
        r.add("c", 3);
        r.set("g", 1.5);
        r.observe("h", 0.25);
    }
}
