//! Distribution transforms: currently positive rescaling, `Y = c·X`.
//!
//! Rescaling is what the multi-processor extension of the paper's §7
//! future work needs: a job with sequential-work law `X` executed on `p`
//! processors has runtime `X·g(p)` for the speedup-derived factor `g(p)`.

use crate::error::{check_param, Result};
use crate::traits::{ContinuousDistribution, Support};

/// The law of `c·X` for a positive constant `c` and base law `X`.
#[derive(Debug, Clone)]
pub struct Scaled<D> {
    inner: D,
    factor: f64,
}

impl<D: ContinuousDistribution> Scaled<D> {
    /// Wraps `inner` scaled by `factor > 0`.
    pub fn new(inner: D, factor: f64) -> Result<Self> {
        check_param("factor", factor, "must be > 0 and finite", factor > 0.0)?;
        Ok(Self { inner, factor })
    }

    /// The base distribution.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The scale factor `c`.
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl<D: ContinuousDistribution> ContinuousDistribution for Scaled<D> {
    fn name(&self) -> String {
        format!("{} × {}", self.factor, self.inner.name())
    }

    fn cache_key(&self) -> Option<String> {
        // Faithful iff the inner law's key is: `{}` on the factor is
        // shortest-roundtrip.
        self.inner
            .cache_key()
            .map(|inner| format!("{} × {inner}", self.factor))
    }

    fn support(&self) -> Support {
        match self.inner.support() {
            Support::Bounded { lower, upper } => Support::Bounded {
                lower: lower * self.factor,
                upper: upper * self.factor,
            },
            Support::Unbounded { lower } => Support::Unbounded {
                lower: lower * self.factor,
            },
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        self.inner.pdf(t / self.factor) / self.factor
    }

    fn cdf(&self, t: f64) -> f64 {
        self.inner.cdf(t / self.factor)
    }

    fn survival(&self, t: f64) -> f64 {
        self.inner.survival(t / self.factor)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.inner.quantile(p) * self.factor
    }

    fn mean(&self) -> f64 {
        self.inner.mean() * self.factor
    }

    fn variance(&self) -> f64 {
        self.inner.variance() * self.factor * self.factor
    }

    fn conditional_mean_above(&self, tau: f64) -> f64 {
        self.inner.conditional_mean_above(tau / self.factor) * self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::{Exponential, Uniform};

    #[test]
    fn rejects_bad_factor() {
        assert!(Scaled::new(Exponential::new(1.0).unwrap(), 0.0).is_err());
        assert!(Scaled::new(Exponential::new(1.0).unwrap(), -2.0).is_err());
    }

    #[test]
    fn scaled_exponential_is_rate_change() {
        // 2·Exp(1) has the law of Exp(1/2).
        let s = Scaled::new(Exponential::new(1.0).unwrap(), 2.0).unwrap();
        let e = Exponential::new(0.5).unwrap();
        for &t in &[0.1, 1.0, 3.0, 10.0] {
            assert!((s.cdf(t) - e.cdf(t)).abs() < 1e-13, "t={t}");
            assert!((s.pdf(t) - e.pdf(t)).abs() < 1e-13, "t={t}");
        }
        assert!((s.mean() - 2.0).abs() < 1e-13);
        assert!((s.variance() - 4.0).abs() < 1e-13);
    }

    #[test]
    fn scaled_uniform_support() {
        let s = Scaled::new(Uniform::new(10.0, 20.0).unwrap(), 0.5).unwrap();
        assert_eq!(s.support().lower(), 5.0);
        assert_eq!(s.support().upper(), Some(10.0));
        assert!((s.quantile(0.5) - 7.5).abs() < 1e-13);
    }

    #[test]
    fn conditional_mean_scales() {
        let base = Exponential::new(1.0).unwrap();
        let s = Scaled::new(base, 3.0).unwrap();
        // E[3X | 3X > τ] = 3·E[X | X > τ/3] = τ + 3 for exponential.
        assert!((s.conditional_mean_above(6.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_cdf_roundtrip() {
        let s = Scaled::new(Exponential::new(2.0).unwrap(), 7.0).unwrap();
        for &p in &[0.01, 0.4, 0.9, 0.999] {
            assert!((s.cdf(s.quantile(p)) - p).abs() < 1e-12);
        }
    }
}
