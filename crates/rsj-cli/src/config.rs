//! JSON configuration schemas for the CLI commands.

use rsj_core::{CostModel, SolverSpec};
use rsj_dist::DistSpec;
use rsj_sim::{AdaptiveConfig, FaultConfig};
use serde::{Deserialize, Serialize};

/// Cost-model section (`alpha`, `beta`, `gamma` of Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostSpec {
    /// Price per reserved time unit.
    pub alpha: f64,
    /// Price per used time unit (default 0).
    #[serde(default)]
    pub beta: f64,
    /// Fixed per-reservation cost (default 0).
    #[serde(default)]
    pub gamma: f64,
}

impl CostSpec {
    /// Builds the validated cost model.
    pub fn build(&self) -> Result<CostModel, String> {
        CostModel::new(self.alpha, self.beta, self.gamma).map_err(|e| e.to_string())
    }
}

/// Which heuristic to run, with its parameters.
///
/// Since the `SolverSpec` unification this is exactly the workspace-wide
/// [`SolverSpec`] — the wire shape (`kind` tag, snake_case names, the same
/// parameter defaults) is unchanged, so existing configs keep parsing, and
/// the same JSON object drives `rsj plan`, the `Planner` facade and
/// `rsj-serve` requests. One behavioral difference: an unknown DP
/// `scheme` is now rejected when the config is parsed (a typed serde
/// error naming the bad value) instead of when the solver is built.
pub type HeuristicSpec = SolverSpec;

/// `rsj plan` configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanConfig {
    /// The job-runtime law.
    pub distribution: DistSpec,
    /// The platform cost model.
    pub cost: CostSpec,
    /// Which heuristic to run.
    pub heuristic: HeuristicSpec,
    /// Maximum ladder entries to print (default 10).
    #[serde(default = "default_show")]
    pub show: usize,
}

fn default_show() -> usize {
    10
}

/// `rsj evaluate` configuration: an explicit request ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluateConfig {
    /// The job-runtime law.
    pub distribution: DistSpec,
    /// The platform cost model.
    pub cost: CostSpec,
    /// The strictly increasing reservation lengths.
    pub sequence: Vec<f64>,
    /// Whether the last entry covers the whole support.
    #[serde(default)]
    pub complete: bool,
    /// Additional Monte-Carlo cross-check samples (0 to skip).
    #[serde(default)]
    pub monte_carlo_samples: usize,
    /// RNG seed for the cross-check.
    #[serde(default)]
    pub seed: u64,
}

/// `rsj simulate` configuration: batch-queue simulation + Figure 2 fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulateConfig {
    /// Cluster size in processors.
    pub processors: usize,
    /// `fcfs` or `easy`.
    pub policy: String,
    /// Mean arrival rate (jobs/hour).
    pub arrival_rate: f64,
    /// Weighted processor-count choices.
    pub widths: Vec<(usize, f64)>,
    /// Actual-runtime law (hours).
    pub runtime: DistSpec,
    /// Uniform over-estimation factor range.
    pub overestimate: (f64, f64),
    /// Number of jobs.
    pub jobs: usize,
    /// Widths to analyze (wait-vs-request groups + affine fit).
    pub analyze_widths: Vec<usize>,
    /// Number of request-size groups (default 20).
    #[serde(default = "default_groups")]
    pub groups: usize,
    /// RNG seed.
    #[serde(default)]
    pub seed: u64,
    /// Optional fault-injection processes (crashes, preemptions,
    /// walltime jitter); omit for a fault-free run.
    #[serde(default)]
    pub faults: Option<FaultConfig>,
    /// Optional online adaptive replanning stream (system S19) driven by
    /// the same runtime law; omit to skip.
    #[serde(default)]
    pub adaptive: Option<AdaptiveSpec>,
}

fn default_groups() -> usize {
    20
}

/// The `adaptive` section of `rsj simulate`: plan on a prior, observe
/// (possibly censored) durations drawn from the config's `runtime` law,
/// refit and replan under guardrails.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSpec {
    /// Planning prior; the truth is the simulation's `runtime` law.
    pub prior: DistSpec,
    /// Number of jobs in the adaptive stream.
    pub jobs: usize,
    /// Planning heuristic (default `mean_by_mean`).
    #[serde(default = "default_adaptive_heuristic")]
    pub heuristic: HeuristicSpec,
    /// Explicit Eq. 1 cost model. Omitted → derived from the first queue
    /// fit (`analyze_widths`), or RESERVATIONONLY when no fit exists.
    #[serde(default)]
    pub cost: Option<CostSpec>,
    /// RNG seed for the duration stream (default 0).
    #[serde(default)]
    pub seed: u64,
    /// Refit family and guardrail knobs (`family`, `refit_interval`,
    /// `hysteresis`, `max_drift`, `censor_after`, …); every knob has a
    /// default, so the whole object may be omitted.
    #[serde(default)]
    pub config: AdaptiveConfig,
}

fn default_adaptive_heuristic() -> HeuristicSpec {
    SolverSpec::MeanByMean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_config_parses_minimal_json() {
        let json = r#"{
            "distribution": { "family": "log_normal", "mu": 3.0, "sigma": 0.5 },
            "cost": { "alpha": 1.0 },
            "heuristic": { "kind": "brute_force", "grid": 100, "samples": 200 }
        }"#;
        let cfg: PlanConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.show, 10);
        assert_eq!(cfg.cost.beta, 0.0);
        assert!(cfg.heuristic.build().is_ok());
        assert!(cfg.distribution.build().is_ok());
    }

    #[test]
    fn all_heuristic_kinds_build() {
        for json in [
            r#"{ "kind": "brute_force" }"#,
            r#"{ "kind": "dp", "scheme": "equal_time" }"#,
            r#"{ "kind": "dp", "scheme": "equal_probability", "n": 50 }"#,
            r#"{ "kind": "mean_by_mean" }"#,
            r#"{ "kind": "mean_stdev" }"#,
            r#"{ "kind": "mean_doubling" }"#,
            r#"{ "kind": "median_by_median" }"#,
        ] {
            let spec: HeuristicSpec = serde_json::from_str(json).unwrap();
            assert!(spec.build().is_ok(), "{json}");
        }
    }

    #[test]
    fn bad_scheme_is_rejected_at_parse_time() {
        let err = serde_json::from_str::<HeuristicSpec>(r#"{ "kind": "dp", "scheme": "nope" }"#)
            .unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn cost_spec_validation() {
        assert!(CostSpec {
            alpha: 0.0,
            beta: 0.0,
            gamma: 0.0
        }
        .build()
        .is_err());
        assert!(CostSpec {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0
        }
        .build()
        .is_ok());
    }

    #[test]
    fn simulate_config_parses_fault_section() {
        let json = r#"{
            "processors": 64,
            "policy": "fcfs",
            "arrival_rate": 2.0,
            "widths": [[16, 1.0]],
            "runtime": { "family": "log_normal", "mu": 0.5, "sigma": 0.6 },
            "overestimate": [1.1, 2.0],
            "jobs": 100,
            "analyze_widths": [],
            "faults": { "seed": 9, "mtbf": 12.0, "preemption_rate": 0.1 }
        }"#;
        let cfg: SimulateConfig = serde_json::from_str(json).unwrap();
        let faults = cfg.faults.unwrap();
        assert_eq!(faults.mtbf, Some(12.0));
        assert_eq!(faults.preemption_rate, Some(0.1));
        assert_eq!(faults.walltime_jitter, None);
        assert_eq!(faults.seed, 9);
    }

    #[test]
    fn malformed_fault_section_names_the_path() {
        let json = r#"{
            "processors": 64,
            "policy": "fcfs",
            "arrival_rate": 2.0,
            "widths": [[16, 1.0]],
            "runtime": { "family": "log_normal", "mu": 0.5, "sigma": 0.6 },
            "overestimate": [1.1, 2.0],
            "jobs": 100,
            "analyze_widths": [],
            "faults": { "mtbf": "often" }
        }"#;
        let err = serde_json::from_str::<SimulateConfig>(json).unwrap_err();
        assert!(err.to_string().contains("faults"), "{err}");
    }

    #[test]
    fn simulate_config_parses_adaptive_section() {
        let json = r#"{
            "processors": 64,
            "policy": "fcfs",
            "arrival_rate": 2.0,
            "widths": [[16, 1.0]],
            "runtime": { "family": "log_normal", "mu": 0.5, "sigma": 0.6 },
            "overestimate": [1.1, 2.0],
            "jobs": 100,
            "analyze_widths": [],
            "adaptive": {
                "prior": { "family": "log_normal", "mu": 0.1, "sigma": 0.6 },
                "jobs": 50,
                "config": {
                    "family": "weibull",
                    "refit_interval": 5,
                    "censor_after": 6
                }
            }
        }"#;
        let cfg: SimulateConfig = serde_json::from_str(json).unwrap();
        let ad = cfg.adaptive.unwrap();
        assert_eq!(ad.jobs, 50);
        assert_eq!(ad.heuristic, HeuristicSpec::MeanByMean);
        assert_eq!(ad.cost, None);
        assert_eq!(ad.config.family, rsj_sim::ModelFamily::Weibull);
        assert_eq!(ad.config.refit_interval, 5);
        assert_eq!(ad.config.censor_after, Some(6));
        // Defaults of the flattened guardrail knobs survive.
        assert_eq!(ad.config.hysteresis, AdaptiveConfig::default().hysteresis);
    }

    #[test]
    fn evaluate_config_round_trip() {
        let cfg = EvaluateConfig {
            distribution: DistSpec::Exponential { lambda: 1.0 },
            cost: CostSpec {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
            },
            sequence: vec![1.0, 2.0, 4.0],
            complete: false,
            monte_carlo_samples: 100,
            seed: 7,
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: EvaluateConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
