//! Property-based tests of the from-scratch special functions and the
//! discretization machinery, over randomized parameter ranges.

use proptest::prelude::*;
use rsj_dist::special::{
    beta_inc, erf, erfc, gamma_p, gamma_q, inverse_beta_inc, inverse_gamma_p, ln_gamma, norm_cdf,
    norm_quantile,
};
use rsj_dist::{discretize, ContinuousDistribution, DiscretizationScheme, GammaDist, Weibull};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Γ(x+1) = x·Γ(x) in log space.
    #[test]
    fn gamma_recurrence(x in 0.05..40.0f64) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    /// P(a, ·) is a CDF in x: monotone, 0 at 0, → 1.
    #[test]
    fn gamma_p_is_cdf(a in 0.1..20.0f64, x1 in 0.0..50.0f64, dx in 0.0..10.0f64) {
        let p1 = gamma_p(a, x1);
        let p2 = gamma_p(a, x1 + dx);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 >= p1 - 1e-12);
        prop_assert!((gamma_p(a, x1) + gamma_q(a, x1) - 1.0).abs() < 1e-11);
    }

    /// Incomplete-gamma inverse round-trips.
    #[test]
    fn gamma_inverse_roundtrip(a in 0.1..20.0f64, p in 0.0001..0.9999f64) {
        let x = inverse_gamma_p(a, p);
        prop_assert!(x >= 0.0);
        prop_assert!((gamma_p(a, x) - p).abs() < 1e-8, "a={a} p={p} x={x}");
    }

    /// I_x(a,b) symmetry and endpoint behaviour.
    #[test]
    fn beta_symmetry(a in 0.2..10.0f64, b in 0.2..10.0f64, x in 0.001..0.999f64) {
        let lhs = beta_inc(a, b, x);
        let rhs = 1.0 - beta_inc(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "a={a} b={b} x={x}: {lhs} vs {rhs}");
        prop_assert!((0.0..=1.0).contains(&lhs));
    }

    /// Incomplete-beta inverse round-trips away from singular corners.
    #[test]
    fn beta_inverse_roundtrip(a in 0.5..8.0f64, b in 0.5..8.0f64, p in 0.001..0.999f64) {
        let x = inverse_beta_inc(a, b, p);
        prop_assert!((0.0..=1.0).contains(&x));
        prop_assert!((beta_inc(a, b, x) - p).abs() < 1e-8, "a={a} b={b} p={p}");
    }

    /// erf is odd, bounded, and complements erfc.
    #[test]
    fn erf_identities(x in -6.0..6.0f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-13);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    /// Φ and Φ⁻¹ are inverse, and Φ is monotone.
    #[test]
    fn normal_roundtrip(p in 0.0001..0.9999f64, x in -5.0..5.0f64, dx in 0.0..2.0f64) {
        prop_assert!((norm_cdf(norm_quantile(p)) - p).abs() < 1e-10);
        prop_assert!(norm_cdf(x + dx) >= norm_cdf(x) - 1e-14);
    }

    /// Discretization conserves probability mass and orders values, for
    /// random Weibull shapes (including heavy tails).
    #[test]
    fn discretization_mass_and_order(
        kappa in 0.4..3.0f64,
        n in 5usize..200,
        eps_exp in 3.0..9.0f64,
    ) {
        let d = Weibull::new(1.0, kappa).unwrap();
        let eps = 10f64.powf(-eps_exp);
        for scheme in [DiscretizationScheme::EqualTime, DiscretizationScheme::EqualProbability] {
            let disc = discretize(&d, scheme, n, eps).unwrap();
            prop_assert!((disc.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!((disc.raw_mass() - (1.0 - eps)).abs() < 1e-6, "{scheme:?}");
            for w in disc.values().windows(2) {
                prop_assert!(w[1] > w[0]);
            }
            // Every support point lies within the truncated support.
            let b = d.quantile(1.0 - eps);
            prop_assert!(disc.max_value() <= b * (1.0 + 1e-9));
        }
    }

    /// Discrete means converge toward the truncated continuous mean as n
    /// grows (coarse sanity on a Gamma family).
    #[test]
    fn discrete_mean_sane(shape in 0.5..6.0f64, rate in 0.5..4.0f64) {
        let d = GammaDist::new(shape, rate).unwrap();
        let disc = discretize(&d, DiscretizationScheme::EqualProbability, 2000, 1e-8).unwrap();
        let rel = (disc.mean() - d.mean()).abs() / d.mean();
        prop_assert!(rel < 0.05, "relative mean error {rel}");
    }
}
