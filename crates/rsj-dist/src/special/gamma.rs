// Lanczos/Acklam-style coefficient tables keep their published full-precision digits.
#![allow(clippy::excessive_precision)]

//! Gamma function family: `ln Γ`, `Γ`, regularized incomplete gamma
//! `P(a, x)` / `Q(a, x)`, their non-regularized variants and the inverse of
//! `P(a, ·)`.
//!
//! Implemented from scratch with the classic Lanczos approximation for
//! `ln Γ` and series / continued-fraction evaluation for the incomplete
//! functions (Lentz's algorithm). Accuracy is ~1e-14 relative over the
//! parameter ranges used by the distributions in this crate.

use super::normal::norm_quantile;

/// Lanczos coefficients for `g = 7`, `n = 9`.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
/// Panics in debug builds if `x` is not finite. Returns `f64::INFINITY` for
/// `x <= 0` at poles.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x.is_finite(), "ln_gamma: non-finite argument {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        if sin_pi_x == 0.0 {
            return f64::INFINITY; // pole at non-positive integers
        }
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Evaluates [`ln_gamma`] over a grid, slice-in/slice-out. Bit-identical
/// to the per-point calls; the batch companion to [`crate::special::erf::erf_slice`]
/// for grid pipelines that sweep many gamma-family evaluations at once.
///
/// # Panics
/// Panics if `xs` and `out` differ in length (and, in debug builds, on
/// non-finite arguments, as [`ln_gamma`] does).
pub fn ln_gamma_slice(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "ln_gamma_slice: length mismatch");
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = ln_gamma(x);
    }
}

/// The gamma function `Γ(x)` for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    if x <= 0.0 {
        // Reflection for the (unused here) negative branch.
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        if sin_pi_x == 0.0 {
            return f64::NAN;
        }
        return std::f64::consts::PI / (sin_pi_x * gamma(1.0 - x));
    }
    ln_gamma(x).exp()
}

const MAX_ITER: usize = 400;
const EPS: f64 = 1e-16;
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Series representation of the lower regularized incomplete gamma `P(a, x)`.
/// Converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of the upper regularized incomplete
/// gamma `Q(a, x)` (modified Lentz). Converges fast for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() <= EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Lower regularized incomplete gamma function
/// `P(a, x) = γ(a, x) / Γ(a)` for `a > 0`, `x >= 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p: a must be positive, got {a}");
    assert!(x >= 0.0, "gamma_p: x must be non-negative, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Upper regularized incomplete gamma function
/// `Q(a, x) = Γ(a, x) / Γ(a) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q: a must be positive, got {a}");
    assert!(x >= 0.0, "gamma_q: x must be non-negative, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Non-regularized upper incomplete gamma `Γ(a, x)`.
///
/// This is the form used by the Mean-by-Mean recurrences of Appendix B
/// (Weibull and Gamma distributions).
pub fn upper_incomplete_gamma(a: f64, x: f64) -> f64 {
    gamma_q(a, x) * gamma(a)
}

/// Inverse of the lower regularized incomplete gamma: returns `x` such that
/// `P(a, x) = p`.
///
/// Initial guess follows Numerical-Recipes (`invgammp`): Wilson–Hilferty for
/// `a > 1`, a two-piece low-`a` approximation otherwise, refined by a
/// safeguarded Newton iteration on `P(a, ·)`.
pub fn inverse_gamma_p(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "inverse_gamma_p: a must be positive, got {a}");
    assert!(
        (0.0..=1.0).contains(&p),
        "inverse_gamma_p: p must be in [0, 1], got {p}"
    );
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    let gln = ln_gamma(a);
    let a1 = a - 1.0;

    // Initial guess.
    let mut x = if a > 1.0 {
        // Wilson–Hilferty starting point.
        let z = norm_quantile(p);
        let t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * a.sqrt());
        if t > 0.0 {
            a * t * t * t
        } else {
            // Deep lower tail where Wilson–Hilferty breaks down: use the
            // leading series term P(a, x) ≈ x^a / (a Γ(a)).
            ((p * a).ln() + gln).exp().powf(1.0 / a)
        }
    } else {
        let t = 1.0 - a * (0.253 + a * 0.12);
        if p < t {
            (p / t).powf(1.0 / a)
        } else {
            1.0 - (1.0 - (p - t) / (1.0 - t)).ln()
        }
    };
    if !x.is_finite() || x <= 0.0 {
        x = a; // always a valid interior point
    }

    // Establish a bracket [lo, hi] with P(a, lo) < p < P(a, hi).
    let mut lo = 0.0;
    let mut hi = x.max(a);
    let mut guard = 0;
    while gamma_p(a, hi) < p {
        hi *= 2.0;
        guard += 1;
        if guard > 600 {
            break;
        }
    }
    if x <= lo || x >= hi {
        x = 0.5 * (lo + hi); // keep the seed inside the bracket
    }

    // Bracketed Newton: fall back to bisection whenever the Newton step
    // leaves the bracket or the density underflows.
    for _ in 0..200 {
        let err = gamma_p(a, x) - p;
        if err > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let pdf = (-x + a1 * x.ln() - gln).exp();
        let mut xn = if pdf > 0.0 { x - err / pdf } else { f64::NAN };
        if !xn.is_finite() || xn <= lo || xn >= hi {
            xn = 0.5 * (lo + hi);
        }
        let dx = (xn - x).abs();
        x = xn;
        if dx <= 1e-15 * x.abs().max(1e-300) || hi - lo <= 1e-15 * hi {
            break;
        }
    }
    x
}

/// Inverse of the *upper* regularized incomplete gamma: `x` with `Q(a, x) = q`.
///
/// Matches the paper's `Γ^{-1}(x, z)` notation (Appendix A) up to
/// regularization: the paper inverts the non-regularized `Γ(a, ·)`.
pub fn inverse_gamma_q(a: f64, q: f64) -> f64 {
    inverse_gamma_p(a, 1.0 - q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_slice_matches_scalar_bits() {
        let xs: Vec<f64> = (1..=80).map(|i| i as f64 * 0.37).collect();
        let mut out = vec![f64::NAN; xs.len()];
        ln_gamma_slice(&xs, &mut out);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(out[i].to_bits(), ln_gamma(x).to_bits(), "at {x}");
        }
    }

    fn assert_close(a: f64, b: f64, tol: f64, msg: &str) {
        let denom = b.abs().max(1.0);
        assert!(
            (a - b).abs() / denom < tol,
            "{msg}: got {a}, expected {b} (rel err {})",
            (a - b).abs() / denom
        );
    }

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            assert_close(
                ln_gamma((n + 1) as f64),
                f.ln(),
                1e-13,
                &format!("ln_gamma({})", n + 1),
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert_close(
            ln_gamma(0.5),
            0.5 * std::f64::consts::PI.ln(),
            1e-13,
            "ln_gamma(0.5)",
        );
        // Γ(3/2) = sqrt(π)/2
        assert_close(
            gamma(1.5),
            std::f64::consts::PI.sqrt() / 2.0,
            1e-13,
            "gamma(1.5)",
        );
    }

    #[test]
    fn ln_gamma_reflection_small() {
        // Γ(0.25) ≈ 3.6256099082219083119
        assert_close(gamma(0.25), 3.625_609_908_221_908_3, 1e-12, "gamma(0.25)");
        // Γ(0.1) ≈ 9.513507698668731836
        assert_close(gamma(0.1), 9.513_507_698_668_731_8, 1e-12, "gamma(0.1)");
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert_close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-13, "P(1,x)");
        }
        // P(0.5, x) = erf(sqrt(x)); spot value: erf(1) = 0.8427007929497149
        assert_close(
            gamma_p(0.5, 1.0),
            0.842_700_792_949_714_9,
            1e-12,
            "P(0.5,1)",
        );
    }

    #[test]
    fn gamma_q_complements_p() {
        for &a in &[0.3, 0.5, 1.0, 2.0, 3.7, 10.0] {
            for &x in &[0.01, 0.3, 1.0, 2.5, 8.0, 30.0] {
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                assert_close(p + q, 1.0, 1e-12, &format!("P+Q at a={a}, x={x}"));
            }
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let a = 2.0;
        let mut prev = -1.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = gamma_p(a, x);
            assert!(p >= prev, "P(a,·) must be nondecreasing");
            prev = p;
        }
    }

    #[test]
    fn inverse_gamma_p_round_trip() {
        for &a in &[0.4, 0.5, 1.0, 2.0, 3.0, 7.5, 20.0] {
            for &p in &[1e-6, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0 - 1e-7] {
                let x = inverse_gamma_p(a, p);
                let back = gamma_p(a, x);
                assert_close(back, p, 1e-9, &format!("roundtrip a={a}, p={p}"));
            }
        }
    }

    #[test]
    fn inverse_gamma_p_edges() {
        assert_eq!(inverse_gamma_p(2.0, 0.0), 0.0);
        assert!(inverse_gamma_p(2.0, 1.0).is_infinite());
    }

    #[test]
    fn upper_incomplete_gamma_at_zero_is_gamma() {
        for &a in &[0.5, 1.0, 2.5, 4.0] {
            assert_close(
                upper_incomplete_gamma(a, 0.0),
                gamma(a),
                1e-12,
                "Γ(a,0) = Γ(a)",
            );
        }
    }

    #[test]
    fn cross_validate_against_statrs() {
        use statrs::function::gamma as sg;
        for &a in &[0.25, 0.5, 1.0, 2.0, 5.0, 12.0] {
            assert_close(ln_gamma(a), sg::ln_gamma(a), 1e-12, "ln_gamma vs statrs");
            for &x in &[0.05, 0.5, 1.5, 4.0, 20.0] {
                assert_close(
                    gamma_p(a, x),
                    sg::gamma_lr(a, x),
                    1e-10,
                    &format!("P({a},{x}) vs statrs"),
                );
            }
        }
    }
}
