//! Verifies the §3.5 optimal exponential first reservation (s1 ≈ 0.74219).

fn main() -> std::io::Result<()> {
    rsj_bench::experiments::exp_s1::emit()?;
    Ok(())
}
