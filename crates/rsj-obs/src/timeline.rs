//! Per-request trace identities and stage timelines.
//!
//! A [`TraceContext`] is a 128-bit trace id plus a 64-bit span id, drawn
//! from a splitmix64 generator seeded by [`set_trace_seed`] and advanced
//! by an atomic counter — no wall-clock entropy, so a run that issues the
//! same requests in the same order mints the same ids and stays
//! reproducible. A [`Timeline`] records named stage intervals against a
//! monotonic epoch and freezes into a serializable [`TimelineRecord`].
//!
//! Both follow the crate's one-relaxed-atomic-when-disabled discipline:
//! [`Timeline::disabled`] holds no allocation and every recording call on
//! it is a branch on `None`, and [`Timeline::begin_if_enabled`] costs a
//! single relaxed atomic load when request tracing is off.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Process-global switch for [`Timeline::begin_if_enabled`].
static REQUEST_TRACING: AtomicBool = AtomicBool::new(false);

/// Generator state: a settable base seed plus a monotonically increasing
/// draw counter. Ids depend only on (seed, draw index), never the clock.
static TRACE_SEED: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Whether [`Timeline::begin_if_enabled`] starts live timelines. One
/// relaxed atomic load.
#[inline(always)]
pub fn request_tracing_enabled() -> bool {
    REQUEST_TRACING.load(Ordering::Relaxed)
}

/// Turns process-global request tracing on or off.
pub fn set_request_tracing(on: bool) {
    REQUEST_TRACING.store(on, Ordering::Relaxed);
}

/// Reseeds the trace-id generator and resets its draw counter, making the
/// sequence of generated ids reproducible from this point.
pub fn set_trace_seed(seed: u64) {
    TRACE_SEED.store(seed, Ordering::Relaxed);
    TRACE_COUNTER.store(0, Ordering::Relaxed);
}

/// The splitmix64 finalizer: a bijective avalanche over `u64`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A per-request trace identity: a 128-bit trace id shared by everything
/// that happened on behalf of one request, and a 64-bit span id for one
/// hop within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The 128-bit request identity.
    pub trace_id: u128,
    /// This hop's 64-bit span identity.
    pub span_id: u64,
}

impl TraceContext {
    /// Mints a fresh context from the seeded generator. Deterministic
    /// given the seed and the number of prior draws; never reads a clock.
    pub fn generate() -> Self {
        let draw = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let seed = TRACE_SEED.load(Ordering::Relaxed);
        let hi = splitmix64(seed ^ splitmix64(draw));
        let lo = splitmix64(hi.wrapping_add(draw));
        let trace_id = ((hi as u128) << 64) | lo as u128;
        Self {
            // A zero id reads as "absent" in most tracing systems.
            trace_id: if trace_id == 0 { 1 } else { trace_id },
            span_id: splitmix64(lo ^ seed),
        }
    }

    /// Parses a 1–32 character hex trace id (as produced by
    /// [`trace_id_hex`](Self::trace_id_hex)); the span id is minted fresh.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() || s.len() > 32 {
            return None;
        }
        let trace_id = u128::from_str_radix(s, 16).ok()?;
        Some(Self {
            trace_id,
            span_id: Self::generate().span_id,
        })
    }

    /// The trace id as 32 lowercase hex characters.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }
}

/// One recorded stage interval, in microseconds relative to the
/// timeline's epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Stage name (`queue_wait`, `solve`, ...).
    pub name: String,
    /// Microseconds from the timeline epoch to the stage start.
    pub start_us: u64,
    /// Microseconds from the timeline epoch to the stage end
    /// (`>= start_us`).
    pub end_us: u64,
    /// Key/value annotations attached after the stage ran (e.g. the
    /// `solve` stage carries `dp_path` and `eval_table` so traces can
    /// attribute fast-path speedups). Empty for most stages; omitted
    /// from the wire when empty, so pre-annotation traces round-trip
    /// unchanged.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub args: Vec<(String, String)>,
}

impl StageRecord {
    /// The stage duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// A frozen, serializable request timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineRecord {
    /// The request's trace id (lowercase hex, or a client-supplied token).
    pub trace_id: String,
    /// The operation the request performed (`plan`, `ping`, ...).
    pub op: String,
    /// Microseconds from the epoch to the freeze point — the
    /// server-measured wall time of the request.
    pub total_us: u64,
    /// The recorded stage intervals, in recording order.
    pub stages: Vec<StageRecord>,
}

impl TimelineRecord {
    /// The duration of the first stage named `name`, if recorded.
    pub fn stage_us(&self, name: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map(StageRecord::duration_us)
    }

    /// The sum of all recorded stage durations — comparable to
    /// [`total_us`](Self::total_us) to judge timeline coverage.
    pub fn stage_sum_us(&self) -> u64 {
        self.stages.iter().map(StageRecord::duration_us).sum()
    }
}

/// Live recording state; boxed behind [`Timeline`]'s `Option` so the
/// disabled timeline is a single `None` word and allocates nothing.
#[derive(Debug)]
struct Inner {
    ctx: TraceContext,
    /// Overrides `ctx`'s hex id in the frozen record (a client-adopted id).
    adopted_id: Option<String>,
    epoch: Instant,
    stages: Vec<LiveStage>,
}

/// A recorded stage before freezing; args accumulate via
/// [`Timeline::annotate_last`].
#[derive(Debug)]
struct LiveStage {
    name: &'static str,
    start_us: u64,
    end_us: u64,
    args: Vec<(String, String)>,
}

/// A per-request stage recorder. See the module docs.
#[derive(Debug)]
pub struct Timeline {
    inner: Option<Box<Inner>>,
}

impl Timeline {
    /// A timeline that records nothing and holds no allocation: every
    /// call on it is a branch on `None`.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Starts a live timeline with stage offsets measured from `epoch`
    /// (which may predate this call — e.g. when the connection was
    /// accepted — so queued time is attributable).
    pub fn begin(ctx: TraceContext, epoch: Instant) -> Self {
        Self {
            inner: Some(Box::new(Inner {
                ctx,
                adopted_id: None,
                epoch,
                stages: Vec::with_capacity(8),
            })),
        }
    }

    /// [`begin`](Self::begin) with a freshly generated context when
    /// process-global request tracing is on, [`disabled`](Self::disabled)
    /// otherwise. The off path is one relaxed atomic load: no id is
    /// minted, no clock read, nothing allocated.
    pub fn begin_if_enabled(epoch: Instant) -> Self {
        if request_tracing_enabled() {
            Self::begin(TraceContext::generate(), epoch)
        } else {
            Self::disabled()
        }
    }

    /// Whether this timeline is recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id that the frozen record will carry, if recording.
    pub fn trace_id(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        Some(match &inner.adopted_id {
            Some(id) => id.clone(),
            None => inner.ctx.trace_id_hex(),
        })
    }

    /// Adopts a caller-supplied trace id verbatim (e.g. one sent by a
    /// client) in place of the generated hex id. No-op when disabled.
    pub fn adopt_trace_id(&mut self, id: impl Into<String>) {
        if let Some(inner) = &mut self.inner {
            inner.adopted_id = Some(id.into());
        }
    }

    /// Records a stage that ran from `start` to `end`. Instants before
    /// the epoch clamp to it, so retroactive spans (queue wait measured
    /// from accept time) stay non-negative and well-ordered.
    pub fn record_span(&mut self, name: &'static str, start: Instant, end: Instant) {
        if let Some(inner) = &mut self.inner {
            let start_us = micros_since(inner.epoch, start);
            let end_us = micros_since(inner.epoch, end).max(start_us);
            inner.stages.push(LiveStage {
                name,
                start_us,
                end_us,
                args: Vec::new(),
            });
        }
    }

    /// Attaches a `key = value` annotation to the most recently recorded
    /// stage (e.g. the DP path the `solve` stage took, known only after
    /// it returns). No-op when disabled or before any stage is recorded.
    pub fn annotate_last(&mut self, key: impl Into<String>, value: impl Into<String>) {
        if let Some(inner) = &mut self.inner {
            if let Some(stage) = inner.stages.last_mut() {
                stage.args.push((key.into(), value.into()));
            }
        }
    }

    /// Runs `f`, recording it as stage `name`. When disabled this calls
    /// `f` directly without reading the clock.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        match &mut self.inner {
            None => f(),
            Some(inner) => {
                let start = Instant::now();
                let out = f();
                let start_us = micros_since(inner.epoch, start);
                let end_us = micros_since(inner.epoch, Instant::now()).max(start_us);
                inner.stages.push(LiveStage {
                    name,
                    start_us,
                    end_us,
                    args: Vec::new(),
                });
                out
            }
        }
    }

    /// Freezes the current state into a [`TimelineRecord`] without
    /// consuming the timeline (used to embed a timeline in a response
    /// while later stages are still to come). `None` when disabled.
    pub fn snapshot(&self, op: &str) -> Option<TimelineRecord> {
        let inner = self.inner.as_ref()?;
        Some(TimelineRecord {
            trace_id: self.trace_id()?,
            op: op.to_string(),
            total_us: micros_since(inner.epoch, Instant::now()),
            stages: inner
                .stages
                .iter()
                .map(|stage| StageRecord {
                    name: stage.name.to_string(),
                    start_us: stage.start_us,
                    end_us: stage.end_us,
                    args: stage.args.clone(),
                })
                .collect(),
        })
    }

    /// Consumes the timeline into its frozen record; `None` when disabled.
    pub fn finish(self, op: &str) -> Option<TimelineRecord> {
        self.snapshot(op)
    }
}

/// Saturating whole microseconds from `epoch` to `at`.
fn micros_since(epoch: Instant, at: Instant) -> u64 {
    at.saturating_duration_since(epoch).as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn generated_ids_are_unique_and_nonzero() {
        let a = TraceContext::generate();
        let b = TraceContext::generate();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.span_id, b.span_id);
    }

    #[test]
    fn hex_round_trips() {
        let ctx = TraceContext::generate();
        let hex = ctx.trace_id_hex();
        assert_eq!(hex.len(), 32);
        let back = TraceContext::from_hex(&hex).expect("parse");
        assert_eq!(back.trace_id, ctx.trace_id);
        assert!(TraceContext::from_hex("").is_none());
        assert!(TraceContext::from_hex("zz").is_none());
        assert!(TraceContext::from_hex(&"f".repeat(33)).is_none());
    }

    #[test]
    fn timeline_records_ordered_stages() {
        let epoch = Instant::now();
        let mut t = Timeline::begin(TraceContext::generate(), epoch);
        t.record_span("queued", epoch, Instant::now());
        let out = t.time("work", || {
            std::thread::sleep(Duration::from_millis(2));
            41 + 1
        });
        assert_eq!(out, 42);
        let record = t.finish("test").expect("live timeline");
        assert_eq!(record.op, "test");
        assert_eq!(record.stages.len(), 2);
        assert_eq!(record.stages[0].name, "queued");
        assert!(record.stage_us("work").expect("work stage") >= 2_000);
        assert!(record.total_us >= record.stages[1].end_us);
        for s in &record.stages {
            assert!(s.end_us >= s.start_us);
        }
    }

    #[test]
    fn pre_epoch_instants_clamp_to_zero() {
        let early = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let epoch = Instant::now();
        let mut t = Timeline::begin(TraceContext::generate(), epoch);
        t.record_span("retro", early, epoch);
        let record = t.finish("clamp").unwrap();
        assert_eq!(record.stages[0].start_us, 0);
        assert_eq!(record.stages[0].end_us, 0);
    }

    #[test]
    fn disabled_timeline_yields_nothing() {
        let mut t = Timeline::disabled();
        assert!(!t.is_enabled());
        assert!(t.trace_id().is_none());
        t.record_span("ignored", Instant::now(), Instant::now());
        assert_eq!(t.time("ignored", || 7), 7);
        assert!(t.finish("ignored").is_none());
    }

    #[test]
    fn adopted_ids_override_generated_hex() {
        let mut t = Timeline::begin(TraceContext::generate(), Instant::now());
        t.adopt_trace_id("client-abc");
        assert_eq!(t.trace_id().as_deref(), Some("client-abc"));
        assert_eq!(t.finish("op").unwrap().trace_id, "client-abc");
    }
}
