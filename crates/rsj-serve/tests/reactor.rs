//! Reactor-level integration tests: framing under adversarial I/O
//! (byte-split reads, byte-drip peers, unread responses), the v1/v2
//! protocol interop matrix, the `plan_batch` op, and a 512-connection
//! storm checked bit-for-bit against the offline solver.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use reservation_strategies::{PlanRequest, Planner};
use rsj_core::SolverSpec;
use rsj_dist::{DiscretizationScheme, DistSpec};
use rsj_serve::{
    encode, AdmissionConfig, BatchItem, Client, ErrorKind, Request, Response, Server, ServerConfig,
};

fn spawn_server(
    config: ServerConfig,
) -> (
    SocketAddr,
    rsj_serve::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn stop(
    handle: rsj_serve::ShutdownHandle,
    join: std::thread::JoinHandle<std::io::Result<()>>,
) {
    handle.signal();
    join.join().expect("server thread").expect("clean exit");
}

/// One raw request line over a fresh connection, answered with one line.
fn raw_round_trip(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    reply
}

fn fast_dp() -> SolverSpec {
    SolverSpec::Dp {
        scheme: DiscretizationScheme::EqualProbability,
        n: 150,
        epsilon: 1e-6,
        monotone: true,
    }
}

/// The reactor assembles a frame no matter where the peer's writes split
/// it: every byte boundary of a plan request line, exhaustively.
#[test]
fn request_split_at_every_byte_boundary_still_decodes() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut line = encode(&Request::plan(DistSpec::Exponential { lambda: 1.0 })).unwrap();
    line.push('\n');
    let bytes = line.as_bytes();
    for split in 1..bytes.len() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&bytes[..split]).expect("first chunk");
        stream.flush().unwrap();
        // Give the reactor a chance to observe the partial frame.
        std::thread::sleep(Duration::from_millis(1));
        stream.write_all(&bytes[split..]).expect("second chunk");
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        let response: Response = serde_json::from_str(reply.trim())
            .unwrap_or_else(|e| panic!("split at {split}: {e}"));
        assert!(
            matches!(response, Response::Plan { .. }),
            "split at {split}: {response:?}"
        );
    }
    stop(handle, join);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random multi-chunk partitions of a request line (a harsher version
    /// of the exhaustive two-chunk split above).
    #[test]
    fn random_chunked_writes_still_decode(cuts in proptest::collection::vec(0.0f64..1.0, 1..6)) {
        let (addr, handle, join) = spawn_server(ServerConfig::default());
        let mut line = encode(&Request::plan(DistSpec::LogNormal { mu: 1.0, sigma: 0.5 })).unwrap();
        line.push('\n');
        let bytes = line.as_bytes();
        let mut boundaries: Vec<usize> = cuts
            .iter()
            .map(|f| ((f * bytes.len() as f64) as usize).clamp(1, bytes.len() - 1))
            .collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut from = 0;
        for &to in boundaries.iter().chain(std::iter::once(&bytes.len())) {
            stream.write_all(&bytes[from..to]).expect("chunk");
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
            from = to;
        }
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        let response: Response = serde_json::from_str(reply.trim()).expect("parse");
        prop_assert!(matches!(response, Response::Plan { .. }), "{response:?}");
        stop(handle, join);
    }
}

/// A response far larger than the socket buffers, written while the
/// client refuses to read: the reactor must park the remainder, wait for
/// writability, and resume — byte-perfectly — once the client drains.
#[test]
fn partial_writes_resume_when_the_client_finally_reads() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    // A multi-megabyte single-line response (4096 cheap plans in one
    // batch) is far beyond any loopback socket-buffer pair, so the write
    // *must* hit WouldBlock mid-response while the client sleeps.
    let items: Vec<PlanRequest> = (0..4096)
        .map(|i| {
            PlanRequest::new(DistSpec::Exponential {
                lambda: 1.0 + i as f64 * 1e-6,
            })
        })
        .collect();
    let offline_first = items[0].planner().unwrap().plan().unwrap().digest;
    let mut line = encode(&Request::plan_batch(items)).unwrap();
    line.push('\n');
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(line.as_bytes()).expect("send batch");
    // Let the response pile up against a closed window before draining.
    std::thread::sleep(Duration::from_millis(600));
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    assert!(
        reply.len() > 1 << 20,
        "response must dwarf the socket buffers to force a partial write ({} bytes)",
        reply.len()
    );
    let response: Response = serde_json::from_str(reply.trim()).expect("resumed bytes intact");
    match response {
        Response::PlanBatch { results, .. } => {
            assert_eq!(results.len(), 4096);
            assert!(results.iter().all(BatchItem::is_ok));
            match &results[0] {
                BatchItem::Plan { plan, .. } => assert_eq!(plan.digest, offline_first),
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
    stop(handle, join);
}

/// A byte-drip peer (slowloris) never completes a line, so it never
/// refreshes its idle deadline: the reactor evicts it on schedule even
/// though bytes keep arriving.
#[test]
fn byte_drip_peer_is_evicted_at_the_idle_deadline() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        read_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let drip = stream.try_clone().expect("clone");
    let dripper = std::thread::spawn(move || {
        let mut drip = drip;
        // One request byte every 50 ms, never a newline.
        for _ in 0..100 {
            if drip.write_all(b"{").is_err() {
                break; // server already hung up
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    let mut buf = [0u8; 16];
    let n = stream.read(&mut buf).expect("read until server close");
    let elapsed = started.elapsed();
    assert_eq!(n, 0, "eviction closes without a reply");
    assert!(
        elapsed >= Duration::from_millis(300) && elapsed < Duration::from_secs(5),
        "evicted at the idle deadline, not sooner or much later: {elapsed:?}"
    );
    drop(stream);
    dripper.join().unwrap();
    stop(handle, join);
}

/// 512 concurrent connections, each planning one of four distributions:
/// every digest must be bit-identical to the offline facade's plan.
#[test]
fn five_hundred_twelve_connections_get_offline_identical_digests() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        workers: 4,
        admission: AdmissionConfig {
            capacity: 2048,
            high_watermark: 2048,
            low_watermark: 512,
        },
        read_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    });
    let dists = [
        DistSpec::Exponential { lambda: 1.0 },
        DistSpec::LogNormal { mu: 3.0, sigma: 0.5 },
        DistSpec::Weibull {
            lambda: 1.0,
            kappa: 0.5,
        },
        DistSpec::Gamma {
            alpha: 2.0,
            beta: 1.0,
        },
    ];
    let offline: Vec<String> = dists
        .iter()
        .map(|spec| {
            Planner::builder()
                .distribution(spec.clone())
                .solver(fast_dp())
                .build()
                .unwrap()
                .plan()
                .unwrap()
                .digest
        })
        .collect();
    let clients: Vec<_> = (0..512)
        .map(|i| {
            let spec = dists[i % dists.len()].clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                match client
                    .call(&Request::plan_with(spec, fast_dp()))
                    .unwrap_or_else(|e| panic!("conn {i}: {e}"))
                {
                    Response::Plan { plan, .. } => plan.digest,
                    other => panic!("conn {i}: {other:?}"),
                }
            })
        })
        .collect();
    for (i, c) in clients.into_iter().enumerate() {
        let digest = c.join().expect("client thread");
        assert_eq!(digest, offline[i % offline.len()], "conn {i}");
    }
    stop(handle, join);
}

/// The version interop matrix: the server answers in the version each
/// client speaks, bare frames default to v1, and v2-only ops are typed
/// rejections below v2.
#[test]
fn v1_v2_interop_matrix() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let plan_v1 = r#"{"op":"plan","distribution":{"family":"exponential","lambda":1.0}}"#;
    let batch_items = r#""items":[{"distribution":{"family":"exponential","lambda":1.0}}]"#;
    // (request line, expected response version, expects-error kind)
    let matrix: Vec<(String, u32, Option<ErrorKind>)> = vec![
        // Bare frames default to v1 and are answered at v1.
        (r#"{"op":"ping"}"#.to_string(), 1, None),
        (plan_v1.to_string(), 1, None),
        // Explicit v1 and v2 clients each get their own version back.
        (r#"{"op":"ping","v":1}"#.to_string(), 1, None),
        (r#"{"op":"ping","v":2}"#.to_string(), 2, None),
        (plan_v1.replace(r#""op":"plan","#, r#""op":"plan","v":2,"#), 2, None),
        // The batch op exists only at v2.
        (format!(r#"{{"op":"plan_batch","v":2,{batch_items}}}"#), 2, None),
        (
            format!(r#"{{"op":"plan_batch",{batch_items}}}"#),
            1,
            Some(ErrorKind::UnsupportedVersion),
        ),
        (
            format!(r#"{{"op":"plan_batch","v":1,{batch_items}}}"#),
            1,
            Some(ErrorKind::UnsupportedVersion),
        ),
        // Versions beyond the range are typed rejections.
        (
            r#"{"op":"ping","v":3}"#.to_string(),
            1,
            Some(ErrorKind::UnsupportedVersion),
        ),
    ];
    for (line, want_v, want_error) in matrix {
        let reply = raw_round_trip(addr, &line);
        let response: Response =
            serde_json::from_str(reply.trim()).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(response.version(), want_v, "{line} -> {reply}");
        match want_error {
            None => assert!(
                !matches!(response, Response::Error { .. }),
                "{line} -> {reply}"
            ),
            Some(kind) => match response {
                Response::Error { kind: got, .. } => assert_eq!(got, kind, "{line}"),
                other => panic!("{line}: expected {kind:?}, got {other:?}"),
            },
        }
    }
    stop(handle, join);
}

/// `plan_batch` round trip with mixed outcomes: good items plan, the bad
/// item fails alone, order is preserved, and a repeat batch is served
/// from cache with digests matching the offline solver bit-for-bit.
#[test]
fn plan_batch_round_trips_mixed_ok_and_error_items() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let items = vec![
        PlanRequest::new(DistSpec::Exponential { lambda: 1.0 }).with_solver(fast_dp()),
        PlanRequest::new(DistSpec::Exponential { lambda: -1.0 }).with_solver(fast_dp()),
        PlanRequest::new(DistSpec::LogNormal { mu: 3.0, sigma: 0.5 }).with_solver(fast_dp()),
    ];
    let offline: Vec<Option<String>> = items
        .iter()
        .map(|item| item.planner().ok().map(|p| p.plan().unwrap().digest))
        .collect();

    let results = client.plan_batch(items.clone()).expect("batch call");
    assert_eq!(results.len(), 3);
    for (i, (item, want)) in results.iter().zip(&offline).enumerate() {
        match (item, want) {
            (BatchItem::Plan { plan, provenance }, Some(digest)) => {
                assert_eq!(&plan.digest, digest, "item {i}");
                assert!(!provenance.cached, "item {i}: first batch must compute");
            }
            (BatchItem::Error { kind, .. }, None) => {
                assert_eq!(*kind, ErrorKind::InvalidDistribution, "item {i}");
            }
            (got, want) => panic!("item {i}: got {got:?}, want ok={}", want.is_some()),
        }
    }

    // The same batch again: good items now come from the plan cache.
    let again = client.plan_batch(items).expect("repeat batch");
    for (i, item) in again.iter().enumerate() {
        if let BatchItem::Plan { plan, provenance } = item {
            assert!(provenance.cached, "item {i}: repeat must hit cache");
            assert_eq!(Some(&plan.digest), offline[i].as_ref(), "item {i}");
        }
    }
    stop(handle, join);
}

/// `ResilientClient::plan_batch` re-sends only the failed items: a fake
/// server answers the first attempt with one plan and one retryable
/// error, and must see a 1-item batch (with a fresh trace id) on the
/// second attempt.
#[test]
fn resilient_plan_batch_retries_only_the_failed_items() {
    use rsj_serve::{decode_request, BreakerConfig, ResilientClient, RetryPolicy};

    let plan = Planner::builder()
        .distribution(DistSpec::Exponential { lambda: 1.0 })
        .build()
        .unwrap()
        .plan()
        .unwrap();
    let provenance = rsj_serve::Provenance {
        server: "fake/0".to_string(),
        protocol: 2,
        solver: "mean_by_mean".to_string(),
        threads: 1,
        cached: false,
        coalesced: false,
    };

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let plan_for_server = plan.clone();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut read_batch = || {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            match decode_request(line.trim()).expect("decode") {
                Request::PlanBatch {
                    items, trace_id, ..
                } => (items, trace_id.expect("minted trace id")),
                other => panic!("expected plan_batch, got {other:?}"),
            }
        };
        // Attempt 1: two items → one plan, one retryable error.
        let (items, trace_a) = read_batch();
        assert_eq!(items.len(), 2, "first attempt carries the full batch");
        let first = Response::PlanBatch {
            v: 2,
            results: vec![
                BatchItem::Plan {
                    plan: plan_for_server.clone(),
                    provenance: provenance.clone(),
                },
                BatchItem::error(ErrorKind::Internal, "injected transient failure"),
            ],
            trace_id: None,
            timeline: None,
        };
        writer
            .write_all(format!("{}\n", encode(&first).unwrap()).as_bytes())
            .unwrap();
        // Attempt 2: only the failed item comes back, under a new id.
        let (items, trace_b) = read_batch();
        assert_eq!(items.len(), 1, "retry must re-send only the failed item");
        assert_eq!(
            items[0].distribution,
            DistSpec::LogNormal { mu: 3.0, sigma: 0.5 },
            "the retried item is the one that failed"
        );
        assert_ne!(trace_a, trace_b, "each attempt carries a fresh trace id");
        let second = Response::PlanBatch {
            v: 2,
            results: vec![BatchItem::Plan {
                plan: plan_for_server,
                provenance,
            }],
            trace_id: None,
            timeline: None,
        };
        writer
            .write_all(format!("{}\n", encode(&second).unwrap()).as_bytes())
            .unwrap();
    });

    let mut client = ResilientClient::new(
        addr.to_string(),
        RetryPolicy {
            base_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        BreakerConfig::default(),
    );
    let results = client
        .plan_batch(
            vec![
                PlanRequest::new(DistSpec::Exponential { lambda: 1.0 }),
                PlanRequest::new(DistSpec::LogNormal { mu: 3.0, sigma: 0.5 }),
            ],
            None,
        )
        .expect("batch with partial retry");
    server.join().expect("fake server");
    assert_eq!(results.len(), 2);
    assert!(results[0].is_ok() && results[1].is_ok(), "{results:?}");
    assert_eq!(client.retries_spent(), 1, "exactly one retry");
}

/// A non-retryable per-item error is returned as-is without burning a
/// retry, and an empty batch never touches the wire.
#[test]
fn resilient_plan_batch_does_not_retry_fatal_items() {
    use rsj_serve::{BreakerConfig, ResilientClient, RetryPolicy};

    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = ResilientClient::new(
        addr.to_string(),
        RetryPolicy {
            base_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        BreakerConfig::default(),
    );
    assert_eq!(client.plan_batch(vec![], None).expect("empty"), vec![]);
    let results = client
        .plan_batch(
            vec![
                PlanRequest::new(DistSpec::Exponential { lambda: 1.0 }),
                PlanRequest::new(DistSpec::Exponential { lambda: -1.0 }),
            ],
            Some(5_000),
        )
        .expect("batch");
    assert!(results[0].is_ok());
    assert_eq!(results[1].error_kind(), Some(ErrorKind::InvalidDistribution));
    assert_eq!(client.retries_spent(), 0, "fatal items must not retry");
    assert!(client.last_trace_id().is_some(), "attempts are traced");
    stop(handle, join);
}
