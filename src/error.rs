//! The workspace-level error type.
//!
//! Every layer of the workspace has its own typed error (`DistError`,
//! `CoreError`, `SimError`, `ParError`); applications built on the
//! [`Planner`](crate::Planner) facade get them unified under one
//! [`RsjError`] with `From` conversions, so `?` works across layers.

use std::fmt;

/// Top-level error for the `reservation-strategies` facade: every
/// layer-specific error converts into it, plus a `Config` variant for
/// mistakes in how the facade itself was driven (missing distribution,
/// unparsable solver name carried as a typed sub-error, …).
#[derive(Debug, Clone, PartialEq)]
pub enum RsjError {
    /// Distribution-layer failure (invalid parameters, degenerate fits).
    Dist(rsj_dist::DistError),
    /// Planning-layer failure (invalid cost model, no valid sequence).
    Core(rsj_core::CoreError),
    /// Simulation-layer failure (empty batches, non-finite samples).
    Sim(rsj_sim::SimError),
    /// Parallel-execution failure (bad thread config, worker panic).
    Par(rsj_par::ParError),
    /// The facade was configured incompletely or inconsistently.
    Config {
        /// Which piece of configuration is wrong (`distribution`, …).
        what: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for RsjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsjError::Dist(e) => write!(f, "distribution error: {e}"),
            RsjError::Core(e) => write!(f, "planning error: {e}"),
            RsjError::Sim(e) => write!(f, "simulation error: {e}"),
            RsjError::Par(e) => write!(f, "parallel execution error: {e}"),
            RsjError::Config { what, reason } => {
                write!(f, "invalid {what} configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for RsjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RsjError::Dist(e) => Some(e),
            RsjError::Core(e) => Some(e),
            RsjError::Sim(e) => Some(e),
            RsjError::Par(e) => Some(e),
            RsjError::Config { .. } => None,
        }
    }
}

impl From<rsj_dist::DistError> for RsjError {
    fn from(e: rsj_dist::DistError) -> Self {
        RsjError::Dist(e)
    }
}

impl From<rsj_core::CoreError> for RsjError {
    fn from(e: rsj_core::CoreError) -> Self {
        // A distribution error that bubbled through the core layer is
        // still a distribution error to the caller.
        match e {
            rsj_core::CoreError::Dist(d) => RsjError::Dist(d),
            other => RsjError::Core(other),
        }
    }
}

impl From<rsj_sim::SimError> for RsjError {
    fn from(e: rsj_sim::SimError) -> Self {
        match e {
            rsj_sim::SimError::Parallel(p) => RsjError::Par(p),
            other => RsjError::Sim(other),
        }
    }
}

impl From<rsj_par::ParError> for RsjError {
    fn from(e: rsj_par::ParError) -> Self {
        RsjError::Par(e)
    }
}

/// Convenience alias for facade entry points.
pub type Result<T> = std::result::Result<T, RsjError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_errors_convert_and_display() {
        let core: RsjError = rsj_core::CoreError::EmptySequence.into();
        assert_eq!(core, RsjError::Core(rsj_core::CoreError::EmptySequence));
        assert!(core.to_string().contains("planning error"));

        // Nested distribution errors unwrap to the Dist variant no matter
        // which layer they passed through.
        let dist_err = rsj_dist::DistError::DegenerateSample {
            reason: "empty evaluation grid",
        };
        let through_core: RsjError = rsj_core::CoreError::Dist(dist_err.clone()).into();
        assert_eq!(through_core, RsjError::Dist(dist_err));

        let par_err = rsj_par::ParError::ZeroThreads;
        let through_sim: RsjError = rsj_sim::SimError::Parallel(par_err.clone()).into();
        assert_eq!(through_sim, RsjError::Par(par_err));
    }
}
