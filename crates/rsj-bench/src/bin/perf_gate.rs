//! CI perf gate for the solver fast path (`results/perf_gate.json`).
//!
//! Wall-clock is too noisy to gate on in a shared 1-CPU container, so the
//! gate tracks **deterministic iteration counters** instead: the monotone
//! DP's candidate-evaluation count and the exact pass's transition count
//! are pure functions of the workload, so any regression in them is a real
//! algorithmic regression, not scheduler noise.
//!
//! Fixed workload: every Table 1 distribution × both discretization
//! schemes at `n = 400`, RESERVATIONONLY cost. For each case the gate
//! records
//!
//! * the FNV-1a digest of the auto-dispatch solution (and checks it
//!   against a forced exact solve — the bit-identity contract);
//! * whether the monotone gate fired;
//! * the monotone candidate-evaluation count.
//!
//! Modes:
//!
//! * no arguments — run the workload and (re)write
//!   `results/perf_gate.json`;
//! * `--check` — run the workload and compare against the committed
//!   baseline: any digest mismatch, any case whose gate stops firing, or a
//!   total evaluation count more than 10% above baseline fails with exit
//!   code 1.

use rsj_bench::perf::{digest_f64s, PERF_SCHEMA_VERSION};
use rsj_bench::report;
use rsj_core::heuristics::{optimal_discrete, optimal_discrete_exact};
use rsj_core::CostModel;
use rsj_dist::{discretize, DiscretizationScheme, DistSpec};
use serde::{Deserialize, Serialize};

/// Discretization size of the gate workload — fixed (not fidelity-scaled)
/// so the committed baseline is byte-stable across environments.
const GATE_N: usize = 400;
/// Truncation quantile, matching the solver suite's default.
const GATE_EPSILON: f64 = 1e-7;
/// Allowed relative growth of the total evaluation count before the gate
/// fails.
const TOLERANCE: f64 = 0.10;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GateCase {
    distribution: String,
    scheme: String,
    /// FNV-1a digest of `[expected_cost, values...]` from the auto path.
    digest: String,
    /// The monotone fast path solved this case (no runtime decline).
    monotone_fired: bool,
    /// Candidate evaluations spent by the monotone pass.
    monotone_evals: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GateBaseline {
    schema_version: u32,
    n: usize,
    epsilon: f64,
    /// Sum of `monotone_evals` over all cases — the gated quantity.
    total_monotone_evals: u64,
    cases: Vec<GateCase>,
}

fn run_workload() -> GateBaseline {
    let cost = CostModel::reservation_only();
    let reg = rsj_obs::global_registry();
    let mut cases = Vec::new();
    for (name, spec) in DistSpec::paper_table1() {
        let dist = spec.build().expect("Table 1 specs build");
        for (tag, scheme) in [
            ("equal_time", DiscretizationScheme::EqualTime),
            ("equal_probability", DiscretizationScheme::EqualProbability),
        ] {
            let d = discretize(dist.as_ref(), scheme, GATE_N, GATE_EPSILON)
                .expect("Table 1 discretizations succeed");
            let evals_before = reg.counter("rsj_core_dp_monotone_evals_total").get();
            let solves_before = reg.counter("rsj_core_dp_monotone_solves_total").get();
            let sol = optimal_discrete(&d, &cost).expect("auto solver succeeds");
            let monotone_evals =
                reg.counter("rsj_core_dp_monotone_evals_total").get() - evals_before;
            let monotone_fired =
                reg.counter("rsj_core_dp_monotone_solves_total").get() > solves_before;
            // Digest diff against the forced exact pass: the fast path is
            // only admissible while it is bit-identical.
            let exact = optimal_discrete_exact(&d, &cost).expect("exact solver succeeds");
            let digest = digest_f64s(std::iter::once(sol.expected_cost).chain(sol.values));
            let exact_digest =
                digest_f64s(std::iter::once(exact.expected_cost).chain(exact.values));
            assert_eq!(
                digest, exact_digest,
                "{name}/{tag}: monotone solution diverged from the exact pass"
            );
            cases.push(GateCase {
                distribution: name.to_string(),
                scheme: tag.to_string(),
                digest,
                monotone_fired,
                monotone_evals,
            });
        }
    }
    GateBaseline {
        schema_version: PERF_SCHEMA_VERSION,
        n: GATE_N,
        epsilon: GATE_EPSILON,
        total_monotone_evals: cases.iter().map(|c| c.monotone_evals).sum(),
        cases,
    }
}

fn check(current: &GateBaseline) -> Result<(), String> {
    let path = report::results_dir().join("perf_gate.json");
    let body = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let baseline: GateBaseline =
        serde_json::from_str(&body).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    if baseline.n != current.n || baseline.epsilon != current.epsilon {
        return Err(format!(
            "workload shape changed (baseline n={} ε={}, current n={} ε={}); regenerate the baseline",
            baseline.n, baseline.epsilon, current.n, current.epsilon
        ));
    }
    let mut failures = Vec::new();
    for base in &baseline.cases {
        let Some(cur) = current
            .cases
            .iter()
            .find(|c| c.distribution == base.distribution && c.scheme == base.scheme)
        else {
            failures.push(format!(
                "{}/{}: case missing from current run",
                base.distribution, base.scheme
            ));
            continue;
        };
        if cur.digest != base.digest {
            failures.push(format!(
                "{}/{}: digest changed {} -> {}",
                base.distribution, base.scheme, base.digest, cur.digest
            ));
        }
        if base.monotone_fired && !cur.monotone_fired {
            failures.push(format!(
                "{}/{}: monotone gate stopped firing (fell back to O(n²))",
                base.distribution, base.scheme
            ));
        }
    }
    let limit = (baseline.total_monotone_evals as f64 * (1.0 + TOLERANCE)) as u64;
    if current.total_monotone_evals > limit {
        failures.push(format!(
            "total monotone evaluations regressed >{:.0}%: {} -> {} (limit {})",
            TOLERANCE * 100.0,
            baseline.total_monotone_evals,
            current.total_monotone_evals,
            limit
        ));
    }
    if failures.is_empty() {
        println!(
            "perf gate OK: {} cases, {} evaluations (baseline {}, limit {})",
            current.cases.len(),
            current.total_monotone_evals,
            baseline.total_monotone_evals,
            limit
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    rsj_obs::set_metrics_enabled(true);
    let mode_check = match std::env::args().nth(1).as_deref() {
        Some("--check") => true,
        None => false,
        Some(other) => {
            eprintln!("unknown argument: {other}\nusage: perf_gate [--check]");
            std::process::exit(2);
        }
    };
    let current = run_workload();
    if mode_check {
        if let Err(msg) = check(&current) {
            eprintln!("perf gate FAILED:\n{msg}");
            std::process::exit(1);
        }
    } else {
        let mut body = serde_json::to_string_pretty(&current).expect("gate is serializable");
        body.push('\n');
        let path = report::write_result_file("perf_gate.json", &body)?;
        println!("perf gate baseline written to {}", path.display());
    }
    Ok(())
}
