//! The performance manifest: wall-time per experiment plus the full
//! metrics snapshot (solver counters, per-batch histograms), written by
//! `run_all` to `results/perf_manifest.json` so solver performance is a
//! tracked artifact rather than folklore.

use rsj_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Bumped when the manifest layout changes incompatibly.
///
/// v2: per-step `threads` in the manifest; solver-baseline rows carry
/// `threads`, `speedup_vs_serial` and a determinism `digest`.
///
/// v3: a `host` section recording `available_parallelism` and the global
/// pool width — without it, speedup columns were uninterpretable (a
/// `speedup_vs_serial ≈ 1` row is expected on a 1-CPU container and a
/// regression on a 16-CPU box, and the old format could not tell them
/// apart).
pub const PERF_SCHEMA_VERSION: u32 = 3;

fn default_schema_version() -> u32 {
    PERF_SCHEMA_VERSION
}

fn default_threads() -> usize {
    1
}

/// The machine a performance artifact was produced on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HostInfo {
    /// `std::thread::available_parallelism()` at run time (0 when the
    /// platform could not report it).
    #[serde(default)]
    pub available_parallelism: usize,
    /// Width of the installed global `rsj-par` pool when the artifact was
    /// written (what the solvers actually used).
    #[serde(default)]
    pub pool_threads: usize,
}

impl HostInfo {
    /// Captures the current process's view of the machine.
    pub fn capture() -> Self {
        Self {
            available_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(0),
            pool_threads: rsj_par::Parallelism::current().threads(),
        }
    }
}

/// Wall time of one experiment step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTiming {
    /// Step name as shown in the run log (e.g. `"Table 2"`).
    pub name: String,
    /// Wall-clock seconds the step took.
    pub wall_seconds: f64,
    /// Worker threads the step ran with (defaults to 1 when reading
    /// manifests written before the parallel layer).
    #[serde(default = "default_threads")]
    pub threads: usize,
}

/// FNV-1a over the IEEE-754 bit patterns of `values`, rendered as 16 hex
/// digits. Equal digests across runs at different thread counts certify
/// bit-for-bit identical results — the determinism contract of `rsj-par`.
pub fn digest_f64s(values: impl IntoIterator<Item = f64>) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// The `results/perf_manifest.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfManifest {
    /// Layout version ([`PERF_SCHEMA_VERSION`]).
    #[serde(default = "default_schema_version")]
    pub schema_version: u32,
    /// `"Quick"` or `"Paper"` — the fidelity the suite ran at.
    pub fidelity: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Whole-suite wall-clock seconds.
    pub total_wall_seconds: f64,
    /// The machine the run executed on (defaults to zeros when reading
    /// pre-v3 manifests).
    #[serde(default)]
    pub host: HostInfo,
    /// Per-step timings, in execution order.
    #[serde(default)]
    pub experiments: Vec<ExperimentTiming>,
    /// The global registry at the end of the run: solver wall-time
    /// histograms (p50/p95/p99), candidate/state counters, per-batch
    /// fault/refit counters.
    #[serde(default)]
    pub metrics: MetricsSnapshot,
}

impl PerfManifest {
    /// An empty manifest for a run at `fidelity` with `seed`.
    pub fn new(fidelity: impl Into<String>, seed: u64) -> Self {
        Self {
            schema_version: PERF_SCHEMA_VERSION,
            fidelity: fidelity.into(),
            seed,
            total_wall_seconds: 0.0,
            host: HostInfo::capture(),
            experiments: Vec::new(),
            metrics: MetricsSnapshot::default(),
        }
    }

    /// Records one finished step and the thread count it ran with.
    pub fn push_step(&mut self, name: impl Into<String>, wall_seconds: f64, threads: usize) {
        self.experiments.push(ExperimentTiming {
            name: name.into(),
            wall_seconds,
            threads,
        });
    }

    /// Pretty JSON (round-trip-exact floats, same convention as the
    /// metrics exporters).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest is serializable")
    }

    /// Writes the manifest to `results/perf_manifest.json` (honouring
    /// `RSJ_RESULTS_DIR`) and returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let mut body = self.to_json();
        body.push('\n');
        crate::report::write_result_file("perf_manifest.json", &body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfManifest {
        let mut m = PerfManifest::new("Quick", 7);
        m.push_step("Table 2", 1.25, 4);
        m.push_step("Figure 3", 0.5, 1);
        m.total_wall_seconds = 1.75;
        let reg = rsj_obs::Registry::new();
        reg.counter("rsj_core_dp_solves_total").add(3);
        reg.histogram("rsj_core_dp_wall_seconds").observe(0.125);
        m.metrics = reg.snapshot();
        m
    }

    #[test]
    fn json_round_trips_bit_for_bit() {
        let m = sample();
        let json = m.to_json();
        let back: PerfManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn old_manifest_without_new_fields_still_parses() {
        let json = r#"{"fidelity": "Paper", "seed": 1, "total_wall_seconds": 9.5}"#;
        let m: PerfManifest = serde_json::from_str(json).unwrap();
        assert_eq!(m.schema_version, PERF_SCHEMA_VERSION);
        assert!(m.experiments.is_empty());
        assert!(m.metrics.is_empty());
        // Pre-v3 manifests have no host section; zeros mean "unknown".
        assert_eq!(m.host, HostInfo::default());
        // A v1 step (no threads field) defaults to 1 worker.
        let json = r#"{"name": "Table 2", "wall_seconds": 0.5}"#;
        let t: ExperimentTiming = serde_json::from_str(json).unwrap();
        assert_eq!(t.threads, 1);
    }

    #[test]
    fn host_capture_reports_the_machine() {
        let host = HostInfo::capture();
        assert!(host.available_parallelism >= 1);
        assert!(host.pool_threads >= 1);
    }

    #[test]
    fn digest_is_stable_and_bit_sensitive() {
        let a = digest_f64s([1.0, 2.5, -0.0]);
        assert_eq!(a, digest_f64s([1.0, 2.5, -0.0]));
        assert_eq!(a.len(), 16);
        // +0.0 and -0.0 compare equal but differ in bits — the digest is
        // over bit patterns, so it must tell them apart.
        assert_ne!(a, digest_f64s([1.0, 2.5, 0.0]));
        assert_ne!(digest_f64s([]), digest_f64s([0.0]));
    }
}
