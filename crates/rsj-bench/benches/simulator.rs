//! Criterion: discrete-event queue-simulator throughput, and the FCFS vs
//! EASY-backfilling policy ablation (DESIGN.md S9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rsj_dist::LogNormal;
use rsj_sim::{generate_workload, simulate, ClusterConfig, SchedulerPolicy, WorkloadConfig};

fn bench_simulator(c: &mut Criterion) {
    let runtime = LogNormal::from_moments(3.0, 3.0).unwrap();
    let workload = |count: usize| WorkloadConfig {
        arrival_rate: 1.85,
        processor_choices: vec![(64, 0.25), (128, 0.2), (204, 0.2), (409, 0.15), (1024, 0.2)],
        overestimate: (1.1, 3.0),
        count,
    };

    let mut group = c.benchmark_group("queue_simulation");
    group.sample_size(10);
    for count in [1000usize, 4000, 16_000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let jobs = generate_workload(&workload(count), &runtime, &mut rng);
        group.throughput(Throughput::Elements(count as u64));
        for policy in [
            SchedulerPolicy::Fcfs,
            SchedulerPolicy::EasyBackfill,
            SchedulerPolicy::Conservative,
            SchedulerPolicy::SlurmLike(rsj_sim::PriorityConfig {
                high_priority_proc_hours: 500.0,
                upgrade_after: 24.0,
            }),
        ] {
            let cfg = ClusterConfig {
                processors: 2048,
                policy,
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{policy:?}"), count),
                &jobs,
                |b, jobs| {
                    b.iter(|| simulate(&cfg, jobs));
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("workload_generation");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("generate_10k_jobs", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            generate_workload(&workload(10_000), &runtime, &mut rng)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
