//! Exponential distribution `Exp(λ)` (Table 1 / Table 5).

use crate::error::{check_param, Result};
use crate::traits::{ContinuousDistribution, Support};

/// Exponential distribution with rate `λ > 0`, support `[0, ∞)`.
///
/// Paper instantiation: `λ = 1.0`. The memoryless property makes its
/// Mean-by-Mean recurrence trivial: `t_i = t_{i-1} + 1/λ` (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an `Exp(λ)` distribution.
    pub fn new(lambda: f64) -> Result<Self> {
        check_param("lambda", lambda, "must be > 0", lambda > 0.0)?;
        Ok(Self { lambda })
    }

    /// The rate parameter `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl ContinuousDistribution for Exponential {
    fn name(&self) -> String {
        format!("Exponential(λ={})", self.lambda)
    }

    fn cache_key(&self) -> Option<String> {
        Some(self.name())
    }

    fn support(&self) -> Support {
        Support::Unbounded { lower: 0.0 }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * t).exp()
        }
    }

    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(-self.lambda * t).exp_m1()
        }
    }

    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (-self.lambda * t).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p out of [0,1]: {p}");
        if p == 1.0 {
            return f64::INFINITY;
        }
        -(-p).ln_1p() / self.lambda // -ln(1-p)/λ without cancellation
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    fn variance(&self) -> f64 {
        1.0 / (self.lambda * self.lambda)
    }

    fn conditional_mean_above(&self, tau: f64) -> f64 {
        // Memorylessness: E[X | X > τ] = τ + 1/λ.
        if tau <= 0.0 {
            self.mean()
        } else {
            tau + 1.0 / self.lambda
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn moments() {
        let d = Exponential::new(2.0).unwrap();
        assert!((d.mean() - 0.5).abs() < 1e-15);
        assert!((d.variance() - 0.25).abs() < 1e-15);
        assert!((d.second_moment() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn cdf_quantile_inverse() {
        let d = Exponential::new(1.3).unwrap();
        for &p in &[0.0, 0.1, 0.5, 0.9, 0.999, 1.0 - 1e-12] {
            let t = d.quantile(p);
            assert!((d.cdf(t) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn survival_tail_precision() {
        let d = Exponential::new(1.0).unwrap();
        // At t = 50, 1 - cdf underflows to 0 in naive arithmetic but the
        // direct survival stays exact.
        assert!((d.survival(50.0) - (-50.0f64).exp()).abs() < 1e-30);
    }

    #[test]
    fn conditional_mean_is_memoryless() {
        let d = Exponential::new(0.5).unwrap();
        assert!((d.conditional_mean_above(3.0) - 5.0).abs() < 1e-12);
        // Default-quadrature cross-check.
        let numeric = {
            let s = d.survival(3.0);
            3.0 + crate::quadrature::integrate_to_inf(|t| d.survival(t), 3.0, 1e-12).value / s
        };
        assert!((d.conditional_mean_above(3.0) - numeric).abs() < 1e-6);
    }

    #[test]
    fn median_is_ln2_over_lambda() {
        let d = Exponential::new(1.0).unwrap();
        assert!((d.median() - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_mean() {
        use rand::SeedableRng;
        let d = Exponential::new(1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp_mean = sum / n as f64;
        assert!((emp_mean - 1.0).abs() < 0.01, "empirical mean {emp_mean}");
    }
}
