//! Extensions beyond the paper's core model, implementing its §7 future
//! work:
//!
//! * [`checkpoint`] — checkpoint snapshots at the end of reservations,
//!   including an exact DP for discrete distributions;
//! * [`multiresource`] — reservations as (processors, duration) pairs
//!   under parallel speedup models, reduced to the 1-D problem per width.

pub mod checkpoint;
pub mod multiresource;

pub use checkpoint::{
    expected_cost_checkpointed, optimal_discrete_checkpointed, run_job_checkpointed,
    CheckpointConfig, CheckpointDpSolution,
};
pub use multiresource::{MultiResourcePlan, MultiResourcePlanner, SpeedupModel, WidthPolicy};
