//! # rsj-serve
//!
//! A multi-client planning service for *Reservation Strategies for
//! Stochastic Jobs* (system S22 of DESIGN.md): a long-running TCP server
//! that computes reservation plans on demand, behind the stable
//! [`Planner`](reservation_strategies::Planner) facade.
//!
//! * **Protocol** ([`protocol`]) — versioned, line-delimited JSON: one
//!   request object per line (`op`: `plan` / `metrics` / `ping` /
//!   `shutdown`), one response object per line. Plan requests are exactly
//!   a `Planner` configuration on the wire (`DistSpec` + `CostModel` +
//!   `SolverSpec` + optional simulate), and plan responses embed the
//!   facade's [`Plan`](reservation_strategies::Plan) verbatim, FNV-1a
//!   sequence digest included — so served plans diff bit-for-bit against
//!   offline artifacts.
//! * **Server** ([`server`]) — a fixed accept loop feeding a bounded
//!   worker pool, a sharded exact-LRU plan cache ([`cache`]) keyed on the
//!   planner's faithful cache key, per-connection request limits and read
//!   timeouts, graceful shutdown that drains in-flight requests, and full
//!   `rsj-obs` instrumentation (request/error/cache counters, a latency
//!   histogram, Prometheus exposition via the `metrics` op).
//! * **Client** ([`client`]) — a small blocking client used by
//!   `rsj request` and the integration tests.
//!
//! ```no_run
//! use rsj_serve::{Client, Request, Server, ServerConfig};
//! use rsj_dist::DistSpec;
//!
//! let server = Server::bind(ServerConfig::default())?;
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let response = client.call(&Request::plan(DistSpec::Exponential { lambda: 1.0 }))?;
//! # let _ = response;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::PlanCache;
pub use client::{Client, ClientError};
pub use protocol::{
    classify, decode_request, encode, ErrorKind, Provenance, Request, Response, Timings,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ShutdownHandle};
