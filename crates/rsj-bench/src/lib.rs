//! # rsj-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5):
//!
//! | target | binary | paper content |
//! |---|---|---|
//! | Table 2 | `table2` | heuristics × distributions, RESERVATIONONLY |
//! | Table 3 | `table3` | Brute-Force `t₁` vs quantile probes |
//! | Table 4 | `table4` | discretization heuristics vs sample count |
//! | Figure 1 | `fig1` | neuroscience trace fits |
//! | Figure 2 | `fig2` | simulated wait-time curve + affine fit |
//! | Figure 3 | `fig3` | `t₁` sweep landscapes |
//! | Figure 4 | `fig4` | NeuroHPC robustness sweep |
//! | §3.5 | `exp_s1` | optimal exponential `s₁ ≈ 0.74219` |
//!
//! All binaries honour `RSJ_FIDELITY=quick|paper` (default `paper`) and
//! `RSJ_RESULTS_DIR` (default `./results`). Criterion micro-benchmarks live
//! in `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod report;
pub mod scenarios;

/// Default RNG seed shared by the experiment binaries; fixed for
/// reproducibility of the committed `results/`.
pub const DEFAULT_SEED: u64 = 20190520; // IPDPS 2019 conference date
