//! The nine continuous job-runtime distributions of the paper's Table 1
//! (system S2 of DESIGN.md), each with the closed-form CDF / quantile /
//! moments of Table 5 and the conditional-expectation recurrences of
//! Appendix B.

mod beta_dist;
mod bounded_pareto;
mod exponential;
mod gamma_dist;
mod lognormal;
mod pareto;
mod truncated_normal;
mod uniform;
mod weibull;

pub use beta_dist::BetaDist;
pub use bounded_pareto::BoundedPareto;
pub use exponential::Exponential;
pub use gamma_dist::GammaDist;
pub use lognormal::LogNormal;
pub use pareto::Pareto;
pub use truncated_normal::TruncatedNormal;
pub use uniform::Uniform;
pub use weibull::Weibull;
