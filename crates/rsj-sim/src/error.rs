//! Typed errors for the simulation crate, replacing panic-prone paths
//! reachable from user input (CLI configs, batch parameters).

use std::fmt;

/// Error returned by batch runners and fault-injection configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A batch runner was asked to run zero jobs.
    EmptyBatch,
    /// A per-job cost came out non-finite (NaN or infinite), so order
    /// statistics are undefined.
    NonFiniteCost {
        /// Index of the offending outcome within the batch.
        index: usize,
        /// The offending cost value.
        value: f64,
    },
    /// A fault-injection or resilience parameter violated its requirement.
    InvalidParameter {
        /// Parameter name as it appears in the configuration.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable requirement (e.g. `must be > 0`).
        requirement: &'static str,
    },
    /// A sampled job duration was non-finite — the generating distribution
    /// is malformed, so the run cannot continue meaningfully.
    NonFiniteSample {
        /// Index of the job whose duration was drawn.
        index: usize,
        /// The offending duration.
        value: f64,
    },
    /// A planning step failed in the core layer (e.g. the prior produced
    /// no valid sequence); the adaptive loop cannot even start.
    Planning {
        /// Which plan failed (`prior`, `oracle`).
        context: &'static str,
        /// The underlying core error.
        source: rsj_core::CoreError,
    },
    /// The parallel execution layer failed: an invalid worker-pool
    /// configuration (`--threads 0`, malformed `RSJ_THREADS`) or a worker
    /// panic mid-batch.
    Parallel(rsj_par::ParError),
}

impl From<rsj_par::ParError> for SimError {
    fn from(e: rsj_par::ParError) -> Self {
        SimError::Parallel(e)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyBatch => write!(f, "batch must contain at least one job"),
            SimError::NonFiniteCost { index, value } => {
                write!(f, "job {index} produced a non-finite cost ({value})")
            }
            SimError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid parameter {name} = {value}: {requirement}"),
            SimError::NonFiniteSample { index, value } => {
                write!(f, "job {index} drew a non-finite duration ({value})")
            }
            SimError::Planning { context, source } => {
                write!(f, "planning on the {context} failed: {source}")
            }
            SimError::Parallel(source) => {
                write!(f, "parallel execution failed: {source}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Validates a fault/resilience parameter, mirroring `rsj-dist`'s
/// `check_param`: the predicate must hold *and* the value must be finite
/// (so NaN is always rejected).
pub(crate) fn check_param(
    name: &'static str,
    value: f64,
    requirement: &'static str,
    pred: bool,
) -> Result<(), SimError> {
    if pred && value.is_finite() {
        Ok(())
    } else {
        Err(SimError::InvalidParameter {
            name,
            value,
            requirement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = SimError::InvalidParameter {
            name: "mtbf",
            value: -1.0,
            requirement: "must be > 0",
        };
        assert!(e.to_string().contains("mtbf"));
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn check_param_rejects_nan() {
        // Even when the predicate is satisfied, NaN values are rejected.
        assert!(check_param("x", f64::NAN, "must be > 0", true).is_err());
        assert!(check_param("x", 1.0, "must be > 0", true).is_ok());
    }
}
