//! One module per table/figure of the paper's evaluation (system S13 of
//! DESIGN.md). Each exposes `compute` (pure data, testable at `Quick`
//! fidelity) and `emit` (writes `results/<name>.{md,csv}` and prints the
//! Markdown).

pub mod ablation_adaptive;
pub mod ablation_checkpoint;
pub mod ablation_faults;
pub mod ablation_misfit;
pub mod exp_s1;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig4_simqueue;
pub mod table2;
pub mod table3;
pub mod table4;
