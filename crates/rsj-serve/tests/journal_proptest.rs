//! Property tests of the journal record codec: arbitrary plans round-trip
//! bit-for-bit through a framed record, and corrupting any single byte of
//! a frame yields a typed [`RecordFault`] — never a panic, and never a
//! silently wrong [`Plan`].

use proptest::prelude::*;
use reservation_strategies::{plan_digest, Plan};
use rsj_serve::journal::{encode_record, frame_spans, JournalRecord, RecordScanner};

/// A coherent record built from randomized inputs: the digest is computed
/// over the sequence so the scanner's digest re-verification passes.
fn record_from(key_salt: u64, sequence: Vec<f64>, cost: f64, complete: bool) -> JournalRecord {
    let digest = plan_digest(sequence.iter().copied());
    JournalRecord {
        key: format!("dist=lognormal,mu={key_salt}|solver=dp|sim=none"),
        plan: Plan {
            distribution: format!("LogNormal(mu={key_salt})"),
            solver: "dp".to_string(),
            sequence,
            complete,
            expected_cost: cost,
            omniscient_cost: cost * 0.5,
            normalized_cost: 2.0,
            coverage_gap: if complete { 0.0 } else { 0.01 },
            digest,
            simulation: None,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encode → scan returns the identical record, including exact f64
    /// sequence bits (the vendored serde_json float_roundtrip matters
    /// here: the digest is a function of the f64 bit patterns).
    #[test]
    fn arbitrary_plans_round_trip(
        salt in 0u64..1_000_000,
        sequence in proptest::collection::vec(0.001..1000.0f64, 1..40),
        cost in 0.1..500.0f64,
        complete_pick in 0u8..2,
    ) {
        let record = record_from(salt, sequence, cost, complete_pick == 1);
        let frame = encode_record(&record).expect("encode");
        let decoded: Vec<_> = RecordScanner::new(&frame)
            .map(|r| r.expect("clean frame").1)
            .collect();
        prop_assert_eq!(decoded, vec![record]);
    }

    /// Flip one bit of one byte anywhere in a two-record stream: the
    /// scanner must neither panic nor produce a record that differs from
    /// one of the originals — damage is either detected (typed fault) or
    /// harmless to the other record.
    #[test]
    fn single_byte_corruption_is_typed_never_silent(
        salt in 0u64..1_000_000,
        sequence in proptest::collection::vec(0.001..1000.0f64, 1..20),
        cost in 0.1..500.0f64,
        byte_pick in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let a = record_from(salt, sequence.clone(), cost, true);
        let b = record_from(salt.wrapping_add(1), sequence, cost + 1.0, false);
        let mut buf = encode_record(&a).expect("encode a");
        buf.extend_from_slice(&encode_record(&b).expect("encode b"));
        let pos = byte_pick % buf.len();
        buf[pos] ^= 1 << bit;

        let mut decoded = Vec::new();
        let mut faults = 0usize;
        for item in RecordScanner::new(&buf) {
            match item {
                Ok((_, r)) => decoded.push(r),
                Err(_) => faults += 1,
            }
        }
        // Detected, or decoded back to an original — never a third thing.
        for r in &decoded {
            prop_assert!(
                *r == a || *r == b,
                "flip at {} bit {} produced a silently wrong record",
                pos,
                bit
            );
        }
        prop_assert!(
            faults >= 1 || (decoded.len() == 2 && decoded[0] == a && decoded[1] == b),
            "flip at {} bit {} went entirely unnoticed with records lost",
            pos,
            bit
        );
    }

    /// Truncating a stream at any point never panics and never corrupts
    /// the records that fully survive the cut.
    #[test]
    fn truncation_at_any_offset_is_safe(
        salt in 0u64..1_000_000,
        sequence in proptest::collection::vec(0.001..1000.0f64, 1..12),
        cut_pick in 0usize..10_000,
    ) {
        let a = record_from(salt, sequence.clone(), 1.0, true);
        let b = record_from(salt.wrapping_add(1), sequence, 2.0, true);
        let mut buf = encode_record(&a).expect("encode a");
        buf.extend_from_slice(&encode_record(&b).expect("encode b"));
        let spans = frame_spans(&buf);
        let cut = cut_pick % (buf.len() + 1);
        let torn = &buf[..cut];
        let decoded: Vec<_> = RecordScanner::new(torn).filter_map(|r| r.ok()).collect();
        // Whole surviving frames decode exactly; nothing else appears.
        let mut expected = Vec::new();
        if cut >= spans[0].end {
            expected.push(a);
        }
        if cut >= spans[1].end {
            expected.push(b);
        }
        prop_assert_eq!(decoded.into_iter().map(|(_, r)| r).collect::<Vec<_>>(), expected);
    }
}
