//! The stable `Planner` facade: one builder-configured entry point that
//! wraps distribution parsing (`rsj-dist::spec`), solver dispatch over the
//! `Strategy` suite (`rsj-core::heuristics`) and optional batch simulation
//! (`rsj-sim`), returning everything a caller needs as one serializable
//! [`Plan`].
//!
//! This is the API the `rsj-serve` planning daemon and the `rsj` CLI are
//! built on; see the API-stability note in the README for what is
//! semver-stable here.
//!
//! ```
//! use reservation_strategies::{Planner, dist::DistSpec};
//!
//! let plan = Planner::builder()
//!     .distribution(DistSpec::LogNormal { mu: 3.0, sigma: 0.5 })
//!     .solver_name("mean_by_mean")
//!     .build()
//!     .unwrap()
//!     .plan()
//!     .unwrap();
//! assert!(plan.normalized_cost > 1.0 && plan.normalized_cost < 3.0);
//! ```

use crate::error::{Result, RsjError};
use rsj_core::{
    coverage_gap, expected_cost_analytic, CancelToken, CostModel, SolverSpec, Strategy,
};
use rsj_dist::{ContinuousDistribution, DistSpec};
use rsj_sim::BatchStats;
use serde::{Deserialize, Serialize};

/// Optional simulate-on-plan: replay the computed sequence against `jobs`
/// sampled runtimes (seeded, deterministic at any thread count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulateOptions {
    /// Number of jobs to sample.
    pub jobs: usize,
    /// RNG seed for the batch (default 0).
    #[serde(default)]
    pub seed: u64,
}

/// FNV-1a over the IEEE-754 bit patterns of `values`, rendered as 16 hex
/// digits — the same digest convention as `rsj-bench`'s solver baselines,
/// so serve-mode and offline artifacts can be diffed directly.
pub fn plan_digest(values: impl IntoIterator<Item = f64>) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// The result of one [`Planner::plan`] call: the reservation sequence plus
/// every derived quantity the workspace knows how to compute for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Display name of the distribution that was planned for.
    pub distribution: String,
    /// Canonical solver name (`brute_force`, `dp_equal_time`, …).
    pub solver: String,
    /// The computed reservation ladder, strictly increasing.
    pub sequence: Vec<f64>,
    /// Whether the last entry covers the distribution's whole support.
    pub complete: bool,
    /// Exact expected cost of the ladder (Eq. 4).
    pub expected_cost: f64,
    /// The omniscient scheduler's cost (§5.1 baseline).
    pub omniscient_cost: f64,
    /// `expected_cost / omniscient_cost` — the paper's reported metric.
    pub normalized_cost: f64,
    /// `P(X ≥ last entry)`: tail mass not covered by the ladder.
    pub coverage_gap: f64,
    /// FNV-1a digest of the sequence's f64 bit patterns; equal digests
    /// mean bit-identical plans.
    pub digest: String,
    /// Batch-simulation statistics when simulate-on-plan was requested.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub simulation: Option<BatchStats>,
}

fn default_solver_spec() -> SolverSpec {
    SolverSpec::MeanByMean
}

/// One item of a [`Planner::plan_many`] batch: a full planner
/// configuration as plain serializable data. This is also the wire shape
/// of a `plan_batch` item in the `rsj-serve` v2 protocol, so fleet
/// clients can hand the same struct to the library and the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// The job-runtime law to plan for (required).
    pub distribution: DistSpec,
    /// Platform cost model; `None` means RESERVATIONONLY (`α=1`, `β=γ=0`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cost: Option<CostModel>,
    /// Solver to dispatch to (default Mean-by-Mean).
    #[serde(default = "default_solver_spec")]
    pub solver: SolverSpec,
    /// Optional re-seed where the solver uses randomness (Brute-Force).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub seed: Option<u64>,
    /// Optional simulate-on-plan replay.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub simulate: Option<SimulateOptions>,
}

impl PlanRequest {
    /// A request for `distribution` with every other field defaulted.
    pub fn new(distribution: DistSpec) -> Self {
        Self {
            distribution,
            cost: None,
            solver: default_solver_spec(),
            seed: None,
            simulate: None,
        }
    }

    /// Sets the solver (builder-style).
    pub fn with_solver(mut self, solver: SolverSpec) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the cost model (builder-style).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Sets simulate-on-plan (builder-style).
    pub fn with_simulate(mut self, simulate: SimulateOptions) -> Self {
        self.simulate = Some(simulate);
        self
    }

    /// Validates this request into a [`Planner`] (the same checks as
    /// [`PlannerBuilder::build`], so errors are identical to the
    /// single-plan path).
    pub fn planner(&self) -> Result<Planner> {
        let mut builder = Planner::builder()
            .distribution(self.distribution.clone())
            .solver(match self.seed {
                Some(seed) => self.solver.clone().with_seed(seed),
                None => self.solver.clone(),
            });
        if let Some(cost) = self.cost {
            builder = builder.cost_rates(cost.alpha, cost.beta, cost.gamma);
        }
        if let Some(sim) = self.simulate {
            builder = builder.simulate(sim);
        }
        builder.build()
    }
}

/// How the solver was chosen, kept unresolved until [`PlannerBuilder::build`]
/// so builder chaining stays infallible.
#[derive(Debug, Clone)]
enum SolverChoice {
    Spec(SolverSpec),
    Name(String),
}

/// Builder-style configuration for a [`Planner`].
#[derive(Debug, Clone)]
pub struct PlannerBuilder {
    distribution: Option<DistSpec>,
    cost: CostModel,
    solver: SolverChoice,
    simulate: Option<SimulateOptions>,
}

impl Default for PlannerBuilder {
    fn default() -> Self {
        Self {
            distribution: None,
            cost: CostModel::reservation_only(),
            solver: SolverChoice::Spec(SolverSpec::MeanByMean),
            simulate: None,
        }
    }
}

impl PlannerBuilder {
    /// The job-runtime law to plan for (required).
    pub fn distribution(mut self, spec: DistSpec) -> Self {
        self.distribution = Some(spec);
        self
    }

    /// The platform cost model (default RESERVATIONONLY: `α=1`, `β=γ=0`).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Cost model from its Eq. 1 rates; validated at [`build`](Self::build).
    pub fn cost_rates(mut self, alpha: f64, beta: f64, gamma: f64) -> Self {
        // Stored unvalidated so chaining stays infallible; build() calls
        // CostModel::new which re-checks the §2.2 constraints.
        self.cost = CostModel { alpha, beta, gamma };
        self
    }

    /// The solver to dispatch to (default Mean-by-Mean).
    pub fn solver(mut self, spec: SolverSpec) -> Self {
        self.solver = SolverChoice::Spec(spec);
        self
    }

    /// Solver by canonical name (`brute_force`, `dp_equal_time`, …),
    /// parsed with paper-default parameters at [`build`](Self::build).
    pub fn solver_name(mut self, name: impl Into<String>) -> Self {
        self.solver = SolverChoice::Name(name.into());
        self
    }

    /// Also replay the plan against a seeded batch of sampled jobs.
    pub fn simulate(mut self, options: SimulateOptions) -> Self {
        self.simulate = Some(options);
        self
    }

    /// Validates the configuration and instantiates the planner.
    pub fn build(self) -> Result<Planner> {
        let spec = self.distribution.ok_or(RsjError::Config {
            what: "distribution",
            reason: "no distribution specified (call .distribution(DistSpec))".into(),
        })?;
        let dist = spec.build()?;
        let cost = CostModel::new(self.cost.alpha, self.cost.beta, self.cost.gamma)?;
        let solver_spec = match self.solver {
            SolverChoice::Spec(s) => s,
            SolverChoice::Name(name) => name.parse::<SolverSpec>()?,
        };
        let solver = solver_spec.build()?;
        if let Some(sim) = self.simulate {
            if sim.jobs == 0 {
                return Err(RsjError::Sim(rsj_sim::SimError::EmptyBatch));
            }
        }
        Ok(Planner {
            dist,
            cost,
            solver,
            solver_spec,
            simulate: self.simulate,
        })
    }
}

/// A fully validated planning pipeline: distribution + cost model +
/// solver, reusable across [`plan`](Planner::plan) calls.
pub struct Planner {
    dist: Box<dyn ContinuousDistribution>,
    cost: CostModel,
    solver: Box<dyn Strategy>,
    solver_spec: SolverSpec,
    simulate: Option<SimulateOptions>,
}

impl std::fmt::Debug for Planner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Planner")
            .field("distribution", &self.dist.name())
            .field("cost", &self.cost)
            .field("solver", &self.solver_spec)
            .field("simulate", &self.simulate)
            .finish()
    }
}

impl Planner {
    /// Starts a builder with defaults (RESERVATIONONLY cost, Mean-by-Mean).
    pub fn builder() -> PlannerBuilder {
        PlannerBuilder::default()
    }

    /// The validated cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The distribution being planned for.
    pub fn distribution(&self) -> &dyn ContinuousDistribution {
        self.dist.as_ref()
    }

    /// The solver specification this planner dispatches to.
    pub fn solver_spec(&self) -> &SolverSpec {
        &self.solver_spec
    }

    /// A process-stable key identifying `(distribution, cost model,
    /// solver config)` — the triple that fully determines [`plan`]'s
    /// output. `None` when the distribution has no faithful
    /// `cache_key` (plan caches must then skip caching).
    ///
    /// [`plan`]: Planner::plan
    pub fn cache_key(&self) -> Option<String> {
        let dist = self.dist.cache_key()?;
        Some(format!(
            "{dist}|a={:x},b={:x},g={:x}|{}",
            self.cost.alpha.to_bits(),
            self.cost.beta.to_bits(),
            self.cost.gamma.to_bits(),
            self.solver_spec.config_key(),
        ))
    }

    /// The `distribution + cost` prefix of [`cache_key`](Self::cache_key):
    /// two planners with the same group key discretize the same law, so
    /// solving them back-to-back reuses one warm eval table regardless of
    /// which solver each dispatches to. `None` when the distribution has
    /// no faithful cache key (such planners never share).
    pub fn group_key(&self) -> Option<String> {
        let key = self.cache_key()?;
        Some(match key.rsplit_once('|') {
            Some((prefix, _solver)) => prefix.to_string(),
            None => key,
        })
    }

    /// Plans a whole batch, sharing one warm eval table per
    /// [`group_key`](Self::group_key) group.
    ///
    /// Each item is planned independently — one invalid distribution or a
    /// mid-batch failure never poisons its neighbours — and results come
    /// back in input order. Internally the batch is solved in group order
    /// (items sharing a `distribution + cost` prefix run consecutively) so
    /// the discretized eval-table memo stays warm across a group, which is
    /// where the batched server op gets its cache-miss throughput.
    ///
    /// Every item is bit-for-bit identical to what a standalone
    /// [`plan`](Self::plan) of the same request returns.
    pub fn plan_many(requests: &[PlanRequest]) -> Vec<Result<Plan>> {
        Self::plan_many_with_cancel(requests, &CancelToken::none())
    }

    /// [`plan_many`](Self::plan_many) with cooperative cancellation. A
    /// fired token fails the *remaining* items with
    /// `CoreError::Cancelled`; already-solved items keep their results.
    pub fn plan_many_with_cancel(
        requests: &[PlanRequest],
        cancel: &CancelToken,
    ) -> Vec<Result<Plan>> {
        Self::plan_many_traced(requests, cancel, &mut rsj_obs::Timeline::disabled())
    }

    /// [`plan_many_with_cancel`](Self::plan_many_with_cancel) that records
    /// one `item` stage per solved request into `timeline`, annotated with
    /// the item's batch index, eval-table attribution (`warm`/`cold`) and
    /// outcome.
    pub fn plan_many_traced(
        requests: &[PlanRequest],
        cancel: &CancelToken,
        timeline: &mut rsj_obs::Timeline,
    ) -> Vec<Result<Plan>> {
        let mut planners: Vec<Option<Result<Planner>>> =
            requests.iter().map(|r| Some(r.planner())).collect();
        // Solve in group order: stable sort keeps input order inside a
        // group and leaves keyless planners at the tail in input order.
        let keys: Vec<Option<String>> = planners
            .iter()
            .map(|p| match p {
                Some(Ok(planner)) => planner.group_key(),
                _ => None,
            })
            .collect();
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| match (&keys[a], &keys[b]) {
            (Some(ka), Some(kb)) => ka.cmp(kb).then(a.cmp(&b)),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => a.cmp(&b),
        });
        let mut results: Vec<Option<Result<Plan>>> = (0..requests.len()).map(|_| None).collect();
        for &i in &order {
            let outcome = match planners[i].take().expect("each item visited once") {
                Err(e) => Err(e),
                Ok(planner) => {
                    rsj_dist::clear_last_eval_source();
                    let out = timeline.time("item", || planner.plan_with_cancel(cancel));
                    timeline.annotate_last("item", i.to_string());
                    if let Some(source) = rsj_dist::last_eval_source() {
                        timeline.annotate_last("eval_table", source.as_str());
                    }
                    match &out {
                        Ok(plan) => timeline.annotate_last("digest", plan.digest.as_str()),
                        Err(e) => timeline.annotate_last("error", e.to_string()),
                    }
                    out
                }
            };
            results[i] = Some(outcome);
        }
        results
            .into_iter()
            .map(|r| r.expect("each item solved once"))
            .collect()
    }

    /// Computes the reservation sequence and scores it.
    pub fn plan(&self) -> Result<Plan> {
        self.plan_with_cancel(&CancelToken::none())
    }

    /// [`plan`](Self::plan) with cooperative cancellation: the token is
    /// threaded into the solver (polled per DP state / brute-force
    /// candidate) and checked between the solve, the scoring pass and the
    /// optional simulation replay. Once it fires the call returns
    /// `RsjError::Core(CoreError::Cancelled)`; an uncancelled call is
    /// bit-for-bit identical to [`plan`](Self::plan).
    pub fn plan_with_cancel(&self, cancel: &CancelToken) -> Result<Plan> {
        self.plan_traced(cancel, &mut rsj_obs::Timeline::disabled())
    }

    /// [`plan_with_cancel`](Self::plan_with_cancel) that also records the
    /// solver's internal phases — `solve`, `score`, `simulate` — into
    /// `timeline` for per-request tracing. A disabled timeline makes every
    /// recording call a branch on `None` (no clocks, no allocation), so
    /// [`plan_with_cancel`](Self::plan_with_cancel) delegates here and the output — including the
    /// plan digest — is bit-for-bit identical either way.
    pub fn plan_traced(
        &self,
        cancel: &CancelToken,
        timeline: &mut rsj_obs::Timeline,
    ) -> Result<Plan> {
        // Attribution side channels are per-thread and overwritten by
        // every solve; clear them first so closed-form heuristics (which
        // never touch them) cannot inherit a previous solve's labels.
        rsj_core::clear_last_dp_path();
        rsj_dist::clear_last_eval_source();
        let solved = timeline.time("solve", || {
            self.solver
                .sequence_cancellable(self.dist.as_ref(), &self.cost, cancel)
        });
        if let Some(path) = rsj_core::last_dp_path() {
            timeline.annotate_last("dp_path", path.as_str());
        }
        if let Some(source) = rsj_dist::last_eval_source() {
            timeline.annotate_last("eval_table", source.as_str());
        }
        let seq = solved?;
        cancel.check()?;
        let (expected_cost, omniscient_cost) = timeline.time("score", || {
            (
                expected_cost_analytic(&seq, self.dist.as_ref(), &self.cost),
                self.cost.omniscient(self.dist.as_ref()),
            )
        });
        cancel.check()?;
        let simulation = match self.simulate {
            Some(opts) => Some(timeline.time("simulate", || {
                rsj_sim::run_batch_seeded(
                    &seq,
                    self.dist.as_ref(),
                    &self.cost,
                    opts.jobs,
                    opts.seed,
                    &rsj_par::Parallelism::current(),
                )
            })?),
            None => None,
        };
        Ok(Plan {
            distribution: self.dist.name(),
            solver: self.solver_spec.name().to_string(),
            digest: plan_digest(seq.times().iter().copied()),
            sequence: seq.times().to_vec(),
            complete: seq.is_complete(),
            expected_cost,
            omniscient_cost,
            normalized_cost: expected_cost / omniscient_cost,
            coverage_gap: coverage_gap(&seq, self.dist.as_ref()),
            simulation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_a_distribution() {
        let err = Planner::builder().build().unwrap_err();
        assert!(matches!(
            err,
            RsjError::Config {
                what: "distribution",
                ..
            }
        ));
    }

    #[test]
    fn plan_matches_direct_solver_output() {
        use rsj_core::{MeanByMean, Strategy};
        let spec = DistSpec::LogNormal {
            mu: 3.0,
            sigma: 0.5,
        };
        let plan = Planner::builder()
            .distribution(spec.clone())
            .solver_name("mean_by_mean")
            .build()
            .unwrap()
            .plan()
            .unwrap();
        let dist = spec.build().unwrap();
        let direct = MeanByMean::default()
            .sequence(dist.as_ref(), &CostModel::reservation_only())
            .unwrap();
        assert_eq!(plan.sequence, direct.times());
        assert_eq!(plan.digest, plan_digest(direct.times().iter().copied()));
        assert!(plan.normalized_cost > 1.0);
        assert!(plan.simulation.is_none());
    }

    #[test]
    fn traced_plan_annotates_solve_stage_with_attribution() {
        let planner = Planner::builder()
            .distribution(DistSpec::LogNormal {
                mu: 3.0,
                sigma: 0.5,
            })
            .solver(SolverSpec::Dp {
                scheme: rsj_dist::DiscretizationScheme::EqualProbability,
                n: 223,
                epsilon: 1e-7,
                monotone: true,
            })
            .build()
            .unwrap();
        let mut timeline =
            rsj_obs::Timeline::begin(rsj_obs::TraceContext::generate(), std::time::Instant::now());
        planner
            .plan_traced(&CancelToken::none(), &mut timeline)
            .unwrap();
        let record = timeline.finish("plan").unwrap();
        let solve = record
            .stages
            .iter()
            .find(|s| s.name == "solve")
            .expect("solve stage recorded");
        assert!(
            solve
                .args
                .iter()
                .any(|(k, v)| k == "dp_path" && v == "monotone"),
            "solve stage args: {:?}",
            solve.args
        );
        assert!(
            solve
                .args
                .iter()
                .any(|(k, v)| k == "eval_table" && (v == "warm" || v == "cold")),
            "solve stage args: {:?}",
            solve.args
        );

        // A closed-form solver leaves the stage unannotated.
        let planner = Planner::builder()
            .distribution(DistSpec::Exponential { lambda: 1.0 })
            .solver_name("mean_by_mean")
            .build()
            .unwrap();
        let mut timeline =
            rsj_obs::Timeline::begin(rsj_obs::TraceContext::generate(), std::time::Instant::now());
        planner
            .plan_traced(&CancelToken::none(), &mut timeline)
            .unwrap();
        let record = timeline.finish("plan").unwrap();
        let solve = record.stages.iter().find(|s| s.name == "solve").unwrap();
        assert!(solve.args.is_empty(), "{:?}", solve.args);
    }

    #[test]
    fn invalid_cost_rates_fail_at_build() {
        let err = Planner::builder()
            .distribution(DistSpec::Exponential { lambda: 1.0 })
            .cost_rates(0.0, 0.0, 0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, RsjError::Core(_)), "{err}");
    }

    #[test]
    fn unknown_solver_name_is_typed() {
        let err = Planner::builder()
            .distribution(DistSpec::Exponential { lambda: 1.0 })
            .solver_name("warp_drive")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("warp_drive"), "{err}");
    }

    #[test]
    fn simulate_on_plan_attaches_batch_stats() {
        let plan = Planner::builder()
            .distribution(DistSpec::Exponential { lambda: 1.0 })
            .simulate(SimulateOptions { jobs: 64, seed: 9 })
            .build()
            .unwrap()
            .plan()
            .unwrap();
        let stats = plan.simulation.expect("simulation requested");
        assert!(stats.mean_cost.is_finite() && stats.mean_cost > 0.0);
    }

    #[test]
    fn fired_cancel_token_aborts_plan_with_typed_error() {
        use rsj_core::SolverSpec;
        for solver in [
            SolverSpec::BruteForce {
                grid: 500,
                samples: 200,
                analytic: true,
                seed: 1,
            },
            SolverSpec::Dp {
                scheme: rsj_dist::DiscretizationScheme::EqualProbability,
                n: 500,
                epsilon: 1e-7,
                monotone: true,
            },
            SolverSpec::MeanByMean,
        ] {
            let planner = Planner::builder()
                .distribution(DistSpec::LogNormal {
                    mu: 3.0,
                    sigma: 0.5,
                })
                .solver(solver)
                .build()
                .unwrap();
            let token = CancelToken::new();
            token.cancel();
            assert_eq!(
                planner.plan_with_cancel(&token).unwrap_err(),
                RsjError::Core(rsj_core::CoreError::Cancelled),
            );
            // An expired deadline behaves the same without an explicit cancel.
            let expired = CancelToken::with_deadline(
                std::time::Instant::now() - std::time::Duration::from_millis(1),
            );
            assert!(planner.plan_with_cancel(&expired).is_err());
            // A live token changes nothing: bit-identical to plan().
            let live = CancelToken::with_timeout(std::time::Duration::from_secs(3600));
            let a = planner.plan_with_cancel(&live).unwrap();
            let b = planner.plan().unwrap();
            assert_eq!(a.digest, b.digest);
            assert_eq!(a.sequence, b.sequence);
        }
    }

    #[test]
    fn plan_many_matches_singleton_plans_bit_for_bit() {
        let dp = SolverSpec::Dp {
            scheme: rsj_dist::DiscretizationScheme::EqualProbability,
            n: 180,
            epsilon: 1e-7,
            monotone: true,
        };
        // Interleave two groups plus a closed-form item so the grouped
        // solve order differs from input order.
        let requests = vec![
            PlanRequest::new(DistSpec::LogNormal { mu: 3.0, sigma: 0.5 }).with_solver(dp.clone()),
            PlanRequest::new(DistSpec::LogNormal { mu: 1.0, sigma: 0.25 }).with_solver(dp.clone()),
            PlanRequest::new(DistSpec::Exponential { lambda: 1.0 }),
            PlanRequest::new(DistSpec::LogNormal { mu: 3.0, sigma: 0.5 })
                .with_solver(dp.clone())
                .with_cost(CostModel::new(1.0, 0.5, 0.1).unwrap()),
            PlanRequest::new(DistSpec::LogNormal { mu: 1.0, sigma: 0.25 }).with_solver(dp),
        ];
        let batch = Planner::plan_many(&requests);
        assert_eq!(batch.len(), requests.len());
        for (req, got) in requests.iter().zip(&batch) {
            let solo = req.planner().unwrap().plan().unwrap();
            let got = got.as_ref().expect("batch item ok");
            assert_eq!(got.digest, solo.digest);
            assert_eq!(got.sequence, solo.sequence);
            assert_eq!(got.expected_cost.to_bits(), solo.expected_cost.to_bits());
        }
    }

    #[test]
    fn plan_many_keeps_bad_items_independent() {
        let requests = vec![
            PlanRequest::new(DistSpec::Exponential { lambda: 1.0 }),
            PlanRequest::new(DistSpec::Exponential { lambda: -1.0 }),
            PlanRequest::new(DistSpec::Exponential { lambda: 2.0 }),
        ];
        let batch = Planner::plan_many(&requests);
        assert!(batch[0].is_ok());
        assert!(batch[1].is_err());
        assert!(batch[2].is_ok());
    }

    #[test]
    fn plan_many_traced_records_item_stages_with_indices() {
        let requests = vec![
            PlanRequest::new(DistSpec::Exponential { lambda: 1.0 }),
            PlanRequest::new(DistSpec::Exponential { lambda: 2.0 }),
        ];
        let mut timeline =
            rsj_obs::Timeline::begin(rsj_obs::TraceContext::generate(), std::time::Instant::now());
        let batch = Planner::plan_many_traced(&requests, &CancelToken::none(), &mut timeline);
        assert!(batch.iter().all(|r| r.is_ok()));
        let record = timeline.finish("plan_batch").unwrap();
        let items: Vec<_> = record.stages.iter().filter(|s| s.name == "item").collect();
        assert_eq!(items.len(), 2);
        let mut indices: Vec<String> = items
            .iter()
            .flat_map(|s| s.args.iter())
            .filter(|(k, _)| k == "item")
            .map(|(_, v)| v.clone())
            .collect();
        indices.sort();
        assert_eq!(indices, vec!["0".to_string(), "1".to_string()]);
    }

    #[test]
    fn fired_cancel_fails_remaining_plan_many_items() {
        let token = CancelToken::new();
        token.cancel();
        let requests = vec![PlanRequest::new(DistSpec::Exponential { lambda: 1.0 })];
        let batch = Planner::plan_many_with_cancel(&requests, &token);
        assert_eq!(
            batch[0].as_ref().unwrap_err(),
            &RsjError::Core(rsj_core::CoreError::Cancelled)
        );
    }

    #[test]
    fn group_key_is_the_cache_key_without_the_solver() {
        let planner = Planner::builder()
            .distribution(DistSpec::Exponential { lambda: 1.0 })
            .solver_name("mean_by_mean")
            .build()
            .unwrap();
        let cache_key = planner.cache_key().unwrap();
        let group_key = planner.group_key().unwrap();
        assert!(cache_key.starts_with(&group_key));
        assert!(!group_key.contains("mean_by_mean"));
        // A different solver over the same law shares the group.
        let other = Planner::builder()
            .distribution(DistSpec::Exponential { lambda: 1.0 })
            .solver_name("mean_doubling")
            .build()
            .unwrap();
        assert_eq!(other.group_key().unwrap(), group_key);
        assert_ne!(other.cache_key().unwrap(), cache_key);
    }

    #[test]
    fn cache_key_separates_every_input() {
        let base = || Planner::builder().distribution(DistSpec::Exponential { lambda: 1.0 });
        let a = base().build().unwrap().cache_key().unwrap();
        let other_dist = base()
            .distribution(DistSpec::Exponential { lambda: 2.0 })
            .build()
            .unwrap()
            .cache_key()
            .unwrap();
        let other_cost = base()
            .cost_rates(2.0, 0.0, 0.0)
            .build()
            .unwrap()
            .cache_key()
            .unwrap();
        let other_solver = base()
            .solver_name("mean_doubling")
            .build()
            .unwrap()
            .cache_key()
            .unwrap();
        assert_ne!(a, other_dist);
        assert_ne!(a, other_cost);
        assert_ne!(a, other_solver);
        assert_eq!(a, base().build().unwrap().cache_key().unwrap());
    }
}
