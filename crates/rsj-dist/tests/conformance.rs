//! Distribution conformance suite: every Table 1 instantiation must
//! satisfy the analytic identities its closed forms claim, checked against
//! numeric quadrature and sampling.

use rand::SeedableRng;
use rsj_dist::quadrature::{integrate, integrate_to_inf};
use rsj_dist::{ContinuousDistribution, DistSpec, Empirical};

fn all() -> Vec<(&'static str, Box<dyn ContinuousDistribution>)> {
    DistSpec::paper_table1()
        .into_iter()
        .map(|(n, s)| (n, s.build().unwrap()))
        .collect()
}

/// Upper integration limit: the support's end or a deep quantile.
fn hi(d: &dyn ContinuousDistribution) -> f64 {
    d.support()
        .upper()
        .unwrap_or_else(|| d.quantile(1.0 - 1e-13))
}

#[test]
fn pdf_is_nonnegative_everywhere() {
    for (name, d) in all() {
        let lo = d.support().lower();
        let top = hi(d.as_ref());
        for k in 0..=400 {
            let t = lo + (top - lo) * k as f64 / 400.0;
            assert!(d.pdf(t) >= 0.0, "{name}: pdf({t}) negative");
        }
        // And zero outside the support.
        assert_eq!(d.pdf(lo - 0.5), 0.0, "{name}");
        assert_eq!(d.pdf(-1.0), 0.0, "{name}");
    }
}

#[test]
fn pdf_integrates_to_one() {
    for (name, d) in all() {
        let lo = d.support().lower();
        let mass = match d.support().upper() {
            Some(b) => integrate(|t| d.pdf(t), lo, b, 1e-11).value,
            None => integrate_to_inf(|t| d.pdf(t), lo.max(1e-12), 1e-11).value,
        };
        assert!((mass - 1.0).abs() < 1e-5, "{name}: total mass {mass}");
    }
}

#[test]
fn cdf_is_monotone_and_bounded() {
    for (name, d) in all() {
        let lo = d.support().lower();
        let top = hi(d.as_ref());
        let mut prev = -1e-15;
        for k in 0..=500 {
            let t = lo + (top - lo) * k as f64 / 500.0;
            let f = d.cdf(t);
            assert!((0.0..=1.0).contains(&f), "{name}: cdf({t}) = {f}");
            assert!(f >= prev - 1e-12, "{name}: cdf not monotone at {t}");
            prev = f;
        }
        assert_eq!(d.cdf(lo - 1.0), 0.0, "{name}: cdf below support");
    }
}

#[test]
fn cdf_matches_integrated_pdf() {
    for (name, d) in all() {
        let lo = d.support().lower();
        for q in [0.2, 0.5, 0.8] {
            let t = d.quantile(q);
            let numeric = integrate(|x| d.pdf(x), lo.max(1e-12), t, 1e-11).value;
            assert!(
                (numeric - d.cdf(t)).abs() < 1e-6,
                "{name}: ∫pdf = {numeric} vs cdf {} at q={q}",
                d.cdf(t)
            );
        }
    }
}

#[test]
fn quantile_inverts_cdf_across_the_range() {
    for (name, d) in all() {
        for k in 1..100 {
            let p = k as f64 / 100.0;
            let t = d.quantile(p);
            assert!(
                (d.cdf(t) - p).abs() < 1e-7,
                "{name}: cdf(Q({p})) = {}",
                d.cdf(t)
            );
        }
    }
}

#[test]
fn survival_complements_cdf() {
    for (name, d) in all() {
        for q in [0.01, 0.3, 0.6, 0.95, 0.999] {
            let t = d.quantile(q);
            assert!(
                (d.cdf(t) + d.survival(t) - 1.0).abs() < 1e-9,
                "{name}: F + S ≠ 1 at q={q}"
            );
        }
    }
}

#[test]
fn mean_matches_quadrature() {
    for (name, d) in all() {
        let lo = d.support().lower();
        let numeric = match d.support().upper() {
            Some(b) => integrate(|t| t * d.pdf(t), lo, b, 1e-11).value,
            None => integrate_to_inf(|t| t * d.pdf(t), lo.max(1e-12), 1e-11).value,
        };
        assert!(
            (numeric - d.mean()).abs() / d.mean().abs().max(1e-9) < 1e-4,
            "{name}: numeric mean {numeric} vs closed {}",
            d.mean()
        );
    }
}

#[test]
fn variance_matches_quadrature() {
    for (name, d) in all() {
        let lo = d.support().lower();
        let m = d.mean();
        let f = |t: f64| (t - m) * (t - m) * d.pdf(t);
        let numeric = match d.support().upper() {
            Some(b) => integrate(f, lo, b, 1e-12).value,
            None => integrate_to_inf(f, lo.max(1e-12), 1e-12).value,
        };
        assert!(
            (numeric - d.variance()).abs() / d.variance().max(1e-9) < 1e-3,
            "{name}: numeric var {numeric} vs closed {}",
            d.variance()
        );
    }
}

#[test]
fn conditional_mean_matches_quadrature_everywhere() {
    for (name, d) in all() {
        for q in [0.1, 0.5, 0.9, 0.99] {
            let tau = d.quantile(q);
            let closed = d.conditional_mean_above(tau);
            let s = d.survival(tau);
            let integral = match d.support().upper() {
                Some(b) => integrate(|t| d.survival(t), tau, b, 1e-12).value,
                None => integrate_to_inf(|t| d.survival(t), tau, 1e-12).value,
            };
            let numeric = tau + integral / s;
            assert!(
                (closed - numeric).abs() / numeric < 1e-4,
                "{name} at q={q}: closed {closed} vs numeric {numeric}"
            );
        }
    }
}

#[test]
fn conditional_mean_is_monotone_in_tau() {
    for (name, d) in all() {
        let mut prev = d.mean();
        for k in 1..50 {
            let tau = d.quantile(k as f64 / 51.0);
            let cm = d.conditional_mean_above(tau);
            assert!(
                cm >= prev - 1e-7 * prev.abs().max(1.0),
                "{name}: conditional mean dips at τ={tau}: {cm} < {prev}"
            );
            prev = cm;
        }
    }
}

#[test]
fn sampling_matches_distribution_ks() {
    for (name, d) in all() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(777);
        let samples: Vec<f64> = (0..8000).map(|_| d.sample(&mut rng)).collect();
        let emp = Empirical::from_samples(&samples).unwrap();
        let ks = emp.ks_statistic(d.as_ref());
        // 0.1% critical value ≈ 1.95/√n ≈ 0.0218 for n = 8000.
        assert!(ks < 0.0218, "{name}: KS {ks}");
    }
}

#[test]
fn sample_moments_match() {
    for (name, d) in all() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(778);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let tol = 6.0 * d.std_dev() / (n as f64).sqrt();
        assert!(
            (mean - d.mean()).abs() < tol.max(1e-3 * d.mean().abs()),
            "{name}: sample mean {mean} vs {} (tol {tol})",
            d.mean()
        );
    }
}

#[test]
fn median_is_half_quantile() {
    for (name, d) in all() {
        assert!(
            (d.cdf(d.median()) - 0.5).abs() < 1e-8,
            "{name}: F(median) = {}",
            d.cdf(d.median())
        );
    }
}

#[test]
fn second_moment_consistency() {
    for (name, d) in all() {
        let m2 = d.second_moment();
        let expect = d.variance() + d.mean() * d.mean();
        assert!(
            (m2 - expect).abs() / expect < 1e-12,
            "{name}: E[X²] inconsistent"
        );
        assert!(m2.is_finite() && m2 > 0.0, "{name}: E[X²] = {m2}");
    }
}

#[test]
fn support_contains_all_quantiles() {
    for (name, d) in all() {
        let sup = d.support();
        for q in [0.0, 0.001, 0.5, 0.999] {
            let t = d.quantile(q);
            assert!(
                sup.contains(t) || (t - sup.lower()).abs() < 1e-9,
                "{name}: Q({q}) = {t} outside support"
            );
        }
    }
}

#[test]
fn batch_evaluation_is_bit_identical_to_per_point_calls() {
    // The `cdf_batch`/`survival_batch` contract: same bits as the scalar
    // calls, through dynamic dispatch, for every Table 1 family — the
    // grid pipeline (EvalTable) relies on this to keep solver digests
    // unchanged.
    for (name, d) in all() {
        let lo = d.support().lower();
        let top = hi(d.as_ref());
        let points: Vec<f64> = (0..=257)
            .map(|k| lo + (top - lo) * k as f64 / 257.0)
            .collect();
        let mut cdf = vec![f64::NAN; points.len()];
        d.cdf_batch(&points, &mut cdf);
        let mut survival = vec![f64::NAN; points.len()];
        d.survival_batch(&points, &mut survival);
        for (i, &p) in points.iter().enumerate() {
            assert_eq!(
                cdf[i].to_bits(),
                d.cdf(p).to_bits(),
                "{name}: cdf_batch[{i}] at {p}"
            );
            assert_eq!(
                survival[i].to_bits(),
                d.survival(p).to_bits(),
                "{name}: survival_batch[{i}] at {p}"
            );
        }
    }
}
