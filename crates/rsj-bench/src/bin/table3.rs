//! Regenerates the paper's table3 (see rsj-bench docs).

use rsj_bench::scenarios::Fidelity;

fn main() -> std::io::Result<()> {
    let fidelity = Fidelity::from_env();
    eprintln!("running table3 at {fidelity:?} fidelity (RSJ_FIDELITY=quick for a fast pass)");
    rsj_bench::experiments::table3::emit(fidelity, rsj_bench::DEFAULT_SEED)?;
    Ok(())
}
