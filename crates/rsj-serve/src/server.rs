//! The planning server: a fixed accept loop feeding a bounded pool of
//! connection-handler threads through an admission-controlled queue.
//!
//! Life of a request:
//!
//! 1. the accept loop (non-blocking, polling the shutdown flag) offers
//!    the connection to the [`AdmissionQueue`]; above the high watermark
//!    the connection is *shed*: handed to a small shed-helper pool that
//!    writes a typed [`ErrorKind::Overloaded`] line and closes it. The
//!    accept thread itself never reads from or writes to a refused
//!    peer's socket, so no peer behaviour can stall accepting;
//! 2. a worker dequeues the connection, reads one line, decodes it
//!    ([`crate::decode_request`]) and dispatches: `ping`/`metrics` answer
//!    immediately, `plan` goes through the LRU cache, the single-flight
//!    group, or the [`Planner`] facade, `shutdown` raises the flag. A
//!    request carrying `deadline_ms` is shed at dequeue if already
//!    expired, and its solve is cancelled cooperatively (via
//!    [`CancelToken`]) if the deadline fires mid-flight;
//! 3. once the flag is up the accept loop stops accepting, the queue is
//!    closed, and workers drain: every connection already admitted gets
//!    an answer to the request it is processing before its worker exits.
//!
//! Workers are panic-tolerant: a panicking connection handler (a bug, or
//! an injected [`ChaosPolicy`] fault) kills that connection only — the
//! worker catches the unwind, counts it, and pulls the next connection.
//!
//! Determinism: solvers run on the caller thread via the facade, and every
//! internally parallel stage goes through `rsj-par`, which is bit-identical
//! at any thread count — so concurrent clients asking the same question
//! get byte-identical plans whether computed, recomputed, cached, or
//! coalesced onto another client's in-flight solve.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use reservation_strategies::{CancelToken, Plan, Planner, SimulateOptions};
use rsj_core::{CostModel, SolverSpec};
use rsj_dist::DistSpec;

use crate::admission::{AdmissionConfig, AdmissionQueue, Pop};
use crate::cache::PlanCache;
use crate::chaos::ChaosPolicy;
use crate::journal::{JournalRecord, JournalWriter, JOURNAL_FILE};
use crate::protocol::{
    classify, decode_request, encode, sanitize_trace_id, ErrorKind, HealthInfo, Provenance,
    Request, Response, Timings, PROTOCOL_VERSION,
};
use crate::recovery::{recover, RecoveryStats};
use crate::singleflight::{Flighted, SingleFlight};
use crate::snapshot::SnapshotStore;

/// Crash-safety settings: where the plan journal lives and how often it
/// compacts into a snapshot. See [`crate::journal`] / [`crate::snapshot`]
/// / [`crate::recovery`] for the machinery.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `journal.log` and `snapshot-*.snap`; created if
    /// missing. Restarting against the same directory warm-fills the
    /// cache.
    pub dir: PathBuf,
    /// Compact the journal into a snapshot every this many appends
    /// (0 disables snapshots; the journal then grows unboundedly until
    /// restart).
    pub snapshot_every: u64,
    /// `sync_data` per append: extends the durability guarantee from
    /// process death (`kill -9`) to machine death, at a large per-append
    /// cost. Off by default.
    pub fsync: bool,
    /// Test-only: stall recovery by this long before it starts, to make
    /// the not-ready window observable. `None` in production.
    pub recovery_delay: Option<Duration>,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the default snapshot cadence
    /// (every 64 appends) and no per-append fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every: 64,
            fsync: false,
            recovery_delay: None,
        }
    }
}

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (read it back with
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Connection-handler threads.
    pub workers: usize,
    /// Requests served on one connection before it is closed with a
    /// `too_many_requests` error.
    pub max_requests_per_conn: usize,
    /// Idle-read timeout per connection; an idle client is disconnected.
    pub read_timeout: Duration,
    /// Total plans held by the LRU cache (0 disables caching).
    pub cache_capacity: usize,
    /// Lock shards for the cache.
    pub cache_shards: usize,
    /// Longest accepted request line, in bytes.
    pub max_line_bytes: usize,
    /// Admission-queue sizing (capacity and shed watermarks).
    pub admission: AdmissionConfig,
    /// Fault-injection schedule; `None` in production.
    pub chaos: Option<ChaosPolicy>,
    /// Crash-safety settings; `None` serves memory-only (a restart loses
    /// the cache).
    pub durability: Option<DurabilityConfig>,
    /// Retain the last this many request timelines in a ring buffer,
    /// served by the `trace` op (0 disables server-side tracing; requests
    /// asking `trace: true` still get a per-request timeline).
    pub trace_buffer: usize,
    /// Emit one warn-level event with the full stage breakdown for any
    /// request slower than this many milliseconds (`None` disables).
    pub slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_requests_per_conn: 1024,
            read_timeout: Duration::from_secs(30),
            cache_capacity: 256,
            cache_shards: 8,
            max_line_bytes: 1 << 20,
            admission: AdmissionConfig::default(),
            chaos: None,
            durability: None,
            trace_buffer: 0,
            slow_ms: None,
        }
    }
}

/// Signals a running [`Server`] to drain and exit, from any thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Raises the shutdown flag. Idempotent: signalling an already
    /// draining (or even finished) server is a no-op, never an error.
    pub fn signal(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_signaled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A connection waiting in the admission queue.
struct Pending {
    stream: TcpStream,
    accepted_at: Instant,
    conn_id: u64,
}

/// What one plan solve produced, as shared through the single-flight
/// group: the plan, or the typed error every coalesced caller should
/// echo.
type SolveOutcome = Result<Arc<Plan>, (ErrorKind, String)>;

/// The journal's write-side state, installed once recovery completes.
struct JournalState {
    writer: JournalWriter,
    store: SnapshotStore,
    appends_since_snapshot: u64,
    next_generation: u64,
    snapshot_every: u64,
}

struct Shared {
    config: ServerConfig,
    cache: PlanCache,
    flights: SingleFlight<SolveOutcome>,
    admission: AdmissionQueue<Pending>,
    /// Connections refused by `admission`, awaiting their `overloaded`
    /// reply from a shed helper. A plain bounded queue (no hysteresis);
    /// when even this overflows, refused connections are dropped
    /// unanswered rather than blocking the accept loop.
    sheds: AdmissionQueue<TcpStream>,
    shutdown: Arc<AtomicBool>,
    /// Raised once startup recovery (if any) has finished; `plan`
    /// requests are shed with a typed `not_ready` until then.
    recovered: AtomicBool,
    /// What recovery found, for the `health` op.
    recovery: Mutex<Option<RecoveryStats>>,
    /// The journal writer; `None` until recovery installs it (and always
    /// `None` without a [`DurabilityConfig`]).
    journal: Mutex<Option<JournalState>>,
    /// Completed request timelines, served by the `trace` op; `None`
    /// when the server runs without `--trace-buffer`.
    trace: Option<rsj_obs::TraceRing>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn is_recovered(&self) -> bool {
        self.recovered.load(Ordering::SeqCst)
    }

    /// Readiness: recovered, not draining, and the queue below its shed
    /// watermark — the same gate an orchestrator should route traffic on.
    fn is_ready(&self) -> bool {
        self.is_recovered()
            && !self.shutting_down()
            && self.admission.depth() < self.admission.config().high_watermark
    }

    fn health_info(&self) -> HealthInfo {
        HealthInfo {
            ready: self.is_ready(),
            recovered: self.is_recovered(),
            draining: self.shutting_down(),
            queue_depth: self.admission.depth(),
            cache_entries: self.cache.len(),
            recovery: self
                .recovery
                .lock()
                .expect("recovery lock poisoned")
                .clone(),
        }
    }

    /// Journals one solved plan (append-before-response, so anything a
    /// client heard back survives `kill -9`), compacting into a snapshot
    /// every `snapshot_every` appends. Journal failures are logged and
    /// counted, never propagated: serving degrades to memory-only rather
    /// than failing requests over a full disk.
    fn journal_append(&self, key: &str, plan: &Plan) {
        let mut guard = self.journal.lock().expect("journal lock poisoned");
        let Some(state) = guard.as_mut() else { return };
        let record = JournalRecord {
            key: key.to_string(),
            plan: plan.clone(),
        };
        match state.writer.append(&record) {
            Ok(_) => counter("rsj_serve_journal_appends_total").inc(),
            Err(e) => {
                counter("rsj_serve_journal_errors_total").inc();
                rsj_obs::warn!("journal append failed (serving continues memory-only): {e}");
                return;
            }
        }
        rsj_obs::global_registry()
            .gauge("rsj_serve_cache_entries")
            .set(self.cache.len() as f64);
        state.appends_since_snapshot += 1;
        if state.snapshot_every > 0 && state.appends_since_snapshot >= state.snapshot_every {
            let entries = self.cache.entries();
            let records: Vec<JournalRecord> = entries
                .into_iter()
                .map(|(key, plan)| JournalRecord {
                    key,
                    plan: (*plan).clone(),
                })
                .collect();
            match state.store.write(state.next_generation, &records) {
                Ok(path) => {
                    counter("rsj_serve_snapshots_total").inc();
                    rsj_obs::info!(
                        "snapshot generation {} written ({} records) to {}",
                        state.next_generation,
                        records.len(),
                        path.display()
                    );
                    state.next_generation += 1;
                    state.appends_since_snapshot = 0;
                    // The snapshot durably holds everything; the journal
                    // restarts empty. Order matters: truncating *before*
                    // the rename lands would open a loss window.
                    if let Err(e) = state.writer.reset() {
                        counter("rsj_serve_journal_errors_total").inc();
                        rsj_obs::warn!("journal truncate after snapshot failed: {e}");
                    }
                }
                Err(e) => {
                    counter("rsj_serve_journal_errors_total").inc();
                    rsj_obs::warn!("snapshot write failed (journal keeps growing): {e}");
                }
            }
        }
    }
}

/// A bound (but not yet running) planning server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and prepares the cache; call [`run`](Self::run)
    /// to start serving.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = PlanCache::new(config.cache_capacity, config.cache_shards);
        let admission = AdmissionQueue::new(config.admission);
        let sheds = AdmissionQueue::new(AdmissionConfig {
            capacity: SHED_BACKLOG,
            high_watermark: SHED_BACKLOG,
            low_watermark: SHED_BACKLOG,
        });
        let trace = (config.trace_buffer > 0).then(|| rsj_obs::TraceRing::new(config.trace_buffer));
        let shared = Arc::new(Shared {
            config,
            cache,
            flights: SingleFlight::new(),
            admission,
            sheds,
            shutdown: Arc::new(AtomicBool::new(false)),
            recovered: AtomicBool::new(false),
            recovery: Mutex::new(None),
            journal: Mutex::new(None),
            trace,
        });
        Ok(Self {
            local_addr,
            listener,
            shared,
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can signal shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared.shutdown))
    }

    /// Serves until shutdown is signaled (by a `shutdown` request or a
    /// [`ShutdownHandle`]), then drains in-flight connections and returns.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            local_addr,
            shared,
        } = self;
        listener.set_nonblocking(true)?;
        rsj_obs::info!("rsj-serve listening on {local_addr}");

        // Recovery runs concurrently with the accept loop so the server
        // answers `ping`/`health` from the first instant; `plan` requests
        // get a typed `not_ready` until the cache is warm.
        let recovery_thread = match shared.config.durability.clone() {
            Some(durability) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("rsj-serve-recovery".to_string())
                        .spawn(move || run_recovery(&shared, &durability))
                        .expect("spawn recovery thread"),
                )
            }
            None => {
                // Nothing to recover: ready as soon as we listen.
                shared.recovered.store(true, Ordering::SeqCst);
                None
            }
        };

        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rsj-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let shed_helpers: Vec<_> = (0..SHED_HELPERS)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rsj-serve-shed-{i}"))
                    .spawn(move || shed_helper_loop(&shared))
                    .expect("spawn shed helper")
            })
            .collect();

        let mut conn_id: u64 = 0;
        while !shared.shutting_down() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    counter("rsj_serve_connections_total").inc();
                    // Responses are single small lines; leaving Nagle on
                    // costs a delayed-ACK round trip (~40ms) per request.
                    let _ = stream.set_nodelay(true);
                    let pending = Pending {
                        stream,
                        accepted_at: Instant::now(),
                        conn_id,
                    };
                    conn_id += 1;
                    if let Err(rejected) = shared.admission.try_admit(pending) {
                        enqueue_shed(rejected.stream, &shared);
                    }
                    queue_depth_gauge(&shared);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Graceful drain: stop accepting, let every queued/in-flight
        // connection finish its current request, then join the pool.
        // `close` is idempotent, so racing a second shutdown signal (or a
        // concurrent `shutdown` request landing on a worker) is harmless.
        rsj_obs::info!("rsj-serve draining {} workers", workers.len());
        shared.admission.close();
        shared.sheds.close();
        for w in workers {
            let _ = w.join();
        }
        for h in shed_helpers {
            let _ = h.join();
        }
        if let Some(t) = recovery_thread {
            let _ = t.join();
        }
        // Force the journal tail to disk on a clean exit: a graceful
        // drain should leave nothing for the OS page cache to lose.
        if let Some(state) = shared
            .journal
            .lock()
            .expect("journal lock poisoned")
            .as_mut()
        {
            if let Err(e) = state.writer.sync() {
                rsj_obs::warn!("journal sync on drain failed: {e}");
            }
        }
        rsj_obs::info!("rsj-serve stopped");
        Ok(())
    }
}

/// The recovery thread body: warm the cache from disk, install the
/// journal writer, flip `recovered`. An unusable journal directory is
/// downgraded to memory-only serving with a warning — the server still
/// becomes ready (an operator losing durability beats an operator losing
/// serving).
fn run_recovery(shared: &Shared, durability: &DurabilityConfig) {
    if let Some(delay) = durability.recovery_delay {
        std::thread::sleep(delay);
    }
    match recover(&durability.dir, &shared.cache) {
        Ok(stats) => {
            *shared.recovery.lock().expect("recovery lock poisoned") = Some(stats);
        }
        Err(e) => {
            rsj_obs::warn!(
                "recovery failed for {}; serving memory-only: {e}",
                durability.dir.display()
            );
        }
    }
    match open_journal(durability) {
        Ok(state) => {
            *shared.journal.lock().expect("journal lock poisoned") = Some(state);
        }
        Err(e) => {
            rsj_obs::warn!(
                "cannot open journal in {}; serving memory-only: {e}",
                durability.dir.display()
            );
        }
    }
    shared.recovered.store(true, Ordering::SeqCst);
    rsj_obs::info!("rsj-serve ready ({} plans warm)", shared.cache.len());
}

fn open_journal(durability: &DurabilityConfig) -> std::io::Result<JournalState> {
    let store = SnapshotStore::open(&durability.dir)?;
    let next_generation = store.next_generation()?;
    let writer = JournalWriter::open(durability.dir.join(JOURNAL_FILE), durability.fsync)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    Ok(JournalState {
        writer,
        store,
        appends_since_snapshot: 0,
        next_generation,
        snapshot_every: durability.snapshot_every,
    })
}

/// One worker: dequeue → handle, absorbing handler panics so a poisoned
/// connection (or an injected chaos panic) never shrinks the pool.
fn worker_loop(shared: &Shared) {
    loop {
        match shared.admission.pop(READ_POLL) {
            Pop::Item(pending) => {
                queue_depth_gauge(shared);
                rsj_obs::global_registry()
                    .histogram("rsj_serve_queue_wait_seconds")
                    .observe(pending.accepted_at.elapsed().as_secs_f64());
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(pending, shared)
                }));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => rsj_obs::debug!("connection ended with I/O error: {e}"),
                    Err(_) => {
                        counter("rsj_serve_worker_panics_total").inc();
                        rsj_obs::warn!("worker survived a connection-handler panic");
                    }
                }
            }
            Pop::TimedOut => {}
            Pop::Closed => break,
        }
    }
}

/// Shed helpers handling refused connections; sized small on purpose —
/// a shed reply is one bounded read and one bounded write.
const SHED_HELPERS: usize = 2;

/// Refused connections waiting for a helper; past this, sheds are
/// dropped unanswered.
const SHED_BACKLOG: usize = 256;

/// Hands a refused connection to the shed helpers for its `overloaded`
/// reply. The accept loop does nothing but this enqueue — no reads, no
/// writes, no per-peer timeouts — so no peer behaviour can wedge
/// accepting. If the shed backlog is itself full (or draining), the
/// connection is dropped unanswered and counted: under that much
/// overload the close *is* the reply.
fn enqueue_shed(stream: TcpStream, shared: &Shared) {
    counter("rsj_serve_shed_total").inc();
    if shared.sheds.try_admit(stream).is_err() {
        counter("rsj_serve_shed_dropped_total").inc();
    }
}

/// One shed helper: writes typed `overloaded` replies (and peeks trace
/// ids) for connections the admission queue refused, keeping every
/// peer-facing syscall off the accept thread. Drains like a worker on
/// shutdown: sheds enqueued before the close still get their reply.
fn shed_helper_loop(shared: &Shared) {
    loop {
        match shared.sheds.pop(READ_POLL) {
            Pop::Item(stream) => shed_connection(stream, shared),
            Pop::TimedOut => {}
            Pop::Closed => break,
        }
    }
}

/// Rejects one refused connection: a typed `overloaded` line, then
/// close. Runs on a shed helper; the read and write are each bounded, so
/// a hostile peer can hold a helper for ~300 ms at most.
fn shed_connection(stream: TcpStream, shared: &Shared) {
    let trace_id = shed_trace_id(&stream);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut writer = BufWriter::new(stream);
    let config = shared.admission.config();
    let _ = write_response(
        &mut writer,
        &Response::error_traced(
            ErrorKind::Overloaded,
            format!(
                "admission queue above its high watermark ({} queued ≥ {}); retry with backoff",
                shared.admission.depth(),
                config.high_watermark
            ),
            trace_id,
        ),
    );
}

/// Best-effort peek at a shed request's `trace_id`, so even an
/// `overloaded` reply joins the client's logs. Bounded by a *total*
/// deadline, not a per-syscall timeout: each raw read's timeout is set
/// to the remaining budget, so a peer dripping one byte at a time cannot
/// stretch the wait past ~100 ms however it paces the bytes. Clients
/// write their request at connect, so the line is normally already
/// buffered and the first read returns it whole.
fn shed_trace_id(stream: &TcpStream) -> Option<String> {
    const BUDGET: Duration = Duration::from_millis(100);
    const MAX_PEEK_BYTES: usize = 64 * 1024;
    #[derive(serde::Deserialize)]
    struct TraceIdField {
        #[serde(default)]
        trace_id: Option<String>,
    }
    let deadline = Instant::now() + BUDGET;
    let mut raw = stream;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let line = loop {
        if let Some(end) = buf.iter().position(|b| *b == b'\n') {
            break &buf[..end];
        }
        if buf.len() >= MAX_PEEK_BYTES {
            return None; // no newline in the first 64 KiB: not a request line
        }
        let remaining = deadline.checked_duration_since(Instant::now())?;
        if remaining.is_zero() {
            return None;
        }
        stream.set_read_timeout(Some(remaining)).ok()?;
        match raw.read(&mut chunk) {
            // EOF with no newline: a partial line is still one request.
            Ok(0) => break &buf[..],
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // Timeout (WouldBlock/TimedOut) or a hard error: give up.
            Err(_) => return None,
        }
    };
    let parsed: TraceIdField = serde_json::from_slice(line).ok()?;
    sanitize_trace_id(parsed.trace_id.as_deref())
}

fn counter(name: &str) -> rsj_obs::Counter {
    rsj_obs::global_registry().counter(name)
}

fn queue_depth_gauge(shared: &Shared) {
    rsj_obs::global_registry()
        .gauge("rsj_serve_queue_depth")
        .set(shared.admission.depth() as f64);
}

/// How often a blocked read wakes up to check the shutdown flag; bounds
/// how long a drain can wait on idle connections.
const READ_POLL: Duration = Duration::from_millis(100);

/// Reading one line can end the connection (EOF, idle timeout, drain) or
/// yield a line — possibly one that overflowed the size cap.
enum LineRead {
    Line(String),
    TooLarge,
    Closed,
}

/// Reads one `\n`-terminated line, waking every [`READ_POLL`] to honor
/// shutdown and the idle deadline, and capping the length at
/// `max_line_bytes`.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> std::io::Result<LineRead> {
    let deadline = Instant::now() + shared.config.read_timeout;
    let mut line = String::new();
    // One extra poll before a drain close: a request may have landed in
    // the socket buffer between the read timing out and the flag check,
    // and a concurrent shutdown caller deserves its response if possible.
    let mut drain_grace_used = false;
    loop {
        // `take` caps this call at one byte over the limit so an
        // overlong line is detectable without unbounded buffering.
        let room = (shared.config.max_line_bytes + 1).saturating_sub(line.len());
        match Read::by_ref(reader).take(room as u64).read_line(&mut line) {
            // EOF: a partial unterminated line is still one request.
            Ok(0) if line.trim().is_empty() => return Ok(LineRead::Closed),
            Ok(n) => {
                if line.len() > shared.config.max_line_bytes {
                    return Ok(LineRead::TooLarge);
                }
                if n == 0 || line.ends_with('\n') {
                    return Ok(LineRead::Line(line));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Partial bytes (if any) stay in `line`; decide whether
                // this connection should keep waiting.
                if shared.shutting_down() {
                    if drain_grace_used {
                        rsj_obs::debug!("dropping idle connection for drain");
                        return Ok(LineRead::Closed);
                    }
                    drain_grace_used = true;
                    continue;
                }
                if Instant::now() >= deadline {
                    rsj_obs::debug!("closing idle connection");
                    return Ok(LineRead::Closed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serves one connection: a loop of read line → dispatch → write line.
fn handle_connection(pending: Pending, shared: &Shared) -> std::io::Result<()> {
    let Pending {
        stream,
        accepted_at,
        conn_id,
    } = pending;
    let dequeued_at = Instant::now();
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut served: usize = 0;
    // The first request's deadline base is accept time, so time spent in
    // the admission queue counts against it; later requests are timed
    // from when their line arrives.
    let mut first_base = Some(accepted_at);

    loop {
        let line = match read_line_bounded(&mut reader, shared)? {
            LineRead::Line(line) => line,
            LineRead::Closed => return Ok(()),
            LineRead::TooLarge => {
                write_response(
                    &mut writer,
                    &Response::error(
                        ErrorKind::RequestTooLarge,
                        format!("request exceeds {} bytes", shared.config.max_line_bytes),
                    ),
                )?;
                counter("rsj_serve_errors_total").inc();
                return Ok(());
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let line_at = Instant::now();
        let is_first = first_base.is_some();
        let base = first_base.take().unwrap_or(line_at);

        served += 1;
        if served > shared.config.max_requests_per_conn {
            write_response(
                &mut writer,
                &Response::error(
                    ErrorKind::TooManyRequests,
                    format!(
                        "connection exceeded {} requests; reconnect to continue",
                        shared.config.max_requests_per_conn
                    ),
                ),
            )?;
            counter("rsj_serve_errors_total").inc();
            return Ok(());
        }

        if let Some(chaos) = &shared.config.chaos {
            let req = served as u64 - 1;
            if let Some(delay) = chaos.dispatch_delay(conn_id, req) {
                std::thread::sleep(delay);
            }
            if chaos.worker_panics(conn_id, req) {
                panic!("chaos: injected worker panic (conn {conn_id}, request {req})");
            }
        }

        let started = Instant::now();
        counter("rsj_serve_requests_total").inc();
        let decoded = decode_request(&line);
        let decode_ended = Instant::now();
        let (client_trace_id, want_trace) = match &decoded {
            Ok(Request::Plan {
                trace_id, trace, ..
            }) => (sanitize_trace_id(trace_id.as_deref()), *trace),
            _ => (None, false),
        };
        let op = op_name(&decoded);
        // A timeline exists when the server retains traces, when slow
        // logging needs a breakdown, or when this request asked for one.
        // Otherwise the disabled timeline allocates nothing and every
        // recording call below is a branch on `None`.
        let tracing = want_trace || shared.trace.is_some() || shared.config.slow_ms.is_some();
        let mut timeline = if tracing {
            let mut t = rsj_obs::Timeline::begin(rsj_obs::TraceContext::generate(), base);
            if let Some(id) = &client_trace_id {
                t.adopt_trace_id(id.clone());
            }
            if is_first {
                t.record_span("queue_wait", accepted_at, dequeued_at);
                // The worker sat in read() from dequeue until the line
                // arrived: client think time, not server latency —
                // recorded so the timeline has no unattributed gap, and
                // named so the slow-warn gate can subtract it.
                t.record_span("read_wait", dequeued_at, line_at);
            }
            t.record_span("decode", started, decode_ended);
            t
        } else {
            rsj_obs::Timeline::disabled()
        };
        // Generate-or-adopt: every response carries the client's id when
        // it sent one, or the server-minted id when tracing is on.
        let trace_id = timeline.trace_id().or_else(|| client_trace_id.clone());
        let (response, is_shutdown) = dispatch(shared, decoded, base, &mut timeline);
        let response = response.with_trace_id(trace_id.clone());
        if let Response::Error { kind, .. } = &response {
            counter("rsj_serve_errors_total").inc();
            if *kind == ErrorKind::DeadlineExceeded {
                counter("rsj_serve_deadline_exceeded_total").inc();
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        let registry = rsj_obs::global_registry();
        let aggregate = registry.histogram("rsj_serve_request_seconds");
        let per_op = registry.histogram(per_op_histogram(op));
        match &trace_id {
            Some(id) => {
                aggregate.observe_with_exemplar(elapsed, id);
                per_op.observe_with_exemplar(elapsed, id);
            }
            None => {
                aggregate.observe(elapsed);
                per_op.observe(elapsed);
            }
        }
        let write_started = Instant::now();
        write_response(&mut writer, &response)?;
        timeline.record_span("write", write_started, Instant::now());
        if let Some(record) = timeline.finish(op) {
            if let Some(slow_ms) = shared.config.slow_ms {
                if attributable_us(&record) >= slow_ms.saturating_mul(1_000) {
                    warn_slow_request(&record, slow_ms);
                }
            }
            if let Some(ring) = &shared.trace {
                ring.push(record);
            }
        }
        if is_shutdown {
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        // During a drain, finish the request being processed but take no
        // further work from this connection.
        if shared.shutting_down() {
            return Ok(());
        }
    }
}

fn write_response<W: Write>(writer: &mut W, response: &Response) -> std::io::Result<()> {
    let mut body = encode(response).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("encode: {e}"))
    })?;
    // One write per response: a separate `\n` write would hand Nagle a
    // second tiny segment and stall behind the peer's delayed ACK.
    body.push('\n');
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// The request's op as a static label (for per-op metrics and timeline
/// records) — no allocation on the request path.
fn op_name(decoded: &Result<Request, (ErrorKind, String)>) -> &'static str {
    match decoded {
        Ok(Request::Plan { .. }) => "plan",
        Ok(Request::Trace { .. }) => "trace",
        Ok(Request::Metrics { .. }) => "metrics",
        Ok(Request::Ping { .. }) => "ping",
        Ok(Request::Health { .. }) => "health",
        Ok(Request::Ready { .. }) => "ready",
        Ok(Request::Shutdown { .. }) => "shutdown",
        Err(_) => "invalid",
    }
}

/// The per-op latency series: `rsj_serve_request_seconds_<op>`. Static
/// names (the registry is unlabelled) so the hot path never formats.
/// The aggregate `rsj_serve_request_seconds` series is kept alongside
/// for dashboard continuity.
fn per_op_histogram(op: &str) -> &'static str {
    match op {
        "plan" => "rsj_serve_request_seconds_plan",
        "trace" => "rsj_serve_request_seconds_trace",
        "metrics" => "rsj_serve_request_seconds_metrics",
        "ping" => "rsj_serve_request_seconds_ping",
        "health" => "rsj_serve_request_seconds_health",
        "ready" => "rsj_serve_request_seconds_ready",
        "shutdown" => "rsj_serve_request_seconds_shutdown",
        _ => "rsj_serve_request_seconds_invalid",
    }
}

/// The server-attributable share of a request's wall time: everything
/// except `read_wait`, the span spent waiting for the client's first
/// bytes after dequeue. That wait belongs to the client — a peer that
/// connects and sits idle before sending must not read as a slow
/// *request* — so the `--slow-ms` gate compares against this, not
/// `total_us`.
fn attributable_us(record: &rsj_obs::TimelineRecord) -> u64 {
    record
        .total_us
        .saturating_sub(record.stage_us("read_wait").unwrap_or(0))
}

/// The single warn-level slow-request event: trace id, op, total and the
/// full stage breakdown in one line, so log pipelines keep it atomic.
fn warn_slow_request(record: &rsj_obs::TimelineRecord, slow_ms: u64) {
    use std::fmt::Write as _;
    let mut stages = String::new();
    for s in &record.stages {
        let _ = write!(
            stages,
            " {}={:.3}ms",
            s.name,
            s.duration_us() as f64 / 1_000.0
        );
    }
    rsj_obs::warn!(
        "slow request trace_id={} op={} total={:.3}ms threshold={slow_ms}ms stages:{stages}",
        record.trace_id,
        record.op,
        record.total_us as f64 / 1_000.0,
    );
}

/// Answers a `trace` op: the ring's newest records, filtered, as wire
/// timelines. Filters apply across the whole ring; `last` caps the
/// filtered result.
fn handle_trace(
    shared: &Shared,
    last: Option<usize>,
    min_duration_ms: Option<f64>,
    trace_id: Option<String>,
) -> Response {
    const TRACE_DEFAULT_LAST: usize = 32;
    let Some(ring) = &shared.trace else {
        return Response::error(
            ErrorKind::TracingDisabled,
            "server runs without --trace-buffer; no timelines are retained",
        );
    };
    let timelines = ring
        .recent(ring.capacity())
        .into_iter()
        .filter(|r| min_duration_ms.is_none_or(|ms| r.total_us as f64 / 1_000.0 >= ms))
        .filter(|r| trace_id.as_deref().is_none_or(|id| r.trace_id == id))
        .take(last.unwrap_or(TRACE_DEFAULT_LAST))
        .map(|r| (*r).clone())
        .collect();
    Response::Trace {
        v: PROTOCOL_VERSION,
        timelines,
    }
}

/// Answers one decoded request; `base` anchors the request's deadline
/// and `timeline` accumulates its stage intervals. The bool is
/// "shutdown requested".
fn dispatch(
    shared: &Shared,
    decoded: Result<Request, (ErrorKind, String)>,
    base: Instant,
    timeline: &mut rsj_obs::Timeline,
) -> (Response, bool) {
    let request = match decoded {
        Ok(request) => request,
        Err((kind, message)) => return (Response::error(kind, message), false),
    };
    match request {
        Request::Ping { .. } => (
            Response::Pong {
                v: PROTOCOL_VERSION,
            },
            false,
        ),
        Request::Metrics { .. } => (
            Response::Metrics {
                v: PROTOCOL_VERSION,
                prometheus: rsj_obs::global_registry().snapshot().to_prometheus(),
            },
            false,
        ),
        Request::Health { .. } => (
            Response::Health {
                v: PROTOCOL_VERSION,
                health: shared.health_info(),
            },
            false,
        ),
        Request::Ready { .. } => {
            if shared.is_ready() {
                (
                    Response::Ready {
                        v: PROTOCOL_VERSION,
                    },
                    false,
                )
            } else {
                (
                    Response::error(ErrorKind::NotReady, not_ready_message(shared)),
                    false,
                )
            }
        }
        Request::Shutdown { .. } => (
            Response::ShuttingDown {
                v: PROTOCOL_VERSION,
            },
            true,
        ),
        Request::Trace {
            last,
            min_duration_ms,
            trace_id,
            ..
        } => (handle_trace(shared, last, min_duration_ms, trace_id), false),
        Request::Plan {
            distribution,
            cost,
            solver,
            seed,
            simulate,
            deadline_ms,
            trace,
            ..
        } => {
            // A recovering server sheds plan work with a typed
            // `not_ready`: answering from a half-warm cache would turn
            // guaranteed hits into misses and double-solve the backlog.
            if !shared.is_recovered() {
                counter("rsj_serve_not_ready_total").inc();
                return (
                    Response::error(ErrorKind::NotReady, not_ready_message(shared)),
                    false,
                );
            }
            let deadline = deadline_ms.map(|ms| base + Duration::from_millis(ms));
            let mut response = handle_plan(
                shared,
                distribution,
                cost,
                solver,
                seed,
                simulate,
                deadline,
                timeline,
            );
            // The `write` span can't be in this snapshot (the response is
            // serialized after it's built); the ring's copy of the same
            // trace, pushed after the write completes, has it.
            if trace {
                if let Response::Plan { timeline: slot, .. } = &mut response {
                    *slot = timeline.snapshot("plan");
                }
            }
            (response, false)
        }
    }
}

fn not_ready_message(shared: &Shared) -> String {
    if !shared.is_recovered() {
        "server is recovering its plan cache; retry shortly".to_string()
    } else if shared.shutting_down() {
        "server is draining".to_string()
    } else {
        format!(
            "admission queue at {} (high watermark {})",
            shared.admission.depth(),
            shared.admission.config().high_watermark
        )
    }
}

/// The composite cache key: the planner's own `(dist, cost, solver)` key
/// plus the simulate options, which also shape the returned [`Plan`].
fn full_cache_key(planner: &Planner, simulate: Option<SimulateOptions>) -> Option<String> {
    let base = planner.cache_key()?;
    let sim = match simulate {
        Some(s) => format!("jobs={},seed={}", s.jobs, s.seed),
        None => "none".to_string(),
    };
    Some(format!("{base}|sim={sim}"))
}

fn deadline_response(deadline: Instant) -> Response {
    Response::error(
        ErrorKind::DeadlineExceeded,
        format!("deadline expired {} ms ago", deadline.elapsed().as_millis()),
    )
}

#[allow(clippy::too_many_arguments)]
fn handle_plan(
    shared: &Shared,
    distribution: DistSpec,
    cost: Option<CostModel>,
    solver: SolverSpec,
    seed: Option<u64>,
    simulate: Option<SimulateOptions>,
    deadline: Option<Instant>,
    timeline: &mut rsj_obs::Timeline,
) -> Response {
    let started = Instant::now();
    // Shed-at-dequeue: a request whose deadline lapsed while queued is
    // dead on arrival; answering it would only waste a solver slot.
    if let Some(d) = deadline {
        if Instant::now() >= d {
            return deadline_response(d);
        }
    }
    let solver = match seed {
        Some(seed) => solver.with_seed(seed),
        None => solver,
    };
    let mut builder = Planner::builder().distribution(distribution).solver(solver);
    if let Some(cost) = cost {
        builder = builder.cost_rates(cost.alpha, cost.beta, cost.gamma);
    }
    if let Some(simulate) = simulate {
        builder = builder.simulate(simulate);
    }
    let planner = match builder.build() {
        Ok(planner) => planner,
        Err(e) => return Response::error(classify(&e), e.to_string()),
    };
    let build_ended = Instant::now();
    timeline.record_span("build", started, build_ended);
    let build_seconds = (build_ended - started).as_secs_f64();

    let key = full_cache_key(&planner, simulate);
    let cached = timeline.time("cache_lookup", || {
        key.as_deref().and_then(|key| shared.cache.get(key))
    });
    if let Some(cached) = cached {
        counter("rsj_serve_cache_hits_total").inc();
        return plan_response(
            &planner,
            (*cached).clone(),
            Origin::Cached,
            build_seconds,
            0.0,
            started,
        );
    }
    counter("rsj_serve_cache_misses_total").inc();

    let solve_started = Instant::now();
    let flighted = match key.as_deref() {
        // Identical concurrent misses coalesce onto one solver run; the
        // abandoned value is what followers see if the leader panics
        // (e.g. an injected chaos fault) — typed, not a hang.
        Some(key) => shared.flights.run(
            key,
            deadline,
            Err((ErrorKind::Internal, "in-flight solve abandoned".to_string())),
            || solve(shared, &planner, key, deadline, timeline),
        ),
        // Uncacheable requests have no stable identity to coalesce on.
        None => Flighted::Led(solve_uncached(&planner, deadline, timeline)),
    };
    let solve_seconds = solve_started.elapsed().as_secs_f64();
    let (outcome, origin) = match flighted {
        Flighted::Led(outcome) => {
            counter("rsj_serve_singleflight_leaders_total").inc();
            (outcome, Origin::Computed)
        }
        Flighted::Joined(outcome) => {
            counter("rsj_serve_singleflight_coalesced_total").inc();
            // A follower's wall time here is spent parked on the
            // leader's flight, not solving.
            timeline.record_span("singleflight_wait", solve_started, Instant::now());
            (outcome, Origin::Coalesced)
        }
        Flighted::TimedOut => {
            let d = deadline.expect("only a deadline can time a follower out");
            return deadline_response(d);
        }
    };
    match outcome {
        Ok(plan) => plan_response(
            &planner,
            (*plan).clone(),
            origin,
            build_seconds,
            solve_seconds,
            started,
        ),
        Err((kind, message)) => Response::error(kind, message),
    }
}

/// Runs the solver as a single-flight leader: cancellable by `deadline`,
/// publishing into the cache on success.
fn solve(
    shared: &Shared,
    planner: &Planner,
    key: &str,
    deadline: Option<Instant>,
    timeline: &mut rsj_obs::Timeline,
) -> SolveOutcome {
    let plan = solve_uncached(planner, deadline, timeline)?;
    shared.cache.insert(key.to_string(), Arc::clone(&plan));
    // Append-before-response: once the client hears this answer, the
    // record is already flushed to the OS, so it survives `kill -9`.
    timeline.time("journal_append", || shared.journal_append(key, &plan));
    Ok(plan)
}

fn solve_uncached(
    planner: &Planner,
    deadline: Option<Instant>,
    timeline: &mut rsj_obs::Timeline,
) -> SolveOutcome {
    counter("rsj_serve_solver_invocations_total").inc();
    let cancel = match deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::none(),
    };
    match planner.plan_traced(&cancel, timeline) {
        Ok(plan) => Ok(Arc::new(plan)),
        Err(e) => Err((classify(&e), e.to_string())),
    }
}

/// How a plan reached this response, for [`Provenance`].
#[derive(Clone, Copy)]
enum Origin {
    Cached,
    Computed,
    Coalesced,
}

fn plan_response(
    planner: &Planner,
    plan: Plan,
    origin: Origin,
    build_seconds: f64,
    solve_seconds: f64,
    started: Instant,
) -> Response {
    Response::Plan {
        v: PROTOCOL_VERSION,
        provenance: Provenance {
            server: concat!("rsj-serve/", env!("CARGO_PKG_VERSION")).to_string(),
            protocol: PROTOCOL_VERSION,
            solver: planner.solver_spec().name().to_string(),
            threads: rsj_par::Parallelism::current().threads(),
            cached: matches!(origin, Origin::Cached),
            coalesced: matches!(origin, Origin::Coalesced),
        },
        timings: Timings {
            build_seconds,
            solve_seconds,
            total_seconds: started.elapsed().as_secs_f64(),
        },
        plan,
        trace_id: None,
        timeline: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Subscriber state is process-global; this is the only test in the
    // lib binary that installs one.
    #[test]
    fn slow_request_warns_once_with_trace_id_and_stage_breakdown() {
        let sink = Arc::new(rsj_obs::MemorySink::new(rsj_obs::Level::Warn));
        rsj_obs::set_subscriber(sink.clone());
        let record = rsj_obs::TimelineRecord {
            trace_id: "00000000000000000000000000c0ffee".to_string(),
            op: "plan".to_string(),
            total_us: 12_500,
            stages: vec![
                rsj_obs::StageRecord {
                    name: "queue_wait".to_string(),
                    start_us: 0,
                    end_us: 1_000,
                    args: Vec::new(),
                },
                rsj_obs::StageRecord {
                    name: "solve".to_string(),
                    start_us: 1_000,
                    end_us: 12_000,
                    args: Vec::new(),
                },
            ],
        };
        warn_slow_request(&record, 5);
        rsj_obs::clear_subscriber();
        let events = sink.events();
        assert_eq!(events.len(), 1, "exactly one warn event: {events:?}");
        let event = &events[0];
        assert!(event.contains("slow request"), "{event}");
        assert!(
            event.contains("trace_id=00000000000000000000000000c0ffee"),
            "{event}"
        );
        assert!(event.contains("op=plan"), "{event}");
        assert!(event.contains("total=12.500ms"), "{event}");
        assert!(event.contains("threshold=5ms"), "{event}");
        assert!(event.contains("queue_wait=1.000ms"), "{event}");
        assert!(event.contains("solve=11.000ms"), "{event}");
    }

    #[test]
    fn client_idle_before_the_first_line_is_not_slow() {
        // 12.5 ms wall, but 10 ms of it was waiting for the client's
        // first bytes: only the remaining 2.5 ms counts against a 5 ms
        // slow threshold.
        let record = rsj_obs::TimelineRecord {
            trace_id: "00000000000000000000000000c0ffee".to_string(),
            op: "plan".to_string(),
            total_us: 12_500,
            stages: vec![
                rsj_obs::StageRecord {
                    name: "read_wait".to_string(),
                    start_us: 0,
                    end_us: 10_000,
                    args: Vec::new(),
                },
                rsj_obs::StageRecord {
                    name: "solve".to_string(),
                    start_us: 10_000,
                    end_us: 12_000,
                    args: Vec::new(),
                },
            ],
        };
        assert_eq!(attributable_us(&record), 2_500);
        assert!(attributable_us(&record) < 5_000, "must not warn at 5ms");
        // Without a read_wait stage the full wall time is attributable.
        let no_wait = rsj_obs::TimelineRecord {
            stages: Vec::new(),
            ..record
        };
        assert_eq!(attributable_us(&no_wait), 12_500);
    }

    #[test]
    fn per_op_histogram_names_are_static_and_distinct() {
        let decoded: Result<Request, (ErrorKind, String)> = Ok(Request::ping());
        assert_eq!(op_name(&decoded), "ping");
        assert_eq!(per_op_histogram("ping"), "rsj_serve_request_seconds_ping");
        assert_eq!(per_op_histogram("plan"), "rsj_serve_request_seconds_plan");
        assert_eq!(
            per_op_histogram("nonsense"),
            "rsj_serve_request_seconds_invalid"
        );
    }
}
