//! Standard-normal CDF and quantile, implemented from scratch.
//!
//! The quantile uses Acklam's rational approximation refined by one Halley
//! step against our own `norm_cdf`, giving close to full double precision.

use super::erf::erfc;

/// Standard normal probability density `φ(x)`.
pub fn norm_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution `Φ(x) = erfc(-x/√2) / 2`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `1 - Φ(x)`, computed without
/// cancellation for large `x`.
pub fn norm_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

// Acklam's coefficients for the inverse normal CDF.
const A: [f64; 6] = [
    -3.969_683_028_665_376e1,
    2.209_460_984_245_205e2,
    -2.759_285_104_469_687e2,
    1.383_577_518_672_69e2,
    -3.066_479_806_614_716e1,
    2.506_628_277_459_239,
];
const B: [f64; 5] = [
    -5.447_609_879_822_406e1,
    1.615_858_368_580_409e2,
    -1.556_989_798_598_866e2,
    6.680_131_188_771_972e1,
    -1.328_068_155_288_572e1,
];
const C: [f64; 6] = [
    -7.784_894_002_430_293e-3,
    -3.223_964_580_411_365e-1,
    -2.400_758_277_161_838,
    -2.549_732_539_343_734,
    4.374_664_141_464_968,
    2.938_163_982_698_783,
];
const D: [f64; 4] = [
    7.784_695_709_041_462e-3,
    3.224_671_290_700_398e-1,
    2.445_134_137_142_996,
    3.754_408_661_907_416,
];
const P_LOW: f64 = 0.02425;

/// Inverse of the standard normal CDF: returns `x` with `Φ(x) = p`.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`. Returns `-∞`/`+∞` at the endpoints.
pub fn norm_quantile(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "norm_quantile: p must be in [0, 1], got {p}"
    );
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    let x = if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail (by symmetry).
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step pushes the ~1e-9 approximation error down
    // to machine precision.
    let e = norm_cdf(x) - p;
    let u = e / norm_pdf(x);
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64, msg: &str) {
        assert!(
            (a - b).abs() < tol * b.abs().max(1.0),
            "{msg}: got {a}, expected {b}"
        );
    }

    #[test]
    fn cdf_known_values() {
        assert_close(norm_cdf(0.0), 0.5, 1e-15, "Φ(0)");
        assert_close(norm_cdf(1.0), 0.841_344_746_068_542_9, 1e-13, "Φ(1)");
        assert_close(norm_cdf(-1.0), 0.158_655_253_931_457_05, 1e-13, "Φ(-1)");
        assert_close(norm_cdf(1.959_963_984_540_054), 0.975, 1e-12, "Φ(1.96)");
    }

    #[test]
    fn quantile_round_trip() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = norm_quantile(p);
            assert_close(norm_cdf(x), p, 1e-12, &format!("roundtrip p={p}"));
        }
    }

    #[test]
    fn quantile_extreme_tails() {
        for &p in &[1e-12, 1e-9, 1e-6, 1.0 - 1e-6, 1.0 - 1e-9] {
            let x = norm_quantile(p);
            assert_close(norm_cdf(x), p, 1e-8, &format!("tail p={p}"));
        }
    }

    #[test]
    fn quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.25, 0.4] {
            let lo = norm_quantile(p);
            let hi = norm_quantile(1.0 - p);
            assert_close(lo, -hi, 1e-12, &format!("symmetry p={p}"));
        }
    }

    #[test]
    fn sf_avoids_cancellation() {
        // Far tail: 1 - Φ(8) ≈ 6.22e-16; direct subtraction would lose it.
        let sf = norm_sf(8.0);
        assert!(sf > 0.0 && sf < 1e-14, "sf(8) = {sf}");
    }

    #[test]
    fn cross_validate_against_statrs() {
        use statrs::distribution::{ContinuousCDF, Normal};
        let n = Normal::new(0.0, 1.0).unwrap();
        // statrs' normal CDF (via its erf) is ~1e-10 accurate; see the
        // tighter known-value tests above for our actual precision.
        for &x in &[-3.0, -1.5, -0.2, 0.0, 0.7, 2.3, 4.0] {
            assert_close(norm_cdf(x), n.cdf(x), 1e-8, &format!("Φ({x}) vs statrs"));
        }
        for &p in &[0.001, 0.1, 0.5, 0.9, 0.999] {
            assert_close(
                norm_quantile(p),
                n.inverse_cdf(p),
                1e-7,
                &format!("Φ⁻¹({p}) vs statrs"),
            );
        }
    }
}
