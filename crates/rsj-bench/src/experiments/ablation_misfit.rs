//! Ablation (beyond the paper's evaluation): how fragile is the §5.3
//! fit-then-plan pipeline? For each Table 1 truth, draw `N` runtimes, fit
//! a LogNormal (the paper's model for traces), plan with the DP heuristic
//! on the fit, and score the plan under the truth. Reported: the penalty
//! ratio vs planning directly on the truth.

use crate::report::Table;
use crate::scenarios::{paper_distributions, Fidelity, EPSILON};
use rand::SeedableRng;
use rsj_core::robustness::misspecification_report;
use rsj_core::{CostModel, DiscretizedDp};
use rsj_dist::{fit_lognormal, sample_n, DiscretizationScheme};
use rsj_par::Parallelism;

/// Trace sizes swept (the paper's archives hold "over 5000 runs").
pub const SAMPLE_SIZES: [usize; 4] = [50, 200, 1000, 5000];

/// One distribution's row: penalty ratio per trace size.
#[derive(Debug, Clone)]
pub struct Row {
    /// Truth distribution label.
    pub distribution: String,
    /// `(trace size, penalty ratio)`; `None` when the fit failed.
    pub penalties: Vec<(usize, Option<f64>)>,
}

/// Computes the ablation.
pub fn compute(fidelity: Fidelity, seed: u64) -> Vec<Row> {
    let cost = CostModel::reservation_only();
    let n_dp = fidelity.discretization().min(500);
    let dists = paper_distributions();
    Parallelism::current().par_map(&dists, |i, nd| {
        let dp = DiscretizedDp::new(DiscretizationScheme::EqualProbability, n_dp, EPSILON)
            .expect("valid parameters");
        let penalties = SAMPLE_SIZES
            .iter()
            .map(|&n| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed.wrapping_mul(389).wrapping_add((i * 31 + n) as u64),
                );
                let samples = sample_n(nd.dist.as_ref(), n, &mut rng);
                let ratio = fit_lognormal(&samples).ok().and_then(|fit| {
                    misspecification_report(&dp, &fit.dist, nd.dist.as_ref(), &cost)
                        .ok()
                        .map(|r| r.penalty_ratio)
                });
                (n, ratio)
            })
            .collect();
        Row {
            distribution: nd.name.to_string(),
            penalties,
        }
    })
}

/// Renders and writes `results/ablation_misfit.{md,csv}`.
pub fn emit(fidelity: Fidelity, seed: u64) -> std::io::Result<Vec<Row>> {
    let rows = compute(fidelity, seed);
    let mut header = vec!["Truth".to_string()];
    header.extend(SAMPLE_SIZES.iter().map(|n| format!("N={n}")));
    let mut table = Table::new(header);
    for r in &rows {
        let mut cells = vec![r.distribution.clone()];
        cells.extend(r.penalties.iter().map(|&(_, p)| match p {
            Some(v) => format!("{v:.3}"),
            None => "-".to_string(),
        }));
        table.push_row(cells)?;
    }
    table.emit(
        "ablation_misfit",
        "Ablation — fit-then-plan fragility: cost of a LogNormal-fitted DP plan vs a truth-informed plan (penalty ratio, 1.0 = free)",
    )?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalties_are_plausible_ratios() {
        // Note: the ratio can dip below 1 — the DP planner is itself an
        // approximation, and an accidentally-smoother fitted law sometimes
        // discretizes better than a heavy-tailed truth does.
        let rows = compute(Fidelity::Quick, 41);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            for &(n, p) in &r.penalties {
                let v = p.unwrap_or_else(|| panic!("{}/{n}: fit failed", r.distribution));
                assert!(
                    v > 0.5 && v < 10.0,
                    "{} N={n}: penalty {v} out of plausible range",
                    r.distribution
                );
            }
        }
    }

    #[test]
    fn lognormal_truth_converges_to_free() {
        // Fitting the right family on 5000 samples should be essentially
        // free.
        let rows = compute(Fidelity::Quick, 41);
        let row = rows.iter().find(|r| r.distribution == "Lognormal").unwrap();
        let at_5000 = row.penalties.last().unwrap().1.unwrap();
        assert!(
            at_5000 < 1.05,
            "well-fitted LogNormal plan should be near-free: {at_5000}"
        );
    }

    #[test]
    fn small_traces_are_riskier_on_average() {
        let rows = compute(Fidelity::Quick, 41);
        let avg = |idx: usize| -> f64 {
            let vals: Vec<f64> = rows.iter().filter_map(|r| r.penalties[idx].1).collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            avg(0) >= avg(3) - 0.02,
            "N=50 average penalty {} should not beat N=5000 {}",
            avg(0),
            avg(3)
        );
    }
}
