//! Figure 3: normalized expected cost of the Eq. 11 sequence as a function
//! of the first reservation `t₁`, for each Table 1 distribution — the
//! brute-force landscape, including the invalid-candidate gaps.

use crate::report::{write_result_file, Table};
use crate::scenarios::{paper_distributions, Fidelity};
use rsj_core::{BruteForce, CostModel, EvalMethod, SweepPoint};
use rsj_par::Parallelism;

/// One panel of Figure 3.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Distribution label.
    pub distribution: String,
    /// The sweep points (`normalized_cost = None` in the gaps).
    pub points: Vec<SweepPoint>,
}

/// Computes all nine panels.
pub fn compute(fidelity: Fidelity, seed: u64) -> Vec<Panel> {
    let cost = CostModel::reservation_only();
    let dists = paper_distributions();
    Parallelism::current().par_map(&dists, |i, nd| {
        let bf = BruteForce::new(
            fidelity.grid(),
            fidelity.samples(),
            EvalMethod::MonteCarlo,
            seed.wrapping_add(i as u64),
        )
        .expect("valid parameters");
        Panel {
            distribution: nd.name.to_string(),
            points: bf.sweep(nd.dist.as_ref(), &cost),
        }
    })
}

/// Writes one CSV per panel (`fig3_<dist>.csv`: `t1,normalized_cost`) plus
/// a summary table of the panels' valid fractions and minima.
pub fn emit(fidelity: Fidelity, seed: u64) -> std::io::Result<Vec<Panel>> {
    let panels = compute(fidelity, seed);
    let mut summary = Table::new(vec![
        "Distribution",
        "grid points",
        "valid",
        "best t1",
        "best cost",
    ]);
    for p in &panels {
        let mut csv = String::from("t1,normalized_cost\n");
        for pt in &p.points {
            match pt.normalized_cost {
                Some(c) => csv.push_str(&format!("{},{}\n", pt.t1, c)),
                None => csv.push_str(&format!("{},\n", pt.t1)),
            }
        }
        write_result_file(&format!("fig3_{}.csv", p.distribution.to_lowercase()), &csv)?;
        let valid: Vec<&SweepPoint> = p
            .points
            .iter()
            .filter(|x| x.normalized_cost.is_some())
            .collect();
        let best = valid
            .iter()
            .min_by(|a, b| {
                a.normalized_cost
                    .partial_cmp(&b.normalized_cost)
                    .expect("finite")
            })
            .expect("at least one valid candidate");
        summary.push_row(vec![
            p.distribution.clone(),
            p.points.len().to_string(),
            valid.len().to_string(),
            format!("{:.3}", best.t1),
            format!("{:.3}", best.normalized_cost.expect("valid")),
        ])?;
    }
    summary.emit(
        "fig3_summary",
        "Figure 3 — t1 sweep summary (per-panel data in fig3_<dist>.csv)",
    )?;
    Ok(panels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_panels_with_valid_minima() {
        let panels = compute(Fidelity::Quick, 17);
        assert_eq!(panels.len(), 9);
        for p in &panels {
            assert!(
                p.points.iter().any(|x| x.normalized_cost.is_some()),
                "{}: no valid candidate",
                p.distribution
            );
        }
    }

    #[test]
    fn exponential_panel_shows_the_gap() {
        let panels = compute(Fidelity::Quick, 17);
        let exp = panels
            .iter()
            .find(|p| p.distribution == "Exponential")
            .unwrap();
        // The paper highlights a gap roughly between 0.25 and 0.75.
        let in_gap = exp
            .points
            .iter()
            .filter(|p| p.t1 > 0.35 && p.t1 < 0.65)
            .collect::<Vec<_>>();
        assert!(!in_gap.is_empty());
        assert!(
            in_gap.iter().all(|p| p.normalized_cost.is_none()),
            "candidates in (0.35, 0.65) must be invalid"
        );
        // And a valid region near zero.
        assert!(exp
            .points
            .iter()
            .filter(|p| p.t1 < 0.2)
            .any(|p| p.normalized_cost.is_some()));
    }

    #[test]
    fn t1_grids_are_increasing() {
        let panels = compute(Fidelity::Quick, 17);
        for p in &panels {
            for w in p.points.windows(2) {
                assert!(w[1].t1 > w[0].t1);
            }
        }
    }
}
