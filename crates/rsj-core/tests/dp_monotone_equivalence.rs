//! Equivalence suite for the `O(n log n)` monotone DP fast path: whenever
//! the fast path fires, its `DpSolution` must be **bit-for-bit** identical
//! to the exact `O(n²)` pass — cost, values, indices and FNV-1a digest —
//! across the full Table 1 distribution suite and adversarial discrete
//! inputs (exact ties, zero-mass atoms, near-degenerate grids). When the
//! gate declines, the public entry point must fall back to the exact pass
//! and still return the exact answer.

use proptest::prelude::*;
use rsj_core::{
    monotone_gate, optimal_discrete, optimal_discrete_exact, optimal_discrete_monotone,
    CancelToken, CostModel, DpSolution,
};
use rsj_dist::{discretize, DiscreteDistribution, DiscretizationScheme, DistSpec};

/// FNV-1a over IEEE-754 bit patterns — the same digest convention as
/// `rsj-bench`'s solver baselines and `Planner::plan`, so a mismatch here
/// is exactly a mismatch CI's digest diff would flag.
fn digest(values: &[f64]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Asserts the two solutions are the same bits, not merely close.
fn assert_bit_identical(fast: &DpSolution, exact: &DpSolution, context: &str) {
    assert_eq!(
        fast.expected_cost.to_bits(),
        exact.expected_cost.to_bits(),
        "{context}: expected_cost {} vs {}",
        fast.expected_cost,
        exact.expected_cost
    );
    assert_eq!(fast.indices, exact.indices, "{context}: indices");
    assert_eq!(
        fast.values.len(),
        exact.values.len(),
        "{context}: sequence length"
    );
    for (i, (a, b)) in fast.values.iter().zip(&exact.values).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: value[{i}] {a} vs {b}");
    }
    assert_eq!(
        digest(&fast.values),
        digest(&exact.values),
        "{context}: digest"
    );
}

/// Runs both passes on `d`; the fast path must fire (`fire` = true) or at
/// least match when it does.
fn check_equivalence(d: &DiscreteDistribution, cost: &CostModel, fire: bool, context: &str) {
    let exact = optimal_discrete_exact(d, cost).expect("exact pass solves");
    match optimal_discrete_monotone(d, cost, &CancelToken::none()).expect("no cancellation") {
        Some(fast) => assert_bit_identical(&fast, &exact, context),
        None => assert!(!fire, "{context}: fast path unexpectedly declined"),
    }
    // The public auto-dispatch entry point must agree with the exact pass
    // regardless of which branch it took.
    let auto = optimal_discrete(d, cost).expect("auto entry point solves");
    assert_bit_identical(&auto, &exact, context);
}

#[test]
fn table1_sweep_is_bit_identical_across_both_schemes() {
    // All nine Table 1 distributions × both discretization schemes × three
    // cost models. The gate must *fire* on every one of these — this is
    // the fleet-wide configuration space, and a silent decline would
    // silently forfeit the speedup.
    let costs = [
        CostModel::reservation_only(),
        CostModel::new(0.95, 1.0, 1.05).unwrap(),
        CostModel::new(2.0, 0.0, 10.0).unwrap(),
    ];
    for (name, spec) in DistSpec::paper_table1() {
        let dist = spec.build().unwrap();
        for scheme in [
            DiscretizationScheme::EqualTime,
            DiscretizationScheme::EqualProbability,
        ] {
            let d = discretize(dist.as_ref(), scheme, 300, 1e-7)
                .unwrap_or_else(|e| panic!("{name}/{scheme:?}: {e}"));
            for (ci, cost) in costs.iter().enumerate() {
                check_equivalence(&d, cost, true, &format!("{name}/{scheme:?}/cost{ci}"));
            }
        }
    }
}

#[test]
fn large_grid_is_bit_identical() {
    // One deep grid per scheme so the suite also covers spans where the
    // exact pass goes parallel (n > DP_PAR_MIN_SPAN).
    let dist = DistSpec::LogNormal {
        mu: 3.0,
        sigma: 0.5,
    }
    .build()
    .unwrap();
    let cost = CostModel::new(0.95, 1.0, 1.05).unwrap();
    for scheme in [
        DiscretizationScheme::EqualTime,
        DiscretizationScheme::EqualProbability,
    ] {
        let d = discretize(dist.as_ref(), scheme, 6000, 1e-7).unwrap();
        check_equivalence(&d, &cost, true, &format!("large/{scheme:?}"));
    }
}

#[test]
fn exact_tie_keeps_leftmost_index() {
    // v = [1, 2] with equal masses under RESERVATIONONLY ties exactly:
    // reserving 1-then-2 costs 1 + ½·2 = 2, reserving 2 alone costs 2.
    // The serial scan keeps the leftmost argmin, so the optimal ladder is
    // [1, 2] — the fast path must make the same tie call, not abort.
    let d = DiscreteDistribution::new(vec![1.0, 2.0], vec![0.5, 0.5]).unwrap();
    let cost = CostModel::reservation_only();
    let fast = optimal_discrete_monotone(&d, &cost, &CancelToken::none())
        .unwrap()
        .expect("exact ties are decisive, not aborts");
    assert_eq!(fast.indices, vec![0, 1]);
    check_equivalence(&d, &cost, true, "exact-tie");
}

#[test]
fn near_tie_aborts_and_falls_back_to_exact() {
    // Perturbing the tie above by 1e-13 puts the comparison inside the
    // fast path's trust margin: the candidates at state 0 differ by
    // ~5e-14 relative. The gate must decline (runtime abort) and the
    // public entry point must fall back to the exact pass.
    let d = DiscreteDistribution::new(vec![1.0 + 1e-13, 2.0], vec![0.5, 0.5]).unwrap();
    let cost = CostModel::reservation_only();
    assert!(
        optimal_discrete_monotone(&d, &cost, &CancelToken::none())
            .unwrap()
            .is_none(),
        "margin-zone comparison must abort the fast path"
    );
    let exact = optimal_discrete_exact(&d, &cost).unwrap();
    let auto = optimal_discrete(&d, &cost).unwrap();
    assert_bit_identical(&auto, &exact, "near-tie fallback");
}

#[test]
fn gate_declines_constructed_non_monotone_arrays() {
    // `DiscreteDistribution` cannot represent these shapes (construction
    // validates them away), so the gate is exercised on raw slices: the
    // envelope argument needs increasing values and non-increasing suffix
    // masses, and the gate must refuse anything else rather than trust
    // upstream validation.
    let cost = CostModel::reservation_only();
    // Decreasing values → slopes out of order.
    assert!(!monotone_gate(
        &[4.0, 2.0, 1.0],
        &[0.2, 0.3, 0.5],
        &[1.0, 0.8, 0.5, 0.0],
        &cost
    ));
    // Increasing suffix masses → queries out of order.
    assert!(!monotone_gate(
        &[1.0, 2.0, 4.0],
        &[0.2, 0.3, 0.5],
        &[0.5, 0.8, 1.0, 0.0],
        &cost
    ));
    // NaN values / masses → no trusted comparisons at all.
    assert!(!monotone_gate(
        &[1.0, f64::NAN, 4.0],
        &[0.2, 0.3, 0.5],
        &[1.0, 0.8, 0.5, 0.0],
        &cost
    ));
    // A well-formed instance passes.
    let d = DiscreteDistribution::new(vec![1.0, 2.0, 4.0], vec![0.2, 0.3, 0.5]).unwrap();
    assert!(monotone_gate(
        d.values(),
        d.probs(),
        &d.suffix_masses(),
        &cost
    ));
}

#[test]
fn zero_mass_atoms_and_coarse_spikes_are_bit_identical() {
    // Zero-weight atoms are dropped at construction; what reaches the DP
    // is the compacted support. Spiky mass profiles (mass concentrated on
    // few atoms, long thin tails) stress the envelope's segment shuffling.
    let d = DiscreteDistribution::new(
        vec![0.5, 1.0, 1.5, 2.0, 8.0, 9.0, 100.0],
        vec![0.0, 0.7, 0.0, 0.1, 0.0, 0.15, 0.05],
    )
    .unwrap();
    assert_eq!(d.len(), 4, "zero-mass atoms dropped");
    for cost in [
        CostModel::reservation_only(),
        CostModel::new(1.0, 0.5, 0.25).unwrap(),
    ] {
        check_equivalence(&d, &cost, true, "spiky");
    }
    // Geometric mass decay over a wide dynamic range.
    let values: Vec<f64> = (1..=64).map(|i| (i as f64) * (i as f64)).collect();
    let weights: Vec<f64> = (1..=64).map(|i| 0.7f64.powi(i)).collect();
    let d = DiscreteDistribution::new(values, weights).unwrap();
    check_equivalence(
        &d,
        &CostModel::new(1.5, 0.3, 0.2).unwrap(),
        true,
        "geometric",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized discrete instances: whenever the fast path fires it is
    /// bit-identical to the exact pass, and the auto entry point always
    /// equals the exact pass (fallback included). Steps are mantissa ×
    /// decade so sizes span nine orders of magnitude — some instances land
    /// comparisons in the margin zone and exercise the abort path.
    #[test]
    fn random_instances_match_exact_pass(
        mantissas in proptest::collection::vec(0.1..1.0f64, 2..48),
        decades in proptest::collection::vec(0.0..10.0f64, 2..48),
        raw_weights in proptest::collection::vec(1e-6..1.0f64, 2..48),
        alpha in 0.1..4.0f64,
        beta in 0.0..2.0f64,
        gamma in 0.0..3.0f64,
    ) {
        let n = mantissas.len().min(decades.len()).min(raw_weights.len());
        let mut values = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += mantissas[i] * 10f64.powi(1 - decades[i] as i32);
            values.push(acc);
        }
        // Cumulative sums of tiny steps can collide in f64; skip those
        // draws (DiscreteDistribution would reject them anyway).
        prop_assume!(values.windows(2).all(|w| w[1] > w[0]));
        let d = DiscreteDistribution::new(values, raw_weights[..n].to_vec()).unwrap();
        let cost = CostModel::new(alpha, beta, gamma).unwrap();
        let exact = optimal_discrete_exact(&d, &cost).unwrap();
        if let Some(fast) = optimal_discrete_monotone(&d, &cost, &CancelToken::none()).unwrap() {
            prop_assert_eq!(fast.expected_cost.to_bits(), exact.expected_cost.to_bits());
            prop_assert_eq!(&fast.indices, &exact.indices);
            for (a, b) in fast.values.iter().zip(&exact.values) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let auto = optimal_discrete(&d, &cost).unwrap();
        prop_assert_eq!(auto.expected_cost.to_bits(), exact.expected_cost.to_bits());
        prop_assert_eq!(&auto.indices, &exact.indices);
    }
}
