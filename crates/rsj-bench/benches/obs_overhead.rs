//! Criterion: cost of the rsj-obs instrumentation when nothing is
//! listening. The acceptance bar for the observability layer is ≤1%
//! regression on solver hot paths with no subscriber installed and
//! metrics disabled; these benches measure exactly that configuration.
//!
//! `instrumented_loop` runs the same arithmetic as `baseline_loop` but
//! passes through a span, a trace event, a scoped timer, and no-op
//! recorder calls on every iteration — the worst case of guard density,
//! far denser than any real solver loop. `dp_optimal_discrete` times the
//! real instrumented DP entry point end to end.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rsj_core::heuristics::optimal_discrete;
use rsj_core::CostModel;
use rsj_dist::{discretize, DiscretizationScheme, LogNormal};
use rsj_obs::{NoopRecorder, Recorder, ScopedTimer};

const ITERS: u64 = 1024;

fn baseline_loop() -> f64 {
    let mut acc = 0.0f64;
    for i in 0..ITERS {
        acc += black_box(i as f64).sqrt();
    }
    acc
}

fn instrumented_loop() -> f64 {
    let recorder = NoopRecorder;
    let mut acc = 0.0f64;
    for i in 0..ITERS {
        let _span = rsj_obs::span!("bench.iteration");
        let _timer = ScopedTimer::global("bench_noop_seconds");
        rsj_obs::trace!("iteration {i}");
        recorder.add("bench_noop_total", 1);
        acc += black_box(i as f64).sqrt();
        if rsj_obs::metrics_enabled() {
            recorder.observe("bench_noop_hist", acc);
        }
    }
    acc
}

fn bench_disabled_overhead(c: &mut Criterion) {
    // Neither init_from_env() nor set_metrics_enabled(true) is called:
    // tracing is off and metrics are disabled, the production default.
    assert!(!rsj_obs::metrics_enabled());
    let mut group = c.benchmark_group("obs_disabled_overhead");
    group.bench_function("baseline_loop", |b| b.iter(baseline_loop));
    group.bench_function("instrumented_loop", |b| b.iter(instrumented_loop));
    group.finish();
}

fn bench_instrumented_solver(c: &mut Criterion) {
    let dist = LogNormal::new(3.0, 0.5).unwrap();
    let discrete = discretize(&dist, DiscretizationScheme::EqualProbability, 200, 1e-7).unwrap();
    let cost = CostModel::reservation_only();
    let mut group = c.benchmark_group("obs_instrumented_solver");
    group.bench_function("dp_optimal_discrete_n200", |b| {
        b.iter(|| optimal_discrete(black_box(&discrete), &cost).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_disabled_overhead, bench_instrumented_solver);
criterion_main!(benches);
