//! Runs the fault-injection ablation (beyond the paper's own evaluation).

use rsj_bench::scenarios::Fidelity;
use rsj_bench::DEFAULT_SEED;

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    let fidelity = Fidelity::from_env();
    rsj_obs::info!(
        "running ablation_faults at {fidelity:?} fidelity (RSJ_FIDELITY=quick for a fast pass)"
    );
    rsj_bench::experiments::ablation_faults::emit(fidelity, DEFAULT_SEED)?;
    Ok(())
}
