//! A mergeable log-linear-bucket histogram for non-negative samples
//! (latencies, costs, counts).
//!
//! Values are bucketed by binary exponent with [`SUBBUCKETS`] linear
//! subdivisions per power of two, so any quantile estimate carries at most
//! `1/SUBBUCKETS` (~3%) relative error while the memory footprint stays
//! bounded by the sample *range*, not the sample *count*. Bucket counts are
//! integers, which makes [`Histogram::merge`] exactly associative and
//! commutative — per-shard histograms can be combined in any order and
//! yield identical quantiles (the floating-point `sum` is the only
//! order-sensitive field, and only in its last ulp).

use std::collections::BTreeMap;

/// Linear subdivisions per power of two. 32 bounds the relative quantile
/// error by 1/32 ≈ 3.1%.
pub const SUBBUCKETS: usize = 32;

/// Smallest/largest binary exponents tracked; values beyond are clamped
/// into the edge buckets. `2^-64 ≈ 5e-20` and `2^64 ≈ 1.8e19` cover every
/// quantity this workspace measures (seconds, costs, counts).
const MIN_EXP: i32 = -64;
const MAX_EXP: i32 = 64;

/// The bucket key reserved for exemplars of the underflow bucket
/// (values `<= 0`); real buckets clamp their exponent to
/// `[MIN_EXP, MAX_EXP]`, so this never collides.
const UNDERFLOW_KEY: (i32, usize) = (i32::MIN, 0);

/// An exemplar: one concrete sample retained alongside a bucket's count
/// so an aggregate can be traced back to an individual request.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// The sample value.
    pub value: f64,
    /// The trace id of the request that produced it.
    pub trace_id: String,
}

/// A mergeable log-linear histogram. See the module docs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Bucket counts keyed by binary exponent; each entry holds
    /// [`SUBBUCKETS`] linear sub-bucket counts for `[2^e, 2^{e+1})`.
    buckets: BTreeMap<i32, Vec<u64>>,
    /// Samples `<= 0` (a separate bucket: log buckets cannot hold them).
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Most recent traced sample per bucket, keyed like `buckets` plus
    /// [`UNDERFLOW_KEY`]. Only populated by [`Histogram::record_with_exemplar`].
    exemplars: BTreeMap<(i32, usize), Exemplar>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            exemplars: BTreeMap::new(),
        }
    }

    /// Records one sample. Non-finite values are dropped (they carry no
    /// position on the bucket axis); zero and negative values land in a
    /// dedicated underflow bucket.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value <= 0.0 {
            self.zero += 1;
            return;
        }
        let (exp, sub) = bucket_of(value);
        self.buckets
            .entry(exp)
            .or_insert_with(|| vec![0; SUBBUCKETS])[sub] += 1;
    }

    /// Records one sample and retains it as its bucket's exemplar
    /// (last-writer-wins: the bucket remembers its most recent traced
    /// sample). Non-finite values are dropped exactly as in
    /// [`Histogram::record`].
    pub fn record_with_exemplar(&mut self, value: f64, trace_id: &str) {
        if !value.is_finite() {
            return;
        }
        let key = if value <= 0.0 {
            UNDERFLOW_KEY
        } else {
            bucket_of(value)
        };
        self.record(value);
        self.exemplars.insert(
            key,
            Exemplar {
                value,
                trace_id: trace_id.to_string(),
            },
        );
    }

    /// Records every sample in `values`.
    pub fn record_all(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Number of recorded (finite) samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the buckets.
    ///
    /// Returns 0 for an empty histogram. The estimate is the midpoint of
    /// the bucket containing the rank-`⌈q·n⌉` sample, clamped to the exact
    /// observed `[min, max]`, so the relative error is bounded by half a
    /// bucket width (≤ 1/[`SUBBUCKETS`]).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zero;
        if rank <= seen {
            // The rank falls among zero/negative samples; min is exact for
            // the common all-non-negative case.
            return self.min.min(0.0);
        }
        for (&exp, subs) in &self.buckets {
            for (i, &c) in subs.iter().enumerate() {
                seen += c;
                if rank <= seen {
                    let lower = exp2(exp) * (1.0 + i as f64 / SUBBUCKETS as f64);
                    let upper = exp2(exp) * (1.0 + (i + 1) as f64 / SUBBUCKETS as f64);
                    return (0.5 * (lower + upper)).clamp(self.min, self.max);
                }
            }
        }
        self.max
    }

    /// The median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Adds every bucket of `other` into `self`. Exactly associative and
    /// commutative on counts/min/max (see the module docs).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.zero += other.zero;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&exp, subs) in &other.buckets {
            let mine = self
                .buckets
                .entry(exp)
                .or_insert_with(|| vec![0; SUBBUCKETS]);
            for (m, &s) in mine.iter_mut().zip(subs) {
                *m += s;
            }
        }
        // Exemplars are most-recent-wins: the merged-in histogram is the
        // newer batch, so its exemplars replace ours where both exist.
        for (key, exemplar) in &other.exemplars {
            self.exemplars.insert(*key, exemplar.clone());
        }
    }

    /// The non-empty buckets as `(lower, upper, count)` triples in
    /// ascending order, with the underflow bucket (values ≤ 0) first as
    /// `(0, 0, n)` when present. This is the exporters' view.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        let mut out = Vec::new();
        if self.zero > 0 {
            out.push((0.0, 0.0, self.zero));
        }
        for (&exp, subs) in &self.buckets {
            for (i, &c) in subs.iter().enumerate() {
                if c > 0 {
                    let lower = exp2(exp) * (1.0 + i as f64 / SUBBUCKETS as f64);
                    let upper = exp2(exp) * (1.0 + (i + 1) as f64 / SUBBUCKETS as f64);
                    out.push((lower, upper, c));
                }
            }
        }
        out
    }

    /// [`Histogram::nonzero_buckets`] with each bucket's retained
    /// exemplar, if any.
    pub fn nonzero_buckets_with_exemplars(&self) -> Vec<(f64, f64, u64, Option<&Exemplar>)> {
        let mut out = Vec::new();
        if self.zero > 0 {
            out.push((0.0, 0.0, self.zero, self.exemplars.get(&UNDERFLOW_KEY)));
        }
        for (&exp, subs) in &self.buckets {
            for (i, &c) in subs.iter().enumerate() {
                if c > 0 {
                    let lower = exp2(exp) * (1.0 + i as f64 / SUBBUCKETS as f64);
                    let upper = exp2(exp) * (1.0 + (i + 1) as f64 / SUBBUCKETS as f64);
                    out.push((lower, upper, c, self.exemplars.get(&(exp, i))));
                }
            }
        }
        out
    }
}

/// `2^exp` without `f64::powi`'s libm dependency question marks.
fn exp2(exp: i32) -> f64 {
    (exp as f64).exp2()
}

/// Maps a positive finite value to its (exponent, sub-bucket) pair.
fn bucket_of(value: f64) -> (i32, usize) {
    debug_assert!(value > 0.0 && value.is_finite());
    // The IEEE-754 exponent field gives floor(log2) exactly for normal
    // values — no rounding trouble at powers of two.
    let bits = value.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    let exp = if raw_exp == 0 {
        MIN_EXP // subnormal: clamp into the lowest tracked decade
    } else {
        (raw_exp - 1023).clamp(MIN_EXP, MAX_EXP)
    };
    let lower = exp2(exp);
    let frac = (value / lower - 1.0).clamp(0.0, 1.0 - f64::EPSILON);
    let sub = ((frac * SUBBUCKETS as f64) as usize).min(SUBBUCKETS - 1);
    (exp, sub)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn exact_on_powers_of_two() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(4.0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 4.0);
        assert_eq!(h.max(), 4.0);
        // Single-bucket histograms clamp to [min, max]: exact.
        assert_eq!(h.p50(), 4.0);
        assert_eq!(h.p99(), 4.0);
    }

    #[test]
    fn zero_and_negative_land_in_underflow() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(1.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -3.0);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets[0], (0.0, 0.0, 2));
    }

    #[test]
    fn non_finite_is_dropped() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = Histogram::new();
        let samples: Vec<f64> = (1..=10_000).map(|i| i as f64 / 100.0).collect();
        h.record_all(&samples);
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let exact = samples[((q * samples.len() as f64).ceil() as usize).max(1) - 1];
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel <= 1.0 / SUBBUCKETS as f64, "q={q}: {est} vs {exact}");
        }
    }

    #[test]
    fn merge_equals_recording_everything() {
        let a_samples: Vec<f64> = (1..500).map(|i| (i as f64).sqrt()).collect();
        let b_samples: Vec<f64> = (1..800).map(|i| (i as f64) * 0.17).collect();
        let mut merged = Histogram::new();
        merged.record_all(&a_samples);
        merged.record_all(&b_samples);
        let mut a = Histogram::new();
        a.record_all(&a_samples);
        let mut b = Histogram::new();
        b.record_all(&b_samples);
        a.merge(&b);
        assert_eq!(a.count(), merged.count());
        assert_eq!(a.min(), merged.min());
        assert_eq!(a.max(), merged.max());
        assert_eq!(a.nonzero_buckets(), merged.nonzero_buckets());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), merged.quantile(q));
        }
    }

    #[test]
    fn exemplars_track_the_most_recent_traced_sample() {
        let mut h = Histogram::new();
        h.record(4.05); // untraced: counted, no exemplar
        h.record_with_exemplar(4.20, "trace-a");
        h.record_with_exemplar(4.21, "trace-b"); // same sub-bucket: replaces
        h.record_with_exemplar(-1.0, "trace-z"); // underflow bucket
        h.record_with_exemplar(f64::NAN, "dropped");
        assert_eq!(h.count(), 4);
        let buckets = h.nonzero_buckets_with_exemplars();
        assert_eq!(buckets.len(), 3);
        let (lower, upper, count, exemplar) = &buckets[0];
        assert_eq!((*lower, *upper, *count), (0.0, 0.0, 1));
        assert_eq!(exemplar.unwrap().trace_id, "trace-z");
        assert!(buckets[1].3.is_none(), "untraced bucket has no exemplar");
        let exemplar = buckets[2].3.expect("traced bucket keeps an exemplar");
        assert_eq!(exemplar.trace_id, "trace-b");
        assert_eq!(exemplar.value, 4.21);
        // Plain bucket views are unchanged by exemplars.
        assert_eq!(h.nonzero_buckets().len(), 3);
    }

    #[test]
    fn merge_adopts_the_newer_batch_exemplars() {
        let mut a = Histogram::new();
        a.record_with_exemplar(2.5, "old");
        let mut b = Histogram::new();
        b.record_with_exemplar(2.5, "new");
        a.merge(&b);
        let buckets = a.nonzero_buckets_with_exemplars();
        assert_eq!(buckets[0].2, 2);
        assert_eq!(buckets[0].3.unwrap().trace_id, "new");
    }

    #[test]
    fn extreme_values_clamp_into_edge_buckets() {
        let mut h = Histogram::new();
        h.record(1e-300);
        h.record(1e300);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1e-300);
        assert_eq!(h.max(), 1e300);
        // Quantiles stay within the observed range despite clamping.
        assert!(h.p50() >= 1e-300 && h.p50() <= 1e300);
    }
}
