//! Client-side resilience: retries with deterministic jitter, retry
//! budgets, and a circuit breaker.
//!
//! [`RetryPolicy`] computes exponential backoff with *seeded* jitter —
//! the jitter fraction is a pure function of `(jitter_seed, call, attempt)`
//! via [`rsj_par::substream_seed`], so a test or bench replays the exact
//! same retry timeline on every run while a fleet of real clients (each
//! with its own seed) still decorrelates.
//!
//! [`CircuitBreaker`] is the standard three-state machine
//! (closed → open → half-open → closed) with *injected time*: every
//! transition takes `now: Instant` from the caller, which makes the state
//! machine exhaustively testable without sleeping.
//!
//! [`ResilientClient`] glues both onto [`Client`]:
//! reconnect per attempt, retry only what is safe to retry (transport
//! failures and responses whose [`ErrorKind::is_retryable`](crate::ErrorKind::is_retryable)), stop at the
//! policy's attempt cap or the cross-call retry budget, and fail fast
//! with [`ClientError::CircuitOpen`] while the breaker is open.

use std::net::ToSocketAddrs;
use std::time::{Duration, Instant};

use reservation_strategies::PlanRequest;
use rsj_par::substream_seed;

use crate::client::{Client, ClientError};
use crate::protocol::{BatchItem, ErrorKind, Request, Response};

/// Backoff shape and retry limits for [`ResilientClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Cross-call retry budget: once this many retries have been spent
    /// over the client's lifetime, calls stop retrying (first attempts
    /// still run). Guards against retry storms amplifying an outage.
    pub retry_budget: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0,
            retry_budget: 64,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `retry` (0-based) of call `call`:
    /// `base · 2^retry`, capped at `max_backoff`, scaled by a
    /// deterministic jitter factor in `[0.5, 1.0]`.
    pub fn backoff(&self, call: u64, retry: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_backoff);
        let roll = substream_seed(substream_seed(self.jitter_seed, call), u64::from(retry));
        // Top 53 bits → a uniform fraction in [0, 1).
        let frac = (roll >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + 0.5 * frac)
    }
}

/// The observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are being counted.
    Closed,
    /// Requests fail fast until the cooldown elapses.
    Open,
    /// A limited number of probe requests test whether the backend
    /// recovered.
    HalfOpen,
}

/// Thresholds for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing.
    pub cooldown: Duration,
    /// Probes admitted per half-open episode; one success closes the
    /// breaker, one failure re-opens it.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown: Duration::from_millis(500),
            half_open_probes: 1,
        }
    }
}

/// A closed → open → half-open → closed circuit breaker with injected
/// time: `allow`/`on_success`/`on_failure` all take `now` so tests drive
/// the clock instead of sleeping through cooldowns.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: Option<Instant>,
    probes_left: u32,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config: BreakerConfig {
                failure_threshold: config.failure_threshold.max(1),
                half_open_probes: config.half_open_probes.max(1),
                ..config
            },
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: None,
            probes_left: 0,
        }
    }

    /// Current state (after applying any cooldown expiry at `now`).
    pub fn state(&mut self, now: Instant) -> BreakerState {
        self.refresh(now);
        self.state
    }

    /// Whether a request may proceed at `now`. In half-open, each `true`
    /// consumes one probe slot.
    pub fn allow(&mut self, now: Instant) -> bool {
        self.refresh(now);
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probes_left > 0 {
                    self.probes_left -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful request.
    pub fn on_success(&mut self, now: Instant) {
        self.refresh(now);
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.open_until = None;
            self.probes_left = 0;
        }
    }

    /// Records a failed (or shed) request.
    pub fn on_failure(&mut self, now: Instant) {
        self.refresh(now);
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                }
            }
            // A failed probe re-arms the full cooldown.
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.open_until = Some(now + self.config.cooldown);
        self.probes_left = 0;
    }

    fn refresh(&mut self, now: Instant) {
        if self.state == BreakerState::Open {
            if let Some(until) = self.open_until {
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    self.probes_left = self.config.half_open_probes;
                }
            }
        }
    }
}

/// How one attempt's outcome steers the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// A usable answer (success, or a typed error retrying can't fix):
    /// return it.
    Done,
    /// A transient failure (`overloaded`, `internal`, transport): retry
    /// with exponential backoff, and count it against the breaker — the
    /// backend is struggling.
    Transient,
    /// The server answered `not_ready`: it is up but still warming
    /// (recovery in progress). Retry on a *constant* base backoff and do
    /// **not** feed the breaker — a healthy server booting must not trip
    /// open the circuit that would then refuse it traffic once ready.
    Warming,
}

/// Classifies one attempt outcome for the retry loop. Transport errors
/// worth a reconnect are [`RetryClass::Transient`]; a fatal transport
/// error is not classified here (the caller returns it as-is).
pub fn classify_response(response: &Response) -> RetryClass {
    match response {
        Response::Error {
            kind: ErrorKind::NotReady,
            ..
        } => RetryClass::Warming,
        Response::Error { kind, .. } if kind.is_retryable() => RetryClass::Transient,
        _ => RetryClass::Done,
    }
}

/// A [`Client`] wrapper that reconnects and retries per
/// [`RetryPolicy`], gated by a [`CircuitBreaker`].
///
/// Retried failures: transport errors (connect/I/O/torn responses) and
/// typed server errors with [`ErrorKind::is_retryable`] — i.e.
/// `overloaded`, `not_ready` and `internal`. Everything else (invalid
/// requests, deadline misses, protocol violations) returns immediately:
/// retrying cannot change the outcome. `not_ready` is special-cased as
/// [`RetryClass::Warming`]: retried on a constant base backoff without
/// counting against the circuit breaker, because a warming server is not
/// a failing one.
///
/// [`ErrorKind::is_retryable`]: crate::ErrorKind::is_retryable
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    conn: Option<Client>,
    calls: u64,
    retries_spent: u32,
    last_trace_id: Option<String>,
}

impl ResilientClient {
    /// A resilient client for `addr` (connections are opened lazily, one
    /// per attempt that needs one).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy, breaker: BreakerConfig) -> Self {
        Self {
            addr: addr.into(),
            policy: RetryPolicy {
                max_attempts: policy.max_attempts.max(1),
                ..policy
            },
            breaker: CircuitBreaker::new(breaker),
            conn: None,
            calls: 0,
            retries_spent: 0,
            last_trace_id: None,
        }
    }

    /// Retries spent across the client's lifetime (bounded by the
    /// policy's `retry_budget`).
    pub fn retries_spent(&self) -> u32 {
        self.retries_spent
    }

    /// The trace id the most recent [`call`](Self::call) carried (the
    /// caller's own, or the one this client minted for an untraced plan
    /// request). `None` until a traceable request has been sent.
    pub fn last_trace_id(&self) -> Option<&str> {
        self.last_trace_id.as_deref()
    }

    /// The breaker's state at `now` (diagnostic).
    pub fn breaker_state(&mut self, now: Instant) -> BreakerState {
        self.breaker.state(now)
    }

    /// Sends `request`, retrying per policy. `Ok` carries whatever the
    /// server finally answered — including a typed, non-retryable
    /// [`Response::Error`]; a retryable error response that survives the
    /// last attempt is also returned as `Ok`, faithfully.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let call = self.calls;
        self.calls += 1;
        // Mint a trace id for plan requests that lack one, so every
        // attempt of this call — and the server's logs, timelines and
        // exemplars — correlate under a single id. (A `trace` op's id
        // field is a *filter*, never auto-filled.)
        let minted;
        let request = match request {
            Request::Plan { trace_id: None, .. } => {
                minted = request
                    .clone()
                    .with_trace_id(rsj_obs::TraceContext::generate().trace_id_hex());
                &minted
            }
            _ => request,
        };
        if let Some(id) = request.trace_id() {
            self.last_trace_id = Some(id.to_owned());
        }
        let trace_id = request.trace_id().unwrap_or("untraced");
        let mut retry: u32 = 0;
        loop {
            if !self.breaker.allow(Instant::now()) {
                return Err(ClientError::CircuitOpen);
            }
            let outcome = self.attempt(request);
            rsj_obs::debug!(
                "call {call} attempt {}/{} trace_id={trace_id}: {}",
                retry + 1,
                self.policy.max_attempts,
                describe_outcome(&outcome),
            );
            let class = match &outcome {
                Ok(response) => classify_response(response),
                Err(e) => {
                    if !is_transient(e) {
                        return outcome;
                    }
                    RetryClass::Transient
                }
            };
            if class == RetryClass::Done {
                self.breaker.on_success(Instant::now());
                return outcome;
            }
            if class == RetryClass::Transient {
                // Warming is deliberately excluded: a booting server must
                // not trip the breaker that would refuse it traffic later.
                self.breaker.on_failure(Instant::now());
                self.conn = None; // reconnect on the next attempt
            }
            if retry + 1 >= self.policy.max_attempts
                || self.retries_spent >= self.policy.retry_budget
            {
                // A retryable *response* is still a server answer — return
                // it faithfully. Only transport errors get wrapped, so the
                // caller learns the trace id and attempt count of a call
                // that never produced an answer at all.
                return match outcome {
                    Ok(response) => Ok(response),
                    Err(last) => Err(ClientError::RetriesExhausted {
                        attempts: retry + 1,
                        trace_id: trace_id.to_owned(),
                        last: Box::new(last),
                    }),
                };
            }
            let pause = match class {
                // Constant base pause while warming: recovery finishes on
                // its own schedule, escalating backoff only delays the
                // first post-recovery request.
                RetryClass::Warming => self.policy.backoff(call, 0),
                _ => self.policy.backoff(call, retry),
            };
            std::thread::sleep(pause);
            retry += 1;
            self.retries_spent += 1;
        }
    }

    /// Solves `items` via the v2 `plan_batch` op with *partial-batch*
    /// retry: after each attempt, items that came back as plans (or as
    /// typed errors retrying can't fix) keep their results, and only the
    /// retryable failures are re-sent as a smaller batch on the next
    /// attempt. A batch-level shed (`overloaded`, `not_ready`) or a
    /// transport error re-sends every still-unresolved item; `not_ready`
    /// follows the same warming rules as [`call`](Self::call) (constant
    /// backoff, no breaker feed).
    ///
    /// Every attempt carries a fresh minted trace id (recorded in
    /// [`last_trace_id`](Self::last_trace_id)) so each wire exchange
    /// correlates with exactly one server-side timeline.
    ///
    /// `Ok` returns per-item results in input order, faithfully: when
    /// retries run out, the last typed error each unresolved item saw is
    /// returned in its slot. `Err` is reserved for failures that left
    /// some items with *no* server answer at all (transport errors,
    /// wrapped in [`ClientError::RetriesExhausted`]) and for fail-fast
    /// conditions ([`ClientError::CircuitOpen`], protocol violations).
    pub fn plan_batch(
        &mut self,
        items: Vec<PlanRequest>,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<BatchItem>, ClientError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let call = self.calls;
        self.calls += 1;
        // What a non-final attempt leaves behind, to fill unresolved
        // slots (or wrap) if the attempt turns out to be the last one.
        enum Leftover {
            /// The server answered per item; `results` holds everything.
            Answered,
            /// A retryable batch-level typed error.
            BatchError(ErrorKind, String),
            /// A transient transport failure; no answer for this attempt.
            Transport(ClientError),
        }
        let mut results: Vec<Option<BatchItem>> = (0..items.len()).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..items.len()).collect();
        let mut retry: u32 = 0;
        loop {
            if !self.breaker.allow(Instant::now()) {
                return Err(ClientError::CircuitOpen);
            }
            let trace_id = rsj_obs::TraceContext::generate().trace_id_hex();
            self.last_trace_id = Some(trace_id.clone());
            let sub: Vec<PlanRequest> = pending.iter().map(|&i| items[i].clone()).collect();
            let mut request = Request::plan_batch(sub).with_trace_id(trace_id.clone());
            if let Some(ms) = deadline_ms {
                request = request.with_deadline_ms(ms);
            }
            let outcome = self.attempt(&request);
            rsj_obs::debug!(
                "batch call {call} attempt {}/{} trace_id={trace_id} pending={}: {}",
                retry + 1,
                self.policy.max_attempts,
                pending.len(),
                describe_outcome(&outcome),
            );
            // What this attempt leaves behind for the retry loop (and for
            // the unresolved slots if this was the last attempt).
            let (class, leftover) = match outcome {
                Ok(Response::PlanBatch {
                    results: answered, ..
                }) => {
                    if answered.len() != pending.len() {
                        return Err(ClientError::Protocol(format!(
                            "plan_batch answered {} items for a {}-item batch",
                            answered.len(),
                            pending.len()
                        )));
                    }
                    // Keep every answer; only retryable per-item errors
                    // stay pending for the next (smaller) attempt.
                    let mut still = Vec::new();
                    for (slot, item) in pending.iter().copied().zip(answered) {
                        let retryable = item.is_retryable_error();
                        results[slot] = Some(item);
                        if retryable {
                            still.push(slot);
                        }
                    }
                    pending = still;
                    if pending.is_empty() {
                        self.breaker.on_success(Instant::now());
                        return Ok(results
                            .into_iter()
                            .map(|r| r.expect("every slot answered"))
                            .collect());
                    }
                    // Partial failure: the backend is struggling, but the
                    // connection itself answered — keep it open.
                    self.breaker.on_failure(Instant::now());
                    (RetryClass::Done, Leftover::Answered)
                }
                Ok(Response::Error { kind, message, .. }) => {
                    match if kind == ErrorKind::NotReady {
                        RetryClass::Warming
                    } else if kind.is_retryable() {
                        RetryClass::Transient
                    } else {
                        RetryClass::Done
                    } {
                        // A batch-level error retrying can't fix answers
                        // every unresolved item at once.
                        RetryClass::Done => {
                            for &slot in &pending {
                                results[slot] = Some(BatchItem::error(kind, message.clone()));
                            }
                            return Ok(results
                                .into_iter()
                                .map(|r| r.expect("every slot answered"))
                                .collect());
                        }
                        class => (class, Leftover::BatchError(kind, message)),
                    }
                }
                Ok(response) => {
                    return Err(ClientError::Protocol(format!(
                        "expected plan_batch, got {response:?}"
                    )))
                }
                Err(e) => {
                    if !is_transient(&e) {
                        return Err(e);
                    }
                    (RetryClass::Transient, Leftover::Transport(e))
                }
            };
            if class == RetryClass::Transient {
                self.breaker.on_failure(Instant::now());
                self.conn = None; // reconnect on the next attempt
            }
            if retry + 1 >= self.policy.max_attempts
                || self.retries_spent >= self.policy.retry_budget
            {
                // The last answer fills every unresolved slot, faithfully.
                // A transport failure on the final attempt wraps only if
                // some item never saw a server answer at all.
                return match leftover {
                    Leftover::Answered => Ok(results
                        .into_iter()
                        .map(|r| r.expect("every slot answered"))
                        .collect()),
                    Leftover::BatchError(kind, message) => {
                        for &slot in &pending {
                            results[slot] = Some(BatchItem::error(kind, message.clone()));
                        }
                        Ok(results
                            .into_iter()
                            .map(|r| r.expect("every slot answered"))
                            .collect())
                    }
                    Leftover::Transport(last) => {
                        if results.iter().all(Option::is_some) {
                            // Every item carries the typed error an earlier
                            // attempt answered with.
                            Ok(results
                                .into_iter()
                                .map(|r| r.expect("every slot answered"))
                                .collect())
                        } else {
                            Err(ClientError::RetriesExhausted {
                                attempts: retry + 1,
                                trace_id,
                                last: Box::new(last),
                            })
                        }
                    }
                };
            }
            let pause = match class {
                RetryClass::Warming => self.policy.backoff(call, 0),
                _ => self.policy.backoff(call, retry),
            };
            std::thread::sleep(pause);
            retry += 1;
            self.retries_spent += 1;
        }
    }

    fn attempt(&mut self, request: &Request) -> Result<Response, ClientError> {
        if self.conn.is_none() {
            let addrs = self
                .addr
                .to_socket_addrs()
                .map_err(ClientError::Io)?
                .collect::<Vec<_>>();
            let addr = addrs
                .first()
                .ok_or_else(|| ClientError::Protocol(format!("no address for {}", self.addr)))?;
            self.conn = Some(Client::connect(addr)?);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let result = conn.call(request);
        if result.is_err() {
            self.conn = None;
        }
        result
    }
}

/// One-line outcome description for the per-attempt debug log.
fn describe_outcome(outcome: &Result<Response, ClientError>) -> String {
    match outcome {
        Ok(Response::Error { kind, .. }) => format!("server error: {kind}"),
        Ok(_) => "ok".to_string(),
        Err(e) => format!("transport error: {e}"),
    }
}

/// Transport-level failures worth a reconnect-and-retry.
fn is_transient(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Io(_) | ClientError::ConnectionClosed | ClientError::UnexpectedEof { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown_ms: u64, probes: u32) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
            half_open_probes: probes,
        }
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg(3, 100, 1));
        assert_eq!(b.state(t0), BreakerState::Closed);
        for _ in 0..2 {
            b.on_failure(t0);
        }
        assert_eq!(b.state(t0), BreakerState::Closed, "below threshold");
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Open, "threshold trips it");
        assert!(!b.allow(t0 + Duration::from_millis(99)), "cooldown holds");
        let probe_time = t0 + Duration::from_millis(100);
        assert_eq!(b.state(probe_time), BreakerState::HalfOpen);
        assert!(b.allow(probe_time), "one probe admitted");
        b.on_success(probe_time);
        assert_eq!(b.state(probe_time), BreakerState::Closed);
        // Recovery also reset the failure counter.
        b.on_failure(probe_time);
        assert_eq!(b.state(probe_time), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_with_a_fresh_cooldown() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg(1, 100, 1));
        b.on_failure(t0);
        let probe_time = t0 + Duration::from_millis(100);
        assert!(b.allow(probe_time));
        b.on_failure(probe_time);
        assert_eq!(b.state(probe_time), BreakerState::Open);
        assert!(
            !b.allow(probe_time + Duration::from_millis(99)),
            "cooldown restarted from the failed probe"
        );
        assert!(b.allow(probe_time + Duration::from_millis(100)));
    }

    #[test]
    fn half_open_admits_only_the_configured_probes() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg(1, 50, 2));
        b.on_failure(t0);
        let probe_time = t0 + Duration::from_millis(50);
        assert!(b.allow(probe_time));
        assert!(b.allow(probe_time));
        assert!(!b.allow(probe_time), "probe quota exhausted");
    }

    #[test]
    fn not_ready_is_warming_while_overloaded_is_transient() {
        let warming = Response::error(ErrorKind::NotReady, "recovering");
        let struggling = Response::error(ErrorKind::Overloaded, "shedding");
        let broken = Response::error(ErrorKind::Internal, "bug");
        let fatal = Response::error(ErrorKind::InvalidDistribution, "nope");
        assert_eq!(classify_response(&warming), RetryClass::Warming);
        assert_eq!(classify_response(&struggling), RetryClass::Transient);
        assert_eq!(classify_response(&broken), RetryClass::Transient);
        assert_eq!(classify_response(&fatal), RetryClass::Done);
        assert_eq!(
            classify_response(&Response::Pong { v: 1 }),
            RetryClass::Done
        );
    }

    #[test]
    fn retries_exhausted_unwraps_to_its_root_cause() {
        let wrapped = ClientError::RetriesExhausted {
            attempts: 4,
            trace_id: "abc".to_string(),
            last: Box::new(ClientError::RetriesExhausted {
                attempts: 2,
                trace_id: "abc".to_string(),
                last: Box::new(ClientError::ConnectionClosed),
            }),
        };
        assert!(matches!(
            wrapped.root_cause(),
            ClientError::ConnectionClosed
        ));
        assert!(matches!(
            ClientError::CircuitOpen.root_cause(),
            ClientError::CircuitOpen
        ));
    }

    #[test]
    fn backoff_grows_is_capped_and_is_deterministic() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        let replay = policy;
        for retry in 0..8 {
            let d = policy.backoff(3, retry);
            assert_eq!(d, replay.backoff(3, retry), "retry {retry}");
            // Jitter keeps every pause in [half, full] of the exponential.
            let nominal = Duration::from_millis(10)
                .saturating_mul(1 << retry)
                .min(Duration::from_millis(100));
            assert!(
                d >= nominal.mul_f64(0.5) && d <= nominal,
                "retry {retry}: {d:?}"
            );
        }
        // Different calls jitter differently (with overwhelming likelihood
        // for any fixed seed; this seed is one of them).
        assert_ne!(policy.backoff(0, 1), policy.backoff(1, 1));
    }
}
