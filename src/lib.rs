//! # reservation-strategies
//!
//! A production-quality Rust implementation of *Reservation Strategies for
//! Stochastic Jobs* (Aupy, Gainaru, Honoré, Raghavan, Robert, Sun — IPDPS
//! 2019): scheduling jobs with stochastic execution times on
//! reservation-based platforms (clouds with Reserved Instances, HPC batch
//! queues) by computing cost-minimizing sequences of increasing
//! reservations.
//!
//! This facade crate provides the stable top-level API — the [`Planner`]
//! builder, its [`Plan`] result and the unified [`RsjError`] — and
//! re-exports the library crates of the workspace:
//!
//! * [`dist`] (`rsj-dist`) — probability distributions, special functions,
//!   discretization and fitting;
//! * [`core`] (`rsj-core`) — cost models, the optimal-sequence theory and
//!   the heuristic suite;
//! * [`sim`] (`rsj-sim`) — the discrete-event batch-queue simulator and
//!   cloud pricing models;
//! * [`traces`] (`rsj-traces`) — neuroscience runtime archives and the
//!   NeuroHPC scenario;
//! * [`obs`] (`rsj-obs`) — tracing, metrics and profiling hooks;
//! * [`par`] (`rsj-par`) — the deterministic fork-join worker pool.
//!
//! The long-running planning daemon built on this facade lives in the
//! `rsj-serve` crate (`rsj serve` / `rsj request` on the CLI).
//!
//! ## Planner facade
//!
//! ```
//! use reservation_strategies::{Planner, dist::DistSpec};
//!
//! let plan = Planner::builder()
//!     .distribution(DistSpec::LogNormal { mu: 3.0, sigma: 0.5 })
//!     .solver_name("dp_equal_probability")
//!     .build()?
//!     .plan()?;
//! assert!(plan.normalized_cost < 2.0);
//! # Ok::<(), reservation_strategies::RsjError>(())
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use reservation_strategies::prelude::*;
//!
//! // Job runtimes follow LogNormal(3, 0.5); the platform bills exactly
//! // what is requested (RESERVATIONONLY, e.g. AWS Reserved Instances).
//! let dist = LogNormal::new(3.0, 0.5).unwrap();
//! let cost = CostModel::reservation_only();
//!
//! // Compute a near-optimal reservation sequence.
//! let strategy = BruteForce::new(500, 1000, EvalMethod::Analytic, 42).unwrap();
//! let sequence = strategy.sequence(&dist, &cost).unwrap();
//!
//! // How much worse than clairvoyance? (Table 2 reports ≈1.85.)
//! let ratio = normalized_cost_analytic(&sequence, &dist, &cost);
//! assert!(ratio < 2.0);
//! ```

pub use rsj_core as core;
pub use rsj_dist as dist;
pub use rsj_obs as obs;
pub use rsj_par as par;
pub use rsj_sim as sim;
pub use rsj_traces as traces;

pub mod error;
pub mod planner;

pub use error::RsjError;
pub use planner::{plan_digest, Plan, PlanRequest, Planner, PlannerBuilder, SimulateOptions};
pub use rsj_core::CancelToken;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::error::RsjError;
    pub use crate::planner::{Plan, PlanRequest, Planner, PlannerBuilder, SimulateOptions};
    pub use rsj_core::prelude::*;
    pub use rsj_dist::prelude::*;
    pub use rsj_sim::prelude::*;
    pub use rsj_traces::prelude::*;
}
