//! Cloud cost optimizer: should a workload with stochastic runtimes run on
//! Reserved Instances (with a reservation strategy) or On-Demand?
//!
//! Reproduces the §5.2 break-even analysis: Reserved Instances pay
//! `c_RI · requested`, On-Demand pays `c_OD · actual`; a strategy `S`
//! makes RI worthwhile iff `Ẽ(S)/E° ≤ c_OD/c_RI` (AWS: up to 4).
//!
//! Run with: `cargo run --release --example cloud_cost_optimizer`

use reservation_strategies::prelude::*;
use rsj_dist::DistSpec;

fn main() {
    let pricing = CloudPricing::aws_like();
    let tight = CloudPricing::new(1.0, 1.5).unwrap(); // a narrow price gap
    let cost = CostModel::reservation_only();

    println!(
        "{:<16} {:>8} {:>12} {:>14} {:>14}",
        "workload", "E(S)/E°", "RI@ratio 4?", "RI@ratio 1.5?", "monthly saving"
    );

    for (name, spec) in DistSpec::paper_table1() {
        let dist = spec.build().unwrap();
        // Use the discretization+DP heuristic: near-optimal, fast and
        // robust for every distribution family.
        let strategy = DiscretizedDp::paper(DiscretizationScheme::EqualProbability);
        let seq = strategy.sequence(dist.as_ref(), &cost).unwrap();

        let (ratio, _, ok4) = pricing.decision(&seq, dist.as_ref());
        let (_, _, ok15) = tight.decision(&seq, dist.as_ref());

        // Monthly saving for 1000 jobs/month at $1/h RI rate.
        let ri_cost = pricing.reserved_expected_cost(&seq, dist.as_ref());
        let od_cost = pricing.on_demand_expected_cost(dist.as_ref());
        let saving = (od_cost - ri_cost) * 1000.0;

        println!(
            "{:<16} {:>8.2} {:>12} {:>14} {:>13.0}$",
            name,
            ratio,
            if ok4 { "yes" } else { "no" },
            if ok15 { "yes" } else { "no" },
            saving
        );
    }

    println!(
        "\nRule: Reserved Instances win whenever the strategy's normalized cost \
         stays below the On-Demand/Reserved price ratio (the paper cites up to 4x on AWS)."
    );
}
