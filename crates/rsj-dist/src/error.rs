//! Error type for distribution construction and numeric routines.

use std::fmt;

/// Error returned when a distribution is constructed with invalid parameters
/// or a numeric routine is given an out-of-domain argument.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A constructor parameter violated its requirement.
    InvalidParameter {
        /// Parameter name as it appears in the paper (e.g. `lambda`).
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable requirement (e.g. `must be > 0`).
        requirement: &'static str,
    },
    /// A fitting routine was given an empty or degenerate sample.
    DegenerateSample {
        /// What went wrong.
        reason: &'static str,
    },
    /// An iterative solver (censored MLE, EM, root finding) failed to
    /// converge within its iteration budget.
    NonConvergence {
        /// Which solver failed (e.g. `weibull censored MLE`).
        what: &'static str,
        /// Iterations spent before giving up.
        iterations: usize,
    },
    /// A textual name (CLI flag, wire-protocol field) did not match any
    /// known variant of an enumeration.
    UnknownName {
        /// What kind of thing was being parsed (e.g. `discretization
        /// scheme`).
        what: &'static str,
        /// The unrecognized input.
        input: String,
        /// The accepted spellings, for the error message.
        expected: &'static str,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid parameter {name} = {value}: {requirement}"),
            DistError::DegenerateSample { reason } => {
                write!(f, "degenerate sample: {reason}")
            }
            DistError::NonConvergence { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            DistError::UnknownName {
                what,
                input,
                expected,
            } => {
                write!(f, "unknown {what} `{input}` (expected {expected})")
            }
        }
    }
}

impl std::error::Error for DistError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DistError>;

/// Validates that `value` satisfies `pred`, returning an
/// [`DistError::InvalidParameter`] otherwise.
pub(crate) fn check_param(
    name: &'static str,
    value: f64,
    requirement: &'static str,
    pred: bool,
) -> Result<()> {
    if pred && value.is_finite() {
        Ok(())
    } else {
        Err(DistError::InvalidParameter {
            name,
            value,
            requirement,
        })
    }
}
