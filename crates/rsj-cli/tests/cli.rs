//! End-to-end tests of the `rsj` binary: spawn the compiled executable and
//! check exit codes and output.

use std::io::Write;
use std::process::Command;

fn rsj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rsj"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("rsj_cli_test_{}_{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

#[test]
fn no_args_prints_usage() {
    let out = rsj().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = rsj().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn plan_text_and_json() {
    let cfg = write_temp(
        "plan.json",
        r#"{
            "distribution": { "family": "uniform", "a": 10.0, "b": 20.0 },
            "cost": { "alpha": 1.0 },
            "heuristic": { "kind": "dp", "scheme": "equal_time", "n": 100 }
        }"#,
    );
    let out = rsj().args(["plan", "--config"]).arg(&cfg).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Theorem 4: the ladder is the single reservation (b) at ratio 4/3.
    assert!(text.contains("20.0000"), "{text}");
    assert!(text.contains("1.3333"), "{text}");

    let out = rsj()
        .args(["plan", "--json", "--config"])
        .arg(&cfg)
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["sequence"].as_array().unwrap().len(), 1);
    std::fs::remove_file(cfg).ok();
}

#[test]
fn plan_rejects_invalid_config() {
    let cfg = write_temp("bad_plan.json", r#"{ "not": "a plan" }"#);
    let out = rsj().args(["plan", "--config"]).arg(&cfg).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid plan config"));
    std::fs::remove_file(cfg).ok();
}

#[test]
fn plan_missing_config_flag() {
    let out = rsj().arg("plan").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--config"));
}

#[test]
fn fit_round_trip() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let archive = rsj_traces::synthesize(&rsj_traces::SynthConfig::vbmqa(1500), &mut rng);
    let csv = write_temp("traces.csv", &archive.to_csv());
    let out = rsj().args(["fit", "--csv"]).arg(&csv).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("VBMQA"), "{text}");
    assert!(text.contains("LogNormal"), "{text}");
    std::fs::remove_file(csv).ok();
}

#[test]
fn evaluate_from_file() {
    let cfg = write_temp(
        "eval.json",
        r#"{
            "distribution": { "family": "exponential", "lambda": 1.0 },
            "cost": { "alpha": 1.0 },
            "sequence": [1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
            "monte_carlo_samples": 2000
        }"#,
    );
    let out = rsj()
        .args(["evaluate", "--json", "--config"])
        .arg(&cfg)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let analytic = v["analytic_expected_cost"].as_f64().unwrap();
    let mc = v["monte_carlo_expected_cost"].as_f64().unwrap();
    assert!(analytic > 1.0 && (analytic - mc).abs() / analytic < 0.2);
    std::fs::remove_file(cfg).ok();
}
