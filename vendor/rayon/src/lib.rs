//! Offline, API-compatible subset of the `rayon` crate.
//!
//! `par_iter`/`into_par_iter` return **sequential** standard iterators, so
//! every adaptor (`map`, `enumerate`, `filter`, `collect`, …) comes from
//! [`std::iter::Iterator`]. Results are identical to rayon's (the
//! workspace only uses order-preserving adaptors); wall-clock parallelism
//! is sacrificed, which is acceptable in the offline build environment.

#![warn(missing_docs)]
// Vendored stand-in for the crates.io crate; keep clippy out of it, as
// it would be for a registry dependency.
#![allow(clippy::all)]

/// Conversion into a (sequentially emulated) parallel iterator.
pub trait IntoParallelIterator {
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;
    /// Consumes `self` into an iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

impl<T: Copy> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Iter = std::ops::Range<T>;
    type Item = T;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

/// Borrowing conversion: `par_iter` over slices and anything derefing to
/// them (notably `Vec`).
pub trait IntoParallelRefIterator<'a> {
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type (a shared reference).
    type Item: 'a;
    /// Iterates over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> Self::Iter {
        self.as_slice().iter()
    }
}

/// Mutable borrowing conversion.
pub trait IntoParallelRefMutIterator<'a> {
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type (an exclusive reference).
    type Item: 'a;
    /// Iterates over `&mut self`.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.iter_mut()
    }
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.as_mut_slice().iter_mut()
    }
}

/// Error from [`ThreadPoolBuilder::build`]; never produced by this stub.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a (no-op) thread pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    _threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the requested thread count (ignored: execution is
    /// sequential).
    pub fn num_threads(mut self, n: usize) -> Self {
        self._threads = n;
        self
    }

    /// Builds the pool; always succeeds.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

/// A scope that runs closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool;

impl ThreadPool {
    /// Runs `op` (on the current thread) and returns its result.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}

/// The usual rayon prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| i as i32 + x)
            .sum();
        assert_eq!(sum, 1 + 3 + 5 + 7);
    }

    #[test]
    fn pool_install_runs_closure() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
    }
}
