//! Figure 4: the NeuroHPC scenario — normalized expected costs of all
//! heuristics on the VBMQA LogNormal (in hours) under the Intrepid
//! waiting-time cost model, with the distribution's mean and standard
//! deviation scaled by up to ×10.

use crate::report::{fmt_ratio, Table};
use crate::scenarios::{heuristic_suite, Fidelity};
use rand::SeedableRng;
use rsj_core::{draw_samples, expected_cost_monte_carlo};
use rsj_dist::ContinuousDistribution;
use rsj_par::Parallelism;
use rsj_traces::NeuroHpcScenario;

/// The `(mean_factor, std_factor)` grid of the robustness sweep.
pub fn factor_grid(fidelity: Fidelity) -> Vec<(f64, f64)> {
    let factors: &[f64] = match fidelity {
        Fidelity::Paper => &[1.0, 2.0, 4.0, 7.0, 10.0],
        Fidelity::Quick => &[1.0, 10.0],
    };
    let mut grid = Vec::new();
    for &mf in factors {
        for &sf in factors {
            grid.push((mf, sf));
        }
    }
    grid
}

/// One scenario's results.
#[derive(Debug, Clone)]
pub struct Row {
    /// Mean scale factor.
    pub mean_factor: f64,
    /// Standard-deviation scale factor.
    pub std_factor: f64,
    /// `(heuristic, Ẽ(S)/E°)` in suite order.
    pub costs: Vec<(String, Option<f64>)>,
}

/// Computes the Figure 4 sweep.
pub fn compute(fidelity: Fidelity, seed: u64) -> Vec<Row> {
    let grid = factor_grid(fidelity);
    Parallelism::current().par_map(&grid, |i, &(mf, sf)| {
        let scenario = NeuroHpcScenario::with_scaled_moments(mf, sf).expect("positive factors");
        let dist: &dyn ContinuousDistribution = &scenario.dist;
        let cost = scenario.cost;
        let suite = heuristic_suite(fidelity, seed.wrapping_add(i as u64));
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(131).wrapping_add(i as u64));
        let samples = draw_samples(dist, fidelity.samples(), &mut rng);
        let omniscient = cost.omniscient(dist);
        let costs = suite
            .iter()
            .map(|h| {
                let ratio = h
                    .sequence(dist, &cost)
                    .ok()
                    .map(|seq| expected_cost_monte_carlo(&seq, &cost, &samples) / omniscient);
                (h.name().to_string(), ratio)
            })
            .collect();
        Row {
            mean_factor: mf,
            std_factor: sf,
            costs,
        }
    })
}

/// Renders the sweep as a long-format table.
pub fn render(rows: &[Row]) -> Result<Table, crate::report::ReportError> {
    let mut header = vec!["mean x".to_string(), "std x".to_string()];
    if let Some(first) = rows.first() {
        header.extend(first.costs.iter().map(|(n, _)| n.clone()));
    }
    let mut table = Table::new(header);
    for r in rows {
        let mut cells = vec![format!("{}", r.mean_factor), format!("{}", r.std_factor)];
        cells.extend(r.costs.iter().map(|(_, c)| fmt_ratio(*c)));
        table.push_row(cells)?;
    }
    Ok(table)
}

/// Runs the experiment and writes `results/fig4.{md,csv}`.
pub fn emit(fidelity: Fidelity, seed: u64) -> std::io::Result<Vec<Row>> {
    let rows = compute(fidelity, seed);
    render(&rows)?.emit(
        "fig4",
        "Figure 4 — NeuroHPC normalized costs (LogNormal VBMQA, α=0.95, β=1, γ=1.05h), moments scaled",
    )?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_shape() {
        let rows = compute(Fidelity::Quick, 19);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.costs.len(), 7);
        }
    }

    #[test]
    fn structured_heuristics_beat_simple_ones() {
        // Fig. 4's headline: Brute-Force and the two discretization
        // heuristics are significantly better than the §4.3 rules.
        let rows = compute(Fidelity::Quick, 19);
        for r in &rows {
            let get = |idx: usize| r.costs[idx].1.unwrap();
            let structured = get(0).min(get(5)).min(get(6));
            let simple_best = get(1).min(get(2)).min(get(3)).min(get(4));
            assert!(
                structured <= simple_best + 0.05,
                "({}, {}): structured {structured} vs simple {simple_best}",
                r.mean_factor,
                r.std_factor
            );
        }
    }

    #[test]
    fn costs_are_modest_in_base_scenario() {
        // At (1, 1) the job is ~0.35 h with a ~1.05 h per-attempt start-up:
        // normalized costs sit in the low single digits.
        let rows = compute(Fidelity::Quick, 19);
        let base = rows
            .iter()
            .find(|r| r.mean_factor == 1.0 && r.std_factor == 1.0)
            .unwrap();
        for (h, c) in &base.costs {
            let v = c.unwrap();
            assert!((0.95..4.0).contains(&v), "{h}: {v}");
        }
    }
}
