//! Cross-layer guarantees of the resilient executor: fault-free runs are
//! bit-for-bit identical to the plain batch runner, fixed seeds replay
//! identical fault traces, and injected crashes/preemptions never make a
//! completed job cheaper than its fault-free execution.

use proptest::prelude::*;
use rand::SeedableRng;
use rsj_core::{run_job, CostModel, MeanDoubling, ReservationSequence, Strategy};
use rsj_dist::{ContinuousDistribution, LogNormal};
use rsj_sim::{
    run_batch, run_batch_resilient, run_job_resilient, FaultConfig, FaultInjector,
    ResilienceConfig, RetryPolicy,
};

fn setup() -> (ReservationSequence, LogNormal, CostModel) {
    let dist = LogNormal::new(1.0, 0.8).unwrap();
    let cost = CostModel::new(1.0, 0.5, 0.2).unwrap();
    let seq = MeanDoubling::default().sequence(&dist, &cost).unwrap();
    (seq, dist, cost)
}

/// With faults disabled, the resilient batch runner reproduces the plain
/// `run_batch` statistics exactly — same seed, identical `BatchStats`.
#[test]
fn fault_free_batch_is_bit_for_bit_identical() {
    let (seq, dist, cost) = setup();
    let plain = run_batch(
        &seq,
        &dist,
        &cost,
        2000,
        &mut rand::rngs::StdRng::seed_from_u64(42),
    )
    .unwrap();
    let resilient = run_batch_resilient(
        &seq,
        &dist,
        &cost,
        2000,
        &mut rand::rngs::StdRng::seed_from_u64(42),
        &ResilienceConfig::fault_free(),
    )
    .unwrap();
    assert_eq!(plain, resilient);
}

/// Identical fault configuration and seeds replay identical statistics
/// and fault counts — the injection layer is fully deterministic.
#[test]
fn identical_seeds_replay_identical_batches() {
    let (seq, dist, cost) = setup();
    let config = ResilienceConfig {
        faults: FaultConfig {
            seed: 7,
            mtbf: Some(5.0),
            preemption_rate: Some(0.05),
            walltime_jitter: Some(0.1),
        },
        retry: RetryPolicy::ExponentialBackoff { factor: 1.5 },
        max_failures: 20,
        ..ResilienceConfig::fault_free()
    };
    let run = || {
        run_batch_resilient(
            &seq,
            &dist,
            &cost,
            500,
            &mut rand::rngs::StdRng::seed_from_u64(13),
            &config,
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(a.failures > 0, "mtbf 5h must fault some jobs");
}

/// Different fault seeds diverge (the processes are actually random).
#[test]
fn different_fault_seeds_diverge() {
    let (seq, dist, cost) = setup();
    let run = |fault_seed| {
        let config = ResilienceConfig {
            faults: FaultConfig::crashes(5.0, fault_seed),
            max_failures: 20,
            ..ResilienceConfig::fault_free()
        };
        run_batch_resilient(
            &seq,
            &dist,
            &cost,
            500,
            &mut rand::rngs::StdRng::seed_from_u64(13),
            &config,
        )
        .unwrap()
    };
    assert_ne!(run(1).mean_cost, run(2).mean_cost);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crashes and preemptions only ever add rework: a job that completes
    /// under fault injection costs at least its fault-free execution.
    /// (Walltime jitter is excluded — shortened windows can legitimately
    /// reduce the `β·min(R,t)` usage term of failed reservations.)
    #[test]
    fn faults_never_decrease_a_completed_jobs_cost(
        t in 0.2..30.0f64,
        mtbf in 0.5..20.0f64,
        rate in 0.0..0.5f64,
        fault_seed in 0u64..1000,
    ) {
        let (seq, _, cost) = setup();
        let baseline = run_job(&seq, &cost, t);
        let config = ResilienceConfig {
            faults: FaultConfig {
                seed: fault_seed,
                mtbf: Some(mtbf),
                preemption_rate: Some(rate),
                walltime_jitter: None,
            },
            max_failures: 500,
            ..ResilienceConfig::fault_free()
        };
        let mut injector = FaultInjector::new(&config.faults).unwrap();
        let faulted = run_job_resilient(&seq, &cost, &config, t, &mut injector);
        prop_assume!(faulted.completed);
        prop_assert!(
            faulted.outcome.cost >= baseline.cost - 1e-9,
            "faulted {} < fault-free {} (failures {})",
            faulted.outcome.cost,
            baseline.cost,
            faulted.failures
        );
        if faulted.failures > 0 {
            prop_assert!(
                faulted.outcome.cost > baseline.cost,
                "a fault must strictly add cost under alpha > 0"
            );
        }
    }

    /// Fault-free equivalence holds pointwise for arbitrary durations.
    #[test]
    fn fault_free_job_equivalence_pointwise(t in 0.0..50.0f64) {
        let (seq, _, cost) = setup();
        let config = ResilienceConfig::fault_free();
        let mut injector = FaultInjector::new(&config.faults).unwrap();
        let resilient = run_job_resilient(&seq, &cost, &config, t, &mut injector);
        let plain = run_job(&seq, &cost, t);
        prop_assert_eq!(resilient.outcome, plain);
        prop_assert!(resilient.completed);
        prop_assert_eq!(resilient.failures, 0);
    }
}

// `LogNormal` must stay a `ContinuousDistribution` for the batch calls
// above to compile; silence the unused-trait-import lint meaningfully.
#[test]
fn lognormal_mean_is_positive() {
    let (_, dist, _) = setup();
    assert!(dist.mean() > 0.0);
}
