//! End-to-end HPC scenario on the simulated batch queue: measure the
//! wait-vs-request relation of an EASY-backfilling cluster (Figure 2),
//! turn its affine fit into a cost model, and schedule a stochastic job
//! with it.
//!
//! Run with: `cargo run --release --example hpc_queue`

use rand::SeedableRng;
use reservation_strategies::prelude::*;
use rsj_dist::LogNormal;

fn main() {
    // 1. Simulate an Intrepid-like machine under heavy load.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let runtime = LogNormal::from_moments(3.0, 3.0).unwrap();
    let workload = WorkloadConfig {
        arrival_rate: 1.85,
        processor_choices: vec![(64, 0.25), (128, 0.2), (204, 0.2), (409, 0.15), (1024, 0.2)],
        overestimate: (1.1, 3.0),
        count: 8000,
    };
    let cluster = ClusterConfig::intrepid_like();
    let jobs = generate_workload(&workload, &runtime, &mut rng);
    let records = simulate(&cluster, &jobs);
    let summary = summarize(&records, cluster.processors);
    println!(
        "simulated {} jobs on {} processors (EASY backfilling): utilization {:.0}%, mean wait {:.1} h",
        summary.completed,
        cluster.processors,
        summary.utilization * 100.0,
        summary.mean_wait
    );

    // 2. The Figure 2 analysis for 409-processor jobs.
    let analysis = analyze_wait_times(&records, 409, 20).expect("enough 409-wide jobs");
    println!(
        "409-proc wait model: wait ≈ {:.3}·requested + {:.3} h (R² {:.2})",
        analysis.fit.slope, analysis.fit.intercept, analysis.fit.r_squared
    );

    // 3. That fit *is* the reservation cost model: each attempt costs its
    //    queue wait plus the time actually used.
    let cost = cost_model_from_queue(&analysis);
    println!(
        "cost model: C(R, t) = {:.3}·R + min(R, t) + {:.3}\n",
        cost.alpha, cost.gamma
    );

    // 4. Schedule a stochastic 409-wide application on this queue: runtimes
    //    follow the VBMQA law scaled to this machine (mean 2 h, std 1 h).
    let app = LogNormal::from_moments(2.0, 1.0).unwrap();
    let omniscient = cost.omniscient(&app);
    for strategy in [
        Box::new(BruteForce::new(2000, 1000, EvalMethod::Analytic, 11).unwrap())
            as Box<dyn Strategy>,
        Box::new(DiscretizedDp::paper(DiscretizationScheme::EqualTime)),
        Box::new(MeanDoubling::default()),
    ] {
        let seq = strategy.sequence(&app, &cost).unwrap();
        let e = expected_cost_analytic(&seq, &app, &cost);
        println!(
            "{:<16} expected turnaround {:.2} h ({:.2}× clairvoyant {:.2} h); first request {:.2} h",
            strategy.name(),
            e,
            e / omniscient,
            omniscient,
            seq.first()
        );
    }
}
