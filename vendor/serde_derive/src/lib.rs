//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde subset.
//!
//! Parses the item with plain `proc_macro` tokens (no syn/quote in the
//! offline environment) and emits impl source as a string. Supported
//! shapes: structs with named fields; enums with unit, newtype, and
//! struct variants. Supported attributes: container `#[serde(tag =
//! "…")]` and `#[serde(rename_all = "snake_case")]`; field
//! `#[serde(default)]` and `#[serde(default = "path")]`. Field types are
//! never parsed — generated code relies on type inference — except for a
//! leading `Option`, which (as in serde) makes a missing field
//! deserialize to `None`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let src = match parse_item(input) {
        Ok(item) => generate(&item, mode),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    src.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{src}"))
}

struct Item {
    name: String,
    kind: ItemKind,
    attrs: ContainerAttrs,
}

enum ItemKind {
    Struct(Vec<Field>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: Option<DefaultKind>,
    is_option: bool,
}

enum DefaultKind {
    Std,
    Path(String),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Newtype,
    Named(Vec<Field>),
}

#[derive(Default)]
struct ContainerAttrs {
    tag: Option<String>,
    snake_case: bool,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(tokens: &[TokenTree], i: usize, ch: char) -> bool {
    matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

/// Skips `pub` / `pub(crate)` / `pub(in …)`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if ident_at(tokens, *i).as_deref() == Some("pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Extracts `key` / `key = "value"` pairs from one attribute body if it
/// is a `serde(...)` attribute; other attributes yield no pairs.
fn serde_pairs(attr_body: TokenStream) -> Result<Vec<(String, Option<String>)>, String> {
    let tokens: Vec<TokenTree> = attr_body.into_iter().collect();
    if ident_at(&tokens, 0).as_deref() != Some("serde") {
        return Ok(Vec::new());
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Err("malformed #[serde(...)] attribute".to_string()),
    };
    let tokens: Vec<TokenTree> = inner.into_iter().collect();
    let mut pairs = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let key = ident_at(&tokens, i).ok_or("expected ident inside #[serde(...)]")?;
        i += 1;
        let mut value = None;
        if is_punct(&tokens, i, '=') {
            i += 1;
            match tokens.get(i) {
                Some(TokenTree::Literal(lit)) => {
                    let raw = lit.to_string();
                    let stripped = raw
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| format!("#[serde({key} = …)] expects a string literal"))?;
                    value = Some(stripped.to_string());
                    i += 1;
                }
                _ => return Err(format!("#[serde({key} = …)] expects a literal value")),
            }
        }
        pairs.push((key, value));
        if is_punct(&tokens, i, ',') {
            i += 1;
        }
    }
    Ok(pairs)
}

/// Consumes leading `#[...]` attributes, feeding each body to `sink`.
fn take_attrs(
    tokens: &[TokenTree],
    i: &mut usize,
    sink: &mut dyn FnMut(TokenStream) -> Result<(), String>,
) -> Result<(), String> {
    while is_punct(tokens, *i, '#') {
        match tokens.get(*i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                sink(g.stream())?;
                *i += 2;
            }
            _ => return Err("malformed attribute".to_string()),
        }
    }
    Ok(())
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = ContainerAttrs::default();
    take_attrs(&tokens, &mut i, &mut |body| {
        for (key, value) in serde_pairs(body)? {
            match (key.as_str(), value) {
                ("tag", Some(v)) => attrs.tag = Some(v),
                ("rename_all", Some(v)) if v == "snake_case" => attrs.snake_case = true,
                ("rename_all", Some(v)) => {
                    return Err(format!("rename_all = {v:?} unsupported (only snake_case)"))
                }
                _ => {} // deny_unknown_fields etc.: tolerated, not enforced
            }
        }
        Ok(())
    })?;
    skip_vis(&tokens, &mut i);
    let kind_kw = ident_at(&tokens, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&tokens, i).ok_or("expected a type name")?;
    i += 1;
    if is_punct(&tokens, i, '<') {
        return Err(format!(
            "serde derive stub: generics unsupported on `{name}`"
        ));
    }
    let kind = match (kind_kw.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            ItemKind::Struct(parse_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            ItemKind::Tuple(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            ItemKind::Enum(parse_variants(g.stream())?)
        }
        ("struct", _) => {
            return Err(format!(
                "serde derive stub: unit struct `{name}` unsupported"
            ))
        }
        ("enum", _) => return Err(format!("expected braced body for enum `{name}`")),
        (other, _) => return Err(format!("cannot derive serde traits for `{other}` item")),
    };
    Ok(Item { name, kind, attrs })
}

/// Counts top-level fields of a tuple struct body (commas inside
/// groups are invisible; only `<`/`>` nesting needs tracking).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let mut default = None;
        take_attrs(&tokens, &mut i, &mut |body| {
            for (key, value) in serde_pairs(body)? {
                if key == "default" {
                    default = Some(match value {
                        None => DefaultKind::Std,
                        Some(path) => DefaultKind::Path(path),
                    });
                }
            }
            Ok(())
        })?;
        skip_vis(&tokens, &mut i);
        let name = ident_at(&tokens, i).ok_or("expected a field name")?;
        i += 1;
        if !is_punct(&tokens, i, ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        // Skip the type. Parenthesized/bracketed parts arrive as single
        // groups, so only `<`/`>` nesting needs tracking to find the
        // field-separating comma.
        let is_option = ident_at(&tokens, i).as_deref() == Some("Option");
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // separating comma
        }
        fields.push(Field {
            name,
            default,
            is_option,
        });
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        take_attrs(&tokens, &mut i, &mut |body| {
            serde_pairs(body).map(|_| ()) // variant-level serde attrs unused here
        })?;
        let name = ident_at(&tokens, i).ok_or("expected a variant name")?;
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream())?;
                i += 1;
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        if is_punct(&tokens, i, ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// serde's `rename_all = "snake_case"` conversion.
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn variant_key(v: &Variant, attrs: &ContainerAttrs) -> String {
    if attrs.snake_case {
        snake_case(&v.name)
    } else {
        v.name.clone()
    }
}

fn impl_header(trait_name: &str, type_name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::{trait_name} for {type_name} {{\n{body}\n}}"
    )
}

/// The expression rebuilding one field from `__entries`, honoring
/// defaults and Option-typed fields, and naming the field on error.
fn field_expr(target: &str, f: &Field) -> String {
    let key = &f.name;
    let none_arm = match (&f.default, f.is_option) {
        (Some(DefaultKind::Std), _) => "::std::default::Default::default()".to_string(),
        (Some(DefaultKind::Path(path)), _) => format!("{path}()"),
        (None, true) => "::std::option::Option::None".to_string(),
        (None, false) => format!(
            "return ::std::result::Result::Err(::serde::DeError::missing_field({target:?}, {key:?}))"
        ),
    };
    format!(
        "match ::serde::content_find(__entries, {key:?}) {{\n\
         ::std::option::Option::Some(__f) => ::serde::Deserialize::deserialize(__f)\
         .map_err(|__e| __e.at_field({key:?}))?,\n\
         ::std::option::Option::None => {none_arm},\n}}"
    )
}

fn ser_named_pairs(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|f| {
            let key = &f.name;
            let value = access(&f.name);
            format!("({key:?}.to_string(), ::serde::Serialize::serialize(&{value}))")
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn de_named_inits(target: &str, fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| format!("{}: {},", f.name, field_expr(target, f)))
        .collect::<Vec<_>>()
        .join("\n")
}

fn generate(item: &Item, mode: Mode) -> String {
    match (&item.kind, mode) {
        (ItemKind::Struct(fields), Mode::Ser) => gen_struct_ser(item, fields),
        (ItemKind::Struct(fields), Mode::De) => gen_struct_de(item, fields),
        (ItemKind::Tuple(arity), Mode::Ser) => gen_tuple_ser(item, *arity),
        (ItemKind::Tuple(arity), Mode::De) => gen_tuple_de(item, *arity),
        (ItemKind::Enum(variants), Mode::Ser) => gen_enum_ser(item, variants),
        (ItemKind::Enum(variants), Mode::De) => gen_enum_de(item, variants),
    }
}

fn gen_struct_ser(item: &Item, fields: &[Field]) -> String {
    let name = &item.name;
    let pairs = ser_named_pairs(fields, |f| format!("self.{f}"));
    impl_header(
        "Serialize",
        name,
        &format!(
            "fn serialize(&self) -> ::serde::Content {{\n\
             ::serde::Content::Map(::std::vec![{pairs}])\n}}"
        ),
    )
}

fn gen_struct_de(item: &Item, fields: &[Field]) -> String {
    let name = &item.name;
    let inits = de_named_inits(name, fields);
    impl_header(
        "Deserialize",
        name,
        &format!(
            "fn deserialize(__v: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             let __entries = __v.as_map_entries().ok_or_else(|| \
             ::serde::DeError::type_error({name:?}, \"an object\", __v))?;\n\
             ::std::result::Result::Ok({name} {{\n{inits}\n}})\n}}"
        ),
    )
}

/// Newtype structs serialize transparently as their inner value (serde
/// convention); wider tuple structs serialize as arrays.
fn gen_tuple_ser(item: &Item, arity: usize) -> String {
    let name = &item.name;
    let body = if arity == 1 {
        "fn serialize(&self) -> ::serde::Content {\n\
         ::serde::Serialize::serialize(&self.0)\n}"
            .to_string()
    } else {
        let items = (0..arity)
            .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "fn serialize(&self) -> ::serde::Content {{\n\
             ::serde::Content::Seq(::std::vec![{items}])\n}}"
        )
    };
    impl_header("Serialize", name, &body)
}

fn gen_tuple_de(item: &Item, arity: usize) -> String {
    let name = &item.name;
    let body = if arity == 1 {
        format!(
            "fn deserialize(__v: &::serde::Content) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n\
             ::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))\n}}"
        )
    } else {
        let inits = (0..arity)
            .map(|i| {
                format!(
                    "::serde::Deserialize::deserialize(&__items[{i}])\
                     .map_err(|__e| __e.at_field(\"[{i}]\"))?"
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "fn deserialize(__v: &::serde::Content) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n\
             let __items = __v.as_array().ok_or_else(|| \
             ::serde::DeError::type_error({name:?}, \"an array\", __v))?;\n\
             if __items.len() != {arity} {{\n\
             return ::std::result::Result::Err(::serde::DeError::custom(format!(\
             \"expected an array of length {arity} for {name}, found length {{}}\", \
             __items.len())));\n}}\n\
             ::std::result::Result::Ok({name}({inits}))\n}}"
        )
    };
    impl_header("Deserialize", name, &body)
}

fn gen_enum_ser(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let key = variant_key(v, &item.attrs);
        let arm = match (&v.shape, &item.attrs.tag) {
            (VariantShape::Unit, None) => {
                format!("{name}::{vname} => ::serde::Content::Str({key:?}.to_string()),")
            }
            (VariantShape::Unit, Some(tag)) => format!(
                "{name}::{vname} => ::serde::Content::Map(::std::vec![\
                 ({tag:?}.to_string(), ::serde::Content::Str({key:?}.to_string()))]),"
            ),
            (VariantShape::Newtype, None) => format!(
                "{name}::{vname}(__f0) => ::serde::Content::Map(::std::vec![\
                 ({key:?}.to_string(), ::serde::Serialize::serialize(__f0))]),"
            ),
            (VariantShape::Newtype, Some(_)) => {
                return format!(
                    "compile_error!(\"serde derive stub: newtype variant `{vname}` \
                     not supported with internal tagging\");"
                )
            }
            (VariantShape::Named(fields), None) => {
                let bindings = field_names(fields);
                let pairs = ser_named_pairs(fields, |f| f.to_string());
                format!(
                    "{name}::{vname} {{ {bindings} }} => ::serde::Content::Map(::std::vec![\
                     ({key:?}.to_string(), ::serde::Content::Map(::std::vec![{pairs}]))]),"
                )
            }
            (VariantShape::Named(fields), Some(tag)) => {
                let bindings = field_names(fields);
                let pairs = ser_named_pairs(fields, |f| f.to_string());
                format!(
                    "{name}::{vname} {{ {bindings} }} => ::serde::Content::Map(::std::vec![\
                     ({tag:?}.to_string(), ::serde::Content::Str({key:?}.to_string())), {pairs}]),"
                )
            }
        };
        arms.push_str(&arm);
        arms.push('\n');
    }
    impl_header(
        "Serialize",
        name,
        &format!("fn serialize(&self) -> ::serde::Content {{\nmatch self {{\n{arms}}}\n}}"),
    )
}

fn field_names(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| f.name.clone())
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_enum_de(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let expected: Vec<String> = variants
        .iter()
        .map(|v| format!("{:?}", variant_key(v, &item.attrs)))
        .collect();
    let expected = expected.join(", ");
    let body = match &item.attrs.tag {
        Some(tag) => gen_enum_de_tagged(item, variants, tag, &expected),
        None => gen_enum_de_external(item, variants, &expected),
    };
    impl_header(
        "Deserialize",
        name,
        &format!(
            "fn deserialize(__v: &::serde::Content) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}"
        ),
    )
}

fn gen_enum_de_tagged(item: &Item, variants: &[Variant], tag: &str, expected: &str) -> String {
    let name = &item.name;
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let key = variant_key(v, &item.attrs);
        let arm = match &v.shape {
            VariantShape::Unit => {
                format!("{key:?} => ::std::result::Result::Ok({name}::{vname}),")
            }
            VariantShape::Newtype => format!(
                "compile_error!(\"serde derive stub: newtype variant `{vname}` \
                 not supported with internal tagging\");"
            ),
            VariantShape::Named(fields) => {
                let inits = de_named_inits(name, fields);
                format!("{key:?} => ::std::result::Result::Ok({name}::{vname} {{\n{inits}\n}}),")
            }
        };
        arms.push_str(&arm);
        arms.push('\n');
    }
    format!(
        "let __entries = __v.as_map_entries().ok_or_else(|| \
         ::serde::DeError::type_error({name:?}, \"an object\", __v))?;\n\
         let __tag = ::serde::content_find(__entries, {tag:?})\
         .ok_or_else(|| ::serde::DeError::missing_field({name:?}, {tag:?}))?;\n\
         let __tag = __tag.as_str().ok_or_else(|| \
         ::serde::DeError::type_error({name:?}, \"a string tag\", __tag))?;\n\
         match __tag {{\n{arms}\
         __other => ::std::result::Result::Err(\
         ::serde::DeError::unknown_variant({name:?}, __other, &[{expected}])),\n}}"
    )
}

fn gen_enum_de_external(item: &Item, variants: &[Variant], expected: &str) -> String {
    let name = &item.name;
    let units: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .collect();
    let payloads: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.shape, VariantShape::Unit))
        .collect();

    // Unit variants arrive as bare strings.
    let str_arm = if units.is_empty() {
        format!(
            "::serde::Content::Str(__s) => ::std::result::Result::Err(\
             ::serde::DeError::unknown_variant({name:?}, __s, &[{expected}])),"
        )
    } else {
        let arms: String = units
            .iter()
            .map(|v| {
                let key = variant_key(v, &item.attrs);
                format!(
                    "{key:?} => ::std::result::Result::Ok({name}::{}),\n",
                    v.name
                )
            })
            .collect();
        format!(
            "::serde::Content::Str(__s) => match __s.as_str() {{\n{arms}\
             __other => ::std::result::Result::Err(\
             ::serde::DeError::unknown_variant({name:?}, __other, &[{expected}])),\n}},"
        )
    };

    // Newtype and struct variants arrive as single-key objects; unit
    // variants are also accepted in that form (`{\"Fcfs\": null}`).
    let mut map_arms = String::new();
    for v in variants {
        let vname = &v.name;
        let key = variant_key(v, &item.attrs);
        let arm = match &v.shape {
            VariantShape::Unit => {
                format!("{key:?} => ::std::result::Result::Ok({name}::{vname}),")
            }
            VariantShape::Newtype => format!(
                "{key:?} => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::deserialize(__inner)\
                 .map_err(|__e| __e.at_field({key:?}))?)),"
            ),
            VariantShape::Named(fields) => {
                let inits = de_named_inits(name, fields);
                format!(
                    "{key:?} => {{\n\
                     let __entries = __inner.as_map_entries().ok_or_else(|| \
                     ::serde::DeError::type_error({name:?}, \"an object\", __inner)\
                     .at_field({key:?}))?;\n\
                     ::std::result::Result::Ok({name}::{vname} {{\n{inits}\n}})\n}}"
                )
            }
        };
        map_arms.push_str(&arm);
        map_arms.push('\n');
    }
    let map_arm = if payloads.is_empty() && units.is_empty() {
        String::new()
    } else {
        format!(
            "::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
             let (__k, __inner) = &__m[0];\n\
             let _ = __inner;\n\
             match __k.as_str() {{\n{map_arms}\
             __other => ::std::result::Result::Err(\
             ::serde::DeError::unknown_variant({name:?}, __other, &[{expected}])),\n}}\n}},"
        )
    };

    format!(
        "match __v {{\n{str_arm}\n{map_arm}\n\
         __other => ::std::result::Result::Err(::serde::DeError::type_error(\
         {name:?}, \"a variant string or single-key object\", __other)),\n}}"
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn snake_case_matches_serde_convention() {
        assert_eq!(super::snake_case("BruteForce"), "brute_force");
        assert_eq!(super::snake_case("Dp"), "dp");
        assert_eq!(super::snake_case("LogNormal"), "log_normal");
        assert_eq!(super::snake_case("Uniform"), "uniform");
    }
}
