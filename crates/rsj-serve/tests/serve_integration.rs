//! End-to-end tests: a real server on a loopback port, real TCP clients.
//!
//! The process-global metrics registry is shared by every test in this
//! binary, so tests that assert on counter deltas serialize on
//! [`registry_lock`]. Each test binds its own server on port 0.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use reservation_strategies::plan_digest;
use rsj_core::{CostModel, DiscretizedDp, SolverSpec, Strategy};
use rsj_dist::{DiscretizationScheme, DistSpec};
use rsj_serve::{Client, ErrorKind, Request, Response, Server, ServerConfig};

fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Binds a server, runs it on a background thread, returns the address
/// plus a join handle resolving to `run()`'s result.
fn spawn_server(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    rsj_serve::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// A cheap DP solver spec (fast enough to run nine times in a test).
fn fast_dp() -> SolverSpec {
    SolverSpec::Dp {
        scheme: DiscretizationScheme::EqualProbability,
        n: 150,
        epsilon: 1e-6,
        monotone: true,
    }
}

fn counter_value(prometheus: &str, name: &str) -> u64 {
    prometheus
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .map(|v| v.trim().parse().expect("counter value"))
        .unwrap_or(0)
}

fn expect_plan(response: Response) -> (reservation_strategies::Plan, bool) {
    match response {
        Response::Plan {
            plan, provenance, ..
        } => (plan, provenance.cached),
        other => panic!("expected a plan, got {other:?}"),
    }
}

#[test]
fn all_table1_distributions_match_offline_solver() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");

    let cost = CostModel::reservation_only();
    let offline = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 150, 1e-6).unwrap();
    for (name, spec) in DistSpec::paper_table1() {
        let (plan, _) = expect_plan(
            client
                .call(&Request::plan_with(spec.clone(), fast_dp()))
                .unwrap_or_else(|e| panic!("{name}: {e}")),
        );
        let dist = spec.build().unwrap();
        let expected = offline.sequence(dist.as_ref(), &cost).unwrap();
        assert_eq!(plan.sequence, expected.times(), "{name}");
        assert_eq!(
            plan.digest,
            plan_digest(expected.times().iter().copied()),
            "{name}: served plan must be bit-identical to the offline DP"
        );
    }

    client.shutdown().expect("shutdown ack");
    drop(client);
    join.join().expect("server thread").expect("clean exit");
    assert!(handle.is_signaled());
}

#[test]
fn concurrent_clients_get_bit_identical_plans() {
    let _guard = registry_lock();
    let (addr, _handle, join) = spawn_server(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });

    // Offline ground truth for both solver families.
    let cost = CostModel::reservation_only();
    let spec = DistSpec::LogNormal {
        mu: 3.0,
        sigma: 0.5,
    };
    let dist = spec.build().unwrap();
    let brute = SolverSpec::BruteForce {
        grid: 200,
        samples: 200,
        analytic: true,
        seed: 7,
    };
    let dp_offline = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 150, 1e-6)
        .unwrap()
        .sequence(dist.as_ref(), &cost)
        .unwrap();
    let brute_offline = brute
        .build()
        .unwrap()
        .sequence(dist.as_ref(), &cost)
        .unwrap();
    let dp_digest = plan_digest(dp_offline.times().iter().copied());
    let brute_digest = plan_digest(brute_offline.times().iter().copied());

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let spec = spec.clone();
            let brute = brute.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let (dp_plan, _) = expect_plan(
                    client
                        .call(&Request::plan_with(spec.clone(), fast_dp()))
                        .unwrap_or_else(|e| panic!("client {i} dp: {e}")),
                );
                let (brute_plan, _) = expect_plan(
                    client
                        .call(&Request::plan_with(spec, brute))
                        .unwrap_or_else(|e| panic!("client {i} brute: {e}")),
                );
                (dp_plan, brute_plan)
            })
        })
        .collect();
    for c in clients {
        let (dp_plan, brute_plan) = c.join().expect("client thread");
        assert_eq!(dp_plan.digest, dp_digest);
        assert_eq!(dp_plan.sequence, dp_offline.times());
        assert_eq!(brute_plan.digest, brute_digest);
        assert_eq!(brute_plan.sequence, brute_offline.times());
    }

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown ack");
    drop(client);
    join.join().expect("server thread").expect("clean exit");
}

#[test]
fn repeat_request_hits_cache_without_reinvoking_solver() {
    let _guard = registry_lock();
    let (addr, _handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // A parameterization no other test uses, so the first call must miss.
    let request = Request::plan_with(
        DistSpec::LogNormal {
            mu: 1.71,
            sigma: 0.29,
        },
        fast_dp(),
    );
    let (first, first_cached) = expect_plan(client.call(&request).expect("first call"));
    assert!(!first_cached, "first request must be computed");

    let before = client.metrics().expect("metrics");
    let hits_before = counter_value(&before, "rsj_serve_cache_hits_total");
    let solves_before = counter_value(&before, "rsj_serve_solver_invocations_total");

    let (second, second_cached) = expect_plan(client.call(&request).expect("second call"));
    assert!(second_cached, "identical request must be served from cache");
    assert_eq!(first, second, "cache hit must be byte-identical");

    let after = client.metrics().expect("metrics");
    assert_eq!(
        counter_value(&after, "rsj_serve_cache_hits_total"),
        hits_before + 1,
        "cache-hit counter must increment"
    );
    assert_eq!(
        counter_value(&after, "rsj_serve_solver_invocations_total"),
        solves_before,
        "a cache hit must not invoke the solver"
    );

    client.shutdown().expect("shutdown ack");
    drop(client);
    join.join().expect("server thread").expect("clean exit");
}

#[test]
fn malformed_and_invalid_requests_get_typed_errors() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // Not JSON: the connection survives and the error is typed.
    use std::io::Write;
    // Reach under the helper to write a raw garbage line.
    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    raw.write_all(b"this is not json\n").expect("write");
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("read");
    let response: Response = serde_json::from_str(line.trim()).expect("parse");
    assert!(matches!(
        response,
        Response::Error {
            kind: ErrorKind::MalformedRequest,
            ..
        }
    ));
    // Same connection still serves valid requests afterwards.
    raw.write_all(b"{\"op\":\"ping\"}\n").expect("write");
    line.clear();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("read");
    let response: Response = serde_json::from_str(line.trim()).expect("parse");
    assert!(matches!(response, Response::Pong { .. }));
    drop(reader);
    drop(raw);

    // Invalid distribution parameters → invalid_distribution.
    let response = client
        .call(&Request::plan(DistSpec::Exponential { lambda: -1.0 }))
        .expect("call");
    assert!(
        matches!(
            response,
            Response::Error {
                kind: ErrorKind::InvalidDistribution,
                ..
            }
        ),
        "{response:?}"
    );

    // Invalid cost rates → invalid_cost.
    let response = client
        .call(&Request::Plan {
            v: rsj_serve::PROTOCOL_VERSION,
            distribution: DistSpec::Exponential { lambda: 1.0 },
            cost: Some(CostModel {
                alpha: 0.0,
                beta: 0.0,
                gamma: 0.0,
            }),
            solver: SolverSpec::MeanByMean,
            seed: None,
            simulate: None,
            deadline_ms: None,
            trace_id: None,
            trace: false,
        })
        .expect("call");
    assert!(
        matches!(
            response,
            Response::Error {
                kind: ErrorKind::InvalidCost,
                ..
            }
        ),
        "{response:?}"
    );

    // Unsupported protocol version → unsupported_version.
    let response = client.call(&Request::Ping { v: 99 }).expect("call");
    assert!(
        matches!(
            response,
            Response::Error {
                kind: ErrorKind::UnsupportedVersion,
                ..
            }
        ),
        "{response:?}"
    );

    handle.signal();
    join.join().expect("server thread").expect("clean exit");
}

#[test]
fn per_connection_limits_are_enforced() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(ServerConfig {
        max_requests_per_conn: 2,
        max_line_bytes: 512,
        ..ServerConfig::default()
    });

    // Request limit: the third request on one connection is refused and
    // the connection closed.
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping 1");
    client.ping().expect("ping 2");
    let response = client.call(&Request::ping()).expect("call");
    assert!(
        matches!(
            response,
            Response::Error {
                kind: ErrorKind::TooManyRequests,
                ..
            }
        ),
        "{response:?}"
    );
    assert!(client.ping().is_err(), "connection must be closed");

    // Line limit: an oversized line is refused and the connection closed.
    let mut client = Client::connect(addr).expect("connect");
    use std::io::Write;
    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    let oversized = format!("{}\n", "x".repeat(1024));
    raw.write_all(oversized.as_bytes()).expect("write");
    let mut reader = std::io::BufReader::new(raw);
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("read");
    let response: Response = serde_json::from_str(line.trim()).expect("parse");
    assert!(
        matches!(
            response,
            Response::Error {
                kind: ErrorKind::RequestTooLarge,
                ..
            }
        ),
        "{response:?}"
    );

    client.ping().expect("fresh connection still works");
    handle.signal();
    drop(client);
    join.join().expect("server thread").expect("clean exit");
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(ServerConfig {
        workers: 2,
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });

    // A solver slow enough that the shutdown signal usually lands while
    // it is still running; the response must arrive regardless.
    let slow = Request::plan_with(
        DistSpec::LogNormal {
            mu: 3.0,
            sigma: 0.5,
        },
        SolverSpec::BruteForce {
            grid: 600,
            samples: 400,
            analytic: false,
            seed: 11,
        },
    );
    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .call(&slow)
            .expect("in-flight request must be answered")
    });
    std::thread::sleep(Duration::from_millis(50));
    handle.signal();

    let (plan, _) = expect_plan(in_flight.join().expect("client thread"));
    assert!(!plan.sequence.is_empty());
    join.join().expect("server thread").expect("clean exit");

    // The drained server no longer accepts work.
    assert!(
        Client::connect(addr)
            .map(|mut c| c.ping())
            .map_or(true, |r| r.is_err()),
        "server must be gone after drain"
    );
}

#[test]
fn simulate_on_request_attaches_batch_stats() {
    let _guard = registry_lock();
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    let response = client
        .call(&Request::Plan {
            v: rsj_serve::PROTOCOL_VERSION,
            distribution: DistSpec::Exponential { lambda: 1.0 },
            cost: None,
            solver: SolverSpec::MeanByMean,
            seed: None,
            simulate: Some(reservation_strategies::SimulateOptions { jobs: 64, seed: 9 }),
            deadline_ms: None,
            trace_id: None,
            trace: false,
        })
        .expect("call");
    let (plan, _) = expect_plan(response);
    let stats = plan.simulation.expect("simulation attached");
    assert!(stats.mean_cost.is_finite() && stats.mean_cost > 0.0);

    // Offline replay must agree exactly (same seed, deterministic pool).
    let dist = DistSpec::Exponential { lambda: 1.0 }.build().unwrap();
    let cost = CostModel::reservation_only();
    let seq = rsj_core::MeanByMean::default()
        .sequence(dist.as_ref(), &cost)
        .unwrap();
    let offline = rsj_sim::run_batch_seeded(
        &seq,
        dist.as_ref(),
        &cost,
        64,
        9,
        &rsj_par::Parallelism::serial(),
    )
    .unwrap();
    assert_eq!(stats, offline);

    handle.signal();
    drop(client);
    join.join().expect("server thread").expect("clean exit");
}
