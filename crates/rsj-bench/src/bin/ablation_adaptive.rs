//! Runs the online-adaptive-replanning ablation (beyond the paper's own
//! evaluation): cold-start regret vs the known-distribution oracle.

use rsj_bench::scenarios::Fidelity;

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    let fidelity = Fidelity::from_env();
    rsj_obs::info!(
        "running ablation_adaptive at {fidelity:?} fidelity (RSJ_FIDELITY=quick for a fast pass)"
    );
    rsj_bench::experiments::ablation_adaptive::emit(fidelity, rsj_bench::DEFAULT_SEED)?;
    Ok(())
}
