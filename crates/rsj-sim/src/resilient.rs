//! Resilient reservation executor (system S18): [`rsj_core::run_job`]
//! under fault injection, with checkpoint-restart and pluggable retry
//! policies.
//!
//! The base model charges Eq. 1 per reservation and restarts failed jobs
//! from scratch. This module adds what real platforms add:
//!
//! * a reservation can be *interrupted* mid-flight by a fault from
//!   [`crate::fault`]; the interrupted reservation is billed for its
//!   *elapsed* time only, `α·R′ + β·R′ + γ` with `R′` the time until the
//!   fault (Eq. 1 applied to the elapsed prefix — the platform was used
//!   until the crash);
//! * recovery restarts from scratch, or from the last checkpoint when a
//!   [`CheckpointConfig`] is supplied (reusing the §7 all-checkpoint
//!   accounting of [`rsj_core::extensions::checkpoint`]);
//! * a [`RetryPolicy`] decides which reservation to request next after a
//!   fault;
//! * after `max_failures` faults the executor *gives up* and returns a
//!   degraded [`ResilientOutcome`] (`completed = false`) instead of
//!   panicking or looping.
//!
//! With faults disabled the executor reproduces [`rsj_core::run_job`]
//! (and, with a checkpoint configuration,
//! [`rsj_core::extensions::checkpoint::run_job_checkpointed`])
//! **bit-for-bit**: same branches, same floating-point expressions, and no
//! extra draws from any RNG.

use crate::error::{check_param, SimError};
use crate::fault::{FaultConfig, FaultEvent, FaultInjector};
use crate::runner::{aggregate, BatchStats};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rsj_core::extensions::CheckpointConfig;
use rsj_core::{CostModel, ReservationSequence, RunOutcome};
use rsj_dist::ContinuousDistribution;
use rsj_par::{substream_seed, Parallelism};
use serde::{Deserialize, Serialize};

/// What the executor requests after a fault interrupts a reservation.
///
/// Ordinary too-short reservations always advance down the sequence, as in
/// the base model; the policy only governs the response to *faults*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[serde(tag = "policy", rename_all = "snake_case")]
pub enum RetryPolicy {
    /// Re-request the interrupted reservation length (default): the fault
    /// says nothing about the job's duration, so the plan is unchanged.
    #[default]
    RetrySameSlot,
    /// Advance to the next `t_i` of the sequence, treating the fault like
    /// an ordinary failed reservation.
    AdvanceSequence,
    /// Multiply the requested length by `factor` (≥ 1) after every fault —
    /// buy safety margin against losing long reservations repeatedly.
    ExponentialBackoff {
        /// Multiplier applied to all subsequent requests.
        factor: f64,
    },
}

fn default_max_failures() -> usize {
    8
}

/// Full configuration of the resilient executor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// The fault processes (default: fault-free).
    #[serde(default)]
    pub faults: FaultConfig,
    /// Response to a fault (default: retry the same slot).
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Give up after this many faults on one job, returning a degraded
    /// outcome (default 8; must be ≥ 1).
    #[serde(default = "default_max_failures")]
    pub max_failures: usize,
    /// Checkpoint/restart overheads; `None` restarts from scratch.
    #[serde(default)]
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            faults: FaultConfig::none(),
            retry: RetryPolicy::default(),
            max_failures: default_max_failures(),
            checkpoint: None,
        }
    }
}

impl ResilienceConfig {
    /// Fault-free execution with default retry settings.
    pub fn fault_free() -> Self {
        Self::default()
    }

    /// Validates every parameter, naming the offending field on failure.
    pub fn validate(&self) -> Result<(), SimError> {
        self.faults.validate()?;
        if let RetryPolicy::ExponentialBackoff { factor } = self.retry {
            check_param("factor", factor, "must be >= 1", factor >= 1.0)?;
        }
        if self.max_failures == 0 {
            return Err(SimError::InvalidParameter {
                name: "max_failures",
                value: 0.0,
                requirement: "must be >= 1",
            });
        }
        Ok(())
    }
}

/// The outcome of one job under the resilient executor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilientOutcome {
    /// Eq. 2 accounting over every paid (full or elapsed-billed) attempt.
    pub outcome: RunOutcome,
    /// Whether the job finished (`false` after `max_failures` faults; the
    /// accrued cost then bought nothing and `wasted_time` equals
    /// `reserved_time`).
    pub completed: bool,
    /// Faults endured.
    pub failures: usize,
    /// Useful work lost to faults (computed since the last checkpoint —
    /// or since the attempt's start without checkpointing — and thrown
    /// away).
    pub rework_time: f64,
    /// Chronological fault trace (empty when fault-free).
    pub faults: Vec<FaultEvent>,
}

/// Runs a job of duration `t` through `seq` under fault injection.
///
/// The caller owns the [`FaultInjector`] so one deterministic fault
/// stream spans a whole batch. Panics (like [`rsj_core::run_job`]) if `t`
/// is not finite; configuration errors are caught by
/// [`ResilienceConfig::validate`] in [`run_batch_resilient`].
pub fn run_job_resilient(
    seq: &ReservationSequence,
    cost: &CostModel,
    config: &ResilienceConfig,
    t: f64,
    injector: &mut FaultInjector,
) -> ResilientOutcome {
    assert!(
        t >= 0.0 && t.is_finite(),
        "job duration must be finite, got {t}"
    );
    let ckpt = config.checkpoint;
    let mut progress = 0.0; // checkpointed work (always 0 without `ckpt`)
    let mut slot = 0usize; // position in the sequence
    let mut attempt = 0usize; // reservations paid so far
    let mut scale = 1.0; // ExponentialBackoff multiplier
    let mut failures = 0usize;
    let mut rework = 0.0;
    let mut events = Vec::new();
    let mut total = 0.0;
    let mut reserved = 0.0;
    loop {
        let nominal = seq.reservation(slot) * scale;
        // Restoring a checkpoint costs time in every attempt but the first
        // (mirrors `CheckpointConfig::restart`, indexed by attempt).
        let restart = match ckpt {
            Some(c) if attempt > 0 => c.restart_cost,
            _ => 0.0,
        };
        let remaining = t - progress;
        // Jitter mode: the platform may kill before the nominal walltime.
        let kill = injector.effective_walltime(nominal);
        // The machine is busy until the job completes or is killed.
        let busy = if remaining + restart <= kill {
            restart + remaining
        } else {
            kill
        };
        if let Some((at, kind)) = injector.interruption(busy) {
            // Fault mid-reservation: billed for the elapsed prefix only.
            total += cost.failed(at);
            reserved += at;
            rework += (at - restart).max(0.0);
            failures += 1;
            events.push(FaultEvent {
                attempt,
                slot,
                at,
                kind,
            });
            attempt += 1;
            if failures >= config.max_failures {
                return ResilientOutcome {
                    outcome: RunOutcome {
                        cost: total,
                        reservations: attempt,
                        reserved_time: reserved,
                        wasted_time: reserved,
                    },
                    completed: false,
                    failures,
                    rework_time: rework,
                    faults: events,
                };
            }
            match config.retry {
                RetryPolicy::RetrySameSlot => {}
                RetryPolicy::AdvanceSequence => slot += 1,
                RetryPolicy::ExponentialBackoff { factor } => scale *= factor,
            }
            continue;
        }
        reserved += nominal;
        if remaining + restart <= kill {
            // Completes here: pays Eq. 1 on the nominal length.
            let used = restart + remaining;
            total += cost.single(nominal, used);
            return ResilientOutcome {
                outcome: RunOutcome {
                    cost: total,
                    reservations: attempt + 1,
                    reserved_time: reserved,
                    wasted_time: nominal - used,
                },
                completed: true,
                failures,
                rework_time: rework,
                faults: events,
            };
        }
        // Ordinary too-short (or jitter-shortened) reservation: the full
        // nominal length is billed, the machine was busy until the kill.
        if kill == nominal {
            total += cost.failed(nominal);
        } else {
            total += cost.alpha * nominal + cost.beta * kill + cost.gamma;
        }
        if let Some(c) = ckpt {
            progress += (kill - restart - c.checkpoint_cost).max(0.0);
        }
        slot += 1;
        attempt += 1;
        assert!(
            attempt < 10_000_000,
            "resilient run diverged: every reservation shorter than restart overhead"
        );
    }
}

/// Runs `n` jobs sampled from `dist` through `seq` under the resilience
/// configuration and aggregates the outcomes, filling the robustness
/// fields of [`BatchStats`].
///
/// Job durations come from `rng` exactly as in
/// [`crate::runner::run_batch`] — one serial draw per job, in order —
/// while fault times come from a **per-job substream** of the dedicated
/// fault seed ([`FaultInjector::for_job`]), making each job's fault trace
/// a function of `(config.faults.seed, job_index)` alone. Jobs therefore
/// execute on the ambient [`Parallelism`] with bit-for-bit identical
/// statistics at any thread count, and a fault-free configuration still
/// reproduces `run_batch` bit-for-bit under the same seed (a fault-free
/// injector never draws).
pub fn run_batch_resilient(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
    n: usize,
    rng: &mut dyn RngCore,
    config: &ResilienceConfig,
) -> Result<BatchStats, SimError> {
    if n == 0 {
        return Err(SimError::EmptyBatch);
    }
    config.validate()?;
    let _wall = rsj_obs::ScopedTimer::global("rsj_sim_batch_wall_seconds");
    let _span = rsj_obs::span!("sim.run_batch_resilient");
    let durations: Vec<f64> = (0..n).map(|_| dist.sample(rng)).collect();
    let results: Vec<ResilientOutcome> =
        Parallelism::current().try_par_map(&durations, |i, &t| {
            let mut injector = FaultInjector::for_job_unvalidated(&config.faults, i as u64);
            run_job_resilient(seq, cost, config, t, &mut injector)
        })?;
    aggregate_resilient(&results)
}

/// Resilient counterpart of [`crate::runner::run_batch_seeded`]: job `i`
/// draws its duration from the substream `(seed, i)` and its fault trace
/// from the substream `(config.faults.seed, i)`, so the whole batch is a
/// pure function of the two seeds — independent of execution order and
/// thread count. A non-finite or negative draw is a typed
/// [`SimError::NonFiniteSample`] naming the lowest offending job index.
pub fn run_batch_resilient_seeded(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
    n: usize,
    seed: u64,
    config: &ResilienceConfig,
    par: &Parallelism,
) -> Result<BatchStats, SimError> {
    if n == 0 {
        return Err(SimError::EmptyBatch);
    }
    config.validate()?;
    let _wall = rsj_obs::ScopedTimer::global("rsj_sim_batch_wall_seconds");
    let _span = rsj_obs::span!("sim.run_batch_resilient_seeded");
    let results: Vec<Result<ResilientOutcome, SimError>> = par.try_par_run(n, |i| {
        let mut rng = StdRng::seed_from_u64(substream_seed(seed, i as u64));
        let t = dist.sample(&mut rng);
        if !t.is_finite() || t < 0.0 {
            return Err(SimError::NonFiniteSample { index: i, value: t });
        }
        let mut injector = FaultInjector::for_job_unvalidated(&config.faults, i as u64);
        Ok(run_job_resilient(seq, cost, config, t, &mut injector))
    })?;
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    aggregate_resilient(&results)
}

/// Serial accounting over per-job resilient outcomes: robustness counters,
/// order statistics, and the batch's metrics contribution.
fn aggregate_resilient(results: &[ResilientOutcome]) -> Result<BatchStats, SimError> {
    let n = results.len();
    let mut outcomes = Vec::with_capacity(n);
    let mut failures = 0usize;
    let mut restarts = 0usize;
    let mut gave_up = 0usize;
    let mut rework = 0.0;
    let mut rework_hist = rsj_obs::Histogram::new();
    for r in results {
        failures += r.failures;
        // Every fault is followed by a restart except the one that makes
        // the job give up.
        restarts += r.failures - usize::from(!r.completed);
        gave_up += usize::from(!r.completed);
        rework += r.rework_time;
        rework_hist.record(r.rework_time);
        outcomes.push(r.outcome);
    }
    let mut stats = aggregate(&outcomes)?;
    stats.failures = failures;
    stats.restarts = restarts;
    stats.mean_rework = rework / n as f64;
    stats.gave_up = gave_up;
    crate::runner::record_batch_metrics(&outcomes, &stats);
    if rsj_obs::metrics_enabled() {
        let reg = rsj_obs::global_registry();
        reg.counter("rsj_sim_faults_total").add(failures as u64);
        reg.counter("rsj_sim_restarts_total").add(restarts as u64);
        reg.counter("rsj_sim_gave_up_total").add(gave_up as u64);
        reg.histogram("rsj_sim_job_rework").merge_from(&rework_hist);
    }
    if failures > 0 {
        rsj_obs::debug!(
            "resilient batch: {} jobs, {} faults, {} restarts, {} gave up",
            n,
            failures,
            restarts,
            gave_up
        );
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rsj_core::{run_job, Strategy};
    use rsj_dist::LogNormal;

    fn setup() -> (ReservationSequence, LogNormal, CostModel) {
        let d = LogNormal::new(1.0, 0.8).unwrap();
        let c = CostModel::new(1.0, 0.5, 0.2).unwrap();
        let seq = rsj_core::MeanDoubling::default().sequence(&d, &c).unwrap();
        (seq, d, c)
    }

    #[test]
    fn fault_free_matches_run_job_exactly() {
        let (seq, _, c) = setup();
        let cfg = ResilienceConfig::fault_free();
        let mut inj = FaultInjector::new(&cfg.faults).unwrap();
        for t in [0.1, 1.0, 2.7, 9.9, 40.0] {
            let base = run_job(&seq, &c, t);
            let res = run_job_resilient(&seq, &c, &cfg, t, &mut inj);
            assert!(res.completed);
            assert_eq!(res.failures, 0);
            assert_eq!(res.outcome, base, "t = {t}");
            assert!(res.faults.is_empty());
        }
    }

    #[test]
    fn fault_free_checkpointed_matches_run_job_checkpointed() {
        use rsj_core::extensions::run_job_checkpointed;
        let (seq, _, c) = setup();
        let ck = CheckpointConfig::new(0.05, 0.1).unwrap();
        let cfg = ResilienceConfig {
            checkpoint: Some(ck),
            ..ResilienceConfig::fault_free()
        };
        let mut inj = FaultInjector::new(&cfg.faults).unwrap();
        for t in [0.1, 1.0, 2.7, 9.9, 40.0] {
            let base = run_job_checkpointed(&seq, &c, &ck, t);
            let res = run_job_resilient(&seq, &c, &cfg, t, &mut inj);
            assert_eq!(res.outcome, base, "t = {t}");
        }
    }

    #[test]
    fn crashes_inflate_cost_and_are_counted() {
        let (seq, d, c) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let baseline = run_batch_resilient(
            &seq,
            &d,
            &c,
            2000,
            &mut rng,
            &ResilienceConfig::fault_free(),
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let faulty_cfg = ResilienceConfig {
            faults: FaultConfig::crashes(2.0, 99),
            max_failures: 50,
            ..ResilienceConfig::fault_free()
        };
        let faulty = run_batch_resilient(&seq, &d, &c, 2000, &mut rng, &faulty_cfg).unwrap();
        assert!(faulty.failures > 0, "mtbf 2h must produce faults");
        assert!(faulty.mean_rework > 0.0);
        assert!(
            faulty.mean_cost > baseline.mean_cost,
            "faults must inflate mean cost: {} vs {}",
            faulty.mean_cost,
            baseline.mean_cost
        );
        assert_eq!(baseline.failures, 0);
        assert_eq!(baseline.gave_up, 0);
    }

    #[test]
    fn gives_up_after_max_failures_instead_of_panicking() {
        let (seq, _, c) = setup();
        // MTBF far below any reservation length: every attempt faults.
        let cfg = ResilienceConfig {
            faults: FaultConfig::crashes(1e-6, 1),
            max_failures: 3,
            ..ResilienceConfig::fault_free()
        };
        let mut inj = FaultInjector::new(&cfg.faults).unwrap();
        let res = run_job_resilient(&seq, &c, &cfg, 5.0, &mut inj);
        assert!(!res.completed);
        assert_eq!(res.failures, 3);
        assert_eq!(res.outcome.reservations, 3);
        assert_eq!(res.outcome.wasted_time, res.outcome.reserved_time);
        assert_eq!(res.faults.len(), 3);
    }

    #[test]
    fn retry_policies_shape_the_trace() {
        let (seq, _, c) = setup();
        // MTBF 1h against a 6h job: the first attempt faults almost
        // surely, while a 2000-fault budget still completes eventually.
        let faults = FaultConfig::crashes(1.0, 4);
        let run = |retry| {
            let cfg = ResilienceConfig {
                faults,
                retry,
                max_failures: 2000,
                ..ResilienceConfig::fault_free()
            };
            let mut inj = FaultInjector::new(&faults).unwrap();
            run_job_resilient(&seq, &c, &cfg, 6.0, &mut inj)
        };
        let same = run(RetryPolicy::RetrySameSlot);
        let advance = run(RetryPolicy::AdvanceSequence);
        let backoff = run(RetryPolicy::ExponentialBackoff { factor: 2.0 });
        for r in [&same, &advance, &backoff] {
            assert!(r.completed, "generous retry budget must complete");
            assert!(r.failures >= 1, "mtbf 1h must fault a 6h job");
        }
        // Same injector seed → the first fault is identical everywhere.
        assert_eq!(same.faults[0], advance.faults[0]);
        assert_eq!(same.faults[0], backoff.faults[0]);
        // AdvanceSequence walks down the sequence on every fault;
        // RetrySameSlot stays until an ordinary too-short failure.
        assert!(advance.faults.last().unwrap().slot >= same.faults.last().unwrap().slot);
    }

    #[test]
    fn batch_rejects_invalid_configs() {
        let (seq, d, c) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(
            run_batch_resilient(&seq, &d, &c, 0, &mut rng, &ResilienceConfig::fault_free()),
            Err(SimError::EmptyBatch)
        );
        let bad = ResilienceConfig {
            retry: RetryPolicy::ExponentialBackoff { factor: 0.5 },
            ..ResilienceConfig::fault_free()
        };
        assert!(run_batch_resilient(&seq, &d, &c, 10, &mut rng, &bad).is_err());
        let bad = ResilienceConfig {
            max_failures: 0,
            ..ResilienceConfig::fault_free()
        };
        assert!(run_batch_resilient(&seq, &d, &c, 10, &mut rng, &bad).is_err());
    }

    #[test]
    fn config_json_round_trip() {
        let cfg = ResilienceConfig {
            faults: FaultConfig::preemptions(0.3, 2),
            retry: RetryPolicy::ExponentialBackoff { factor: 1.5 },
            max_failures: 5,
            checkpoint: Some(CheckpointConfig::new(0.1, 0.2).unwrap()),
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ResilienceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        // All-default parse.
        let minimal: ResilienceConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(minimal, ResilienceConfig::fault_free());
    }
}
